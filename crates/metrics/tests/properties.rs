//! Property-based tests for metric invariants.

use aero_metrics::{fid, kid, psnr, FeatureExtractor};
use aero_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fid_nonnegative_and_self_zero(seed in 0u64..500, n in 4usize..12) {
        let e = FeatureExtractor::new(4);
        let set = random_images(n, seed);
        let self_fid = fid(&e, &set, &set).unwrap();
        prop_assert!((0.0..1e-2).contains(&self_fid), "self fid {self_fid}");
        let other = random_images(n, seed ^ 999);
        prop_assert!(fid(&e, &set, &other).unwrap() >= 0.0);
    }

    #[test]
    fn kid_roughly_symmetric(seed in 0u64..300) {
        let e = FeatureExtractor::new(4);
        let a = random_images(8, seed);
        let b = random_images(8, seed ^ 1234);
        let ab = kid(&e, &a, &b);
        let ba = kid(&e, &b, &a);
        prop_assert!((ab - ba).abs() < 1e-5, "{ab} vs {ba}");
    }

    #[test]
    fn psnr_monotone_in_noise(seed in 0u64..300, eps1 in 0.01f32..0.2, extra in 0.05f32..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reference = Tensor::rand_uniform(&[3, 8, 8], 0.2, 0.8, &mut rng);
        let near = reference.add_scalar(eps1).clamp(0.0, 1.0);
        let far = reference.add_scalar(eps1 + extra).clamp(0.0, 1.0);
        prop_assert!(psnr(&reference, &near) >= psnr(&reference, &far));
    }

    #[test]
    fn features_are_deterministic_and_bounded(seed in 0u64..300) {
        let e = FeatureExtractor::new(4);
        let imgs = random_images(3, seed);
        let f1 = e.features_of(&imgs);
        let f2 = e.features_of(&imgs);
        prop_assert_eq!(&f1, &f2);
        prop_assert!(f1.abs().max() <= 1.0 + 1e-5);
    }
}
