//! The fixed feature extractor behind FID and KID.
//!
//! The extractor's convolutions run on the sharded parallel kernel layer
//! (`aero_tensor::par_kernels`); because that layer is bit-identical at
//! any thread count, FID/KID values are reproducible across machines
//! regardless of the active `ParallelConfig`.

use aero_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed fixing the extractor weights — never change this, or every FID
/// in the repository shifts.
const WEIGHT_SEED: u64 = 0xAE40_F1D0;

/// A fixed, seeded two-layer convolutional feature network.
///
/// Images `[3, s, s]` map to `5·c`-dimensional features: the per-channel
/// mean over each of the four spatial quadrants (capturing coarse layout,
/// not just colour statistics) plus the per-channel spatial standard
/// deviation of the second conv's tanh activations. Weights are drawn
/// once from a fixed seed, so features are identical across runs and
/// machines.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureExtractor {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    channels: usize,
}

impl FeatureExtractor {
    /// Creates the extractor with `channels` second-layer channels
    /// (feature dimension `2 · channels`).
    pub fn new(channels: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(WEIGHT_SEED);
        let c1 = channels / 2;
        let c1 = c1.max(4);
        FeatureExtractor {
            w1: Tensor::randn(&[c1, 3, 3, 3], &mut rng).mul_scalar((2.0 / 27.0f32).sqrt()),
            b1: Tensor::zeros(&[c1]),
            w2: Tensor::randn(&[channels, c1, 3, 3], &mut rng)
                .mul_scalar((2.0 / (9.0 * c1 as f32)).sqrt()),
            b2: Tensor::zeros(&[channels]),
            channels,
        }
    }

    /// The output feature dimensionality (`5 · channels`).
    pub fn dim(&self) -> usize {
        5 * self.channels
    }

    /// Features for a batch of images `[n, 3, s, s] → [n, dim]`.
    ///
    /// # Panics
    ///
    /// Panics unless the input is a rank-4 RGB batch.
    pub fn features(&self, images: &Tensor) -> Tensor {
        assert_eq!(images.rank(), 4, "feature extractor expects [n, 3, s, s]");
        assert_eq!(images.shape()[1], 3, "feature extractor expects RGB");
        let h1 = images.conv2d(&self.w1, Some(&self.b1), 2, 1).map(f32::tanh);
        let h2 = h1.conv2d(&self.w2, Some(&self.b2), 2, 1).map(f32::tanh);
        let (n, c) = (h2.shape()[0], h2.shape()[1]);
        let (gh, gw) = (h2.shape()[2], h2.shape()[3]);
        let plane = gh * gw;
        let mut out = Tensor::zeros(&[n, 5 * c]);
        let src = h2.as_slice();
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * plane;
                let slice = &src[base..base + plane];
                // quadrant means: coarse spatial layout
                let mut quad = [0.0f32; 4];
                let mut quad_n = [0usize; 4];
                for y in 0..gh {
                    for x in 0..gw {
                        let q = (y >= gh / 2) as usize * 2 + (x >= gw / 2) as usize;
                        quad[q] += slice[y * gw + x];
                        quad_n[q] += 1;
                    }
                }
                for q in 0..4 {
                    out.set(&[b, q * c + ch], quad[q] / quad_n[q].max(1) as f32);
                }
                let mean: f32 = slice.iter().sum::<f32>() / plane as f32;
                let var: f32 =
                    slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / plane as f32;
                out.set(&[b, 4 * c + ch], var.sqrt());
            }
        }
        out
    }

    /// Convenience: features of a slice of single images `[3, s, s]`.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty or shapes differ.
    pub fn features_of(&self, images: &[Tensor]) -> Tensor {
        assert!(!images.is_empty(), "need at least one image");
        let refs: Vec<&Tensor> = images.iter().collect();
        self.features(&Tensor::stack(&refs))
    }
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_across_instances() {
        let a = FeatureExtractor::new(16);
        let b = FeatureExtractor::new(16);
        let mut rng = StdRng::seed_from_u64(1);
        let img = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        assert_eq!(a.features(&img), b.features(&img));
    }

    #[test]
    fn feature_dim_matches() {
        let e = FeatureExtractor::new(16);
        let mut rng = StdRng::seed_from_u64(2);
        let img = Tensor::rand_uniform(&[3, 3, 16, 16], 0.0, 1.0, &mut rng);
        let f = e.features(&img);
        assert_eq!(f.shape(), &[3, e.dim()]);
    }

    #[test]
    fn distinct_images_get_distinct_features() {
        let e = FeatureExtractor::new(16);
        let black = Tensor::zeros(&[1, 3, 16, 16]);
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = Tensor::from_vec(
            (0..3 * 256).map(|_| rng.gen_range(0.0..1.0)).collect(),
            &[1, 3, 16, 16],
        );
        let fb = e.features(&black);
        let fn_ = e.features(&noisy);
        assert!(fb.sub(&fn_).abs().max() > 1e-3);
    }

    #[test]
    fn features_bounded_by_tanh() {
        let e = FeatureExtractor::new(8);
        let img = Tensor::full(&[1, 3, 16, 16], 100.0);
        let f = e.features(&img);
        assert!(f.abs().max() <= 1.0 + 1e-5);
    }
}
