//! Fréchet Inception Distance over the fixed feature extractor.

use crate::features::FeatureExtractor;
use aero_tensor::{covariance, matrix_sqrt_psd, trace, Tensor, TensorError};

/// Computes FID between two image sets (each image `[3, s, s]`).
///
/// `FID = ‖μ_r − μ_g‖² + tr(Σ_r + Σ_g − 2 (Σ_r^{1/2} Σ_g Σ_r^{1/2})^{1/2})`,
/// using the symmetric-product form to keep every square root PSD.
///
/// # Errors
///
/// Propagates eigendecomposition failures.
///
/// # Panics
///
/// Panics if either set is empty or image shapes are inconsistent.
pub fn fid(
    extractor: &FeatureExtractor,
    real: &[Tensor],
    generated: &[Tensor],
) -> Result<f32, TensorError> {
    let fr = extractor.features_of(real);
    let fg = extractor.features_of(generated);
    frechet_distance(&fr, &fg)
}

/// Fréchet distance between two feature matrices `[n, d]`.
///
/// # Errors
///
/// Propagates eigendecomposition failures.
pub fn frechet_distance(fr: &Tensor, fg: &Tensor) -> Result<f32, TensorError> {
    let (mu_r, cov_r) = covariance(fr);
    let (mu_g, cov_g) = covariance(fg);
    let diff = mu_r.sub(&mu_g);
    let mean_term = diff.dot(&diff);
    let sqrt_r = matrix_sqrt_psd(&cov_r)?;
    let inner = sqrt_r.matmul(&cov_g).matmul(&sqrt_r);
    // symmetrize against round-off before the second square root
    let inner = inner.add(&inner.transpose()).mul_scalar(0.5);
    let sqrt_mix = matrix_sqrt_psd(&inner)?;
    let cov_term = trace(&cov_r) + trace(&cov_g) - 2.0 * trace(&sqrt_mix);
    Ok((mean_term + cov_term).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn images(n: usize, bias: f32, rng: &mut StdRng) -> Vec<Tensor> {
        (0..n)
            .map(|_| {
                Tensor::from_vec(
                    (0..3 * 16 * 16)
                        .map(|_| (rng.gen_range(0.0..1.0f32) + bias).clamp(0.0, 1.0))
                        .collect(),
                    &[3, 16, 16],
                )
            })
            .collect()
    }

    #[test]
    fn fid_of_identical_sets_is_zero() {
        let e = FeatureExtractor::new(8);
        let mut rng = StdRng::seed_from_u64(1);
        let set = images(10, 0.0, &mut rng);
        let v = fid(&e, &set, &set).unwrap();
        assert!(v < 1e-3, "self-FID {v}");
    }

    #[test]
    fn fid_grows_with_distribution_shift() {
        let e = FeatureExtractor::new(8);
        let mut rng = StdRng::seed_from_u64(2);
        let real = images(16, 0.0, &mut rng);
        let near = images(16, 0.05, &mut rng);
        let far = images(16, 0.5, &mut rng);
        let d_near = fid(&e, &real, &near).unwrap();
        let d_far = fid(&e, &real, &far).unwrap();
        assert!(d_far > d_near, "far {d_far} should exceed near {d_near}");
    }

    #[test]
    fn fid_symmetric() {
        let e = FeatureExtractor::new(8);
        let mut rng = StdRng::seed_from_u64(3);
        let a = images(12, 0.0, &mut rng);
        let b = images(12, 0.2, &mut rng);
        let ab = fid(&e, &a, &b).unwrap();
        let ba = fid(&e, &b, &a).unwrap();
        assert!((ab - ba).abs() < 0.05 * ab.abs().max(1.0), "{ab} vs {ba}");
    }

    #[test]
    fn frechet_distance_of_gaussian_shift() {
        // Two unit-variance gaussians d apart in mean: FID ≈ d².
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn(&[4000, 3], &mut rng);
        let b = Tensor::randn(&[4000, 3], &mut rng).add_scalar(1.0);
        let d = frechet_distance(&a, &b).unwrap();
        assert!((d - 3.0).abs() < 0.4, "expected ~3.0, got {d}");
    }
}
