//! Peak signal-to-noise ratio.

use aero_tensor::Tensor;

/// PSNR (dB) between two `[0, 1]`-valued images of equal shape.
///
/// Returns `f32::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn psnr(reference: &Tensor, generated: &Tensor) -> f32 {
    assert_eq!(reference.shape(), generated.shape(), "psnr shape mismatch");
    let mse = reference.sub(generated).powf(2.0).mean();
    if mse <= 0.0 {
        return f32::INFINITY;
    }
    10.0 * (1.0 / mse).log10()
}

/// Mean PSNR over paired image sets.
///
/// # Panics
///
/// Panics if the sets differ in length or are empty.
pub fn psnr_batch(reference: &[Tensor], generated: &[Tensor]) -> f32 {
    assert_eq!(reference.len(), generated.len(), "psnr_batch length mismatch");
    assert!(!reference.is_empty(), "psnr_batch needs at least one pair");
    let sum: f32 = reference.iter().zip(generated).map(|(r, g)| psnr(r, g)).sum();
    sum / reference.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_infinite() {
        let a = Tensor::full(&[3, 4, 4], 0.5);
        assert_eq!(psnr(&a, &a), f32::INFINITY);
    }

    #[test]
    fn known_value_for_constant_error() {
        let a = Tensor::zeros(&[3, 4, 4]);
        let b = Tensor::full(&[3, 4, 4], 0.1);
        // mse = 0.01 -> psnr = 20 dB
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-4);
    }

    #[test]
    fn closer_images_score_higher() {
        let a = Tensor::zeros(&[3, 4, 4]);
        let near = Tensor::full(&[3, 4, 4], 0.05);
        let far = Tensor::full(&[3, 4, 4], 0.5);
        assert!(psnr(&a, &near) > psnr(&a, &far));
    }

    #[test]
    fn batch_averages() {
        let a = Tensor::zeros(&[3, 2, 2]);
        let b = Tensor::full(&[3, 2, 2], 0.1); // 20 dB
        let c = Tensor::full(&[3, 2, 2], 1.0); // 0 dB
        let v = psnr_batch(&[a.clone(), a.clone()], &[b, c]);
        assert!((v - 10.0).abs() < 1e-3);
    }
}
