//! Table formatting for experiment reports.

use std::fmt;

/// One table row: a model name plus metric values in column order.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Row label (model or configuration name).
    pub name: String,
    /// Metric values, in the table's column order.
    pub values: Vec<f32>,
}

impl MetricRow {
    /// Creates a row.
    pub fn new(name: impl Into<String>, values: Vec<f32>) -> Self {
        MetricRow { name: name.into(), values }
    }
}

/// A formatted metric table in the style of the paper's Tables I/II/IV.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<MetricRow>,
}

impl MetricTable {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        MetricTable {
            title: title.into(),
            columns: columns.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the column count.
    pub fn push(&mut self, row: MetricRow) {
        assert_eq!(row.values.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The rows added so far.
    pub fn rows(&self) -> &[MetricRow] {
        &self.rows
    }

    /// The row whose first-column value is lowest (best for ↓ metrics).
    pub fn best_by_column(&self, col: usize, lower_is_better: bool) -> Option<&MetricRow> {
        self.rows.iter().min_by(|a, b| {
            let (x, y) = (a.values[col], b.values[col]);
            let ord = x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
            if lower_is_better {
                ord
            } else {
                ord.reverse()
            }
        })
    }
}

impl fmt::Display for MetricTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain(std::iter::once("Model".len()))
            .max()
            .unwrap_or(8);
        write!(f, "| {:name_w$} ", "Model")?;
        for c in &self.columns {
            write!(f, "| {c:>10} ")?;
        }
        writeln!(f, "|")?;
        write!(f, "|{:-<w$}", "", w = name_w + 2)?;
        for _ in &self.columns {
            write!(f, "|{:-<12}", "")?;
        }
        writeln!(f, "|")?;
        for r in &self.rows {
            write!(f, "| {:name_w$} ", r.name)?;
            for v in &r.values {
                write!(f, "| {v:>10.2} ")?;
            }
            writeln!(f, "|")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_and_finds_best() {
        let mut t = MetricTable::new("Table I", &["FID ↓", "PSNR ↑", "KID ↓"]);
        t.push(MetricRow::new("DDPM", vec![217.95, 10.38, 0.18]));
        t.push(MetricRow::new("AeroDiffusion", vec![78.15, 5.98, 0.04]));
        let s = t.to_string();
        assert!(s.contains("DDPM") && s.contains("78.15"));
        assert_eq!(t.best_by_column(0, true).unwrap().name, "AeroDiffusion");
        assert_eq!(t.best_by_column(1, false).unwrap().name, "DDPM");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = MetricTable::new("t", &["a", "b"]);
        t.push(MetricRow::new("x", vec![1.0]));
    }
}
