//! Image-synthesis evaluation metrics.
//!
//! The paper reports FID, KID, and PSNR (Table I, Table IV) plus CLIP
//! score (Table II; computed by the CLIP model in `aero-vision`). FID and
//! KID conventionally use Inception-v3 features; with no pretrained
//! checkpoint available, [`FeatureExtractor`] is a *fixed, seeded*
//! random-weight convolutional network — a standard random-features proxy
//! that preserves the ordering between generators evaluated on the same
//! data, which is what the paper's comparisons measure.
//!
//! # Example
//!
//! ```
//! use aero_metrics::{FeatureExtractor, fid};
//! use aero_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let extractor = FeatureExtractor::new(16);
//! let real: Vec<Tensor> = (0..8).map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng)).collect();
//! let same = fid(&extractor, &real, &real)?;
//! assert!(same < 1e-3, "FID of a set with itself is ~0, got {same}");
//! # Ok::<(), aero_tensor::TensorError>(())
//! ```

mod features;
mod frechet;
mod kernel;
mod psnr;
mod report;

pub use features::FeatureExtractor;
pub use frechet::fid;
pub use kernel::kid;
pub use psnr::{psnr, psnr_batch};
pub use report::{MetricRow, MetricTable};
