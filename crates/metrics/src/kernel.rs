//! Kernel Inception Distance: unbiased polynomial-kernel MMD².

use crate::features::FeatureExtractor;
use aero_tensor::Tensor;

/// The standard KID kernel: `k(x, y) = (xᵀy / d + 1)³`.
fn poly_kernel(x: &[f32], y: &[f32]) -> f32 {
    let d = x.len() as f32;
    let dot: f32 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    (dot / d + 1.0).powi(3)
}

/// Computes KID between two image sets (each image `[3, s, s]`).
///
/// Uses the unbiased MMD² estimator:
/// `MMD² = E[k(x,x')] + E[k(y,y')] − 2 E[k(x,y)]`
/// with the diagonal excluded from the within-set terms.
///
/// # Panics
///
/// Panics if either set holds fewer than two images.
pub fn kid(extractor: &FeatureExtractor, real: &[Tensor], generated: &[Tensor]) -> f32 {
    assert!(real.len() >= 2 && generated.len() >= 2, "kid needs at least two images per set");
    let fr = extractor.features_of(real);
    let fg = extractor.features_of(generated);
    kid_from_features(&fr, &fg)
}

/// KID from precomputed feature matrices `[n, d]`.
///
/// # Panics
///
/// Panics if either matrix has fewer than two rows.
pub fn kid_from_features(fr: &Tensor, fg: &Tensor) -> f32 {
    let (n, d) = (fr.shape()[0], fr.shape()[1]);
    let m = fg.shape()[0];
    assert!(n >= 2 && m >= 2, "kid needs at least two samples per set");
    assert_eq!(d, fg.shape()[1], "feature dims must match");
    let xr = fr.as_slice();
    let xg = fg.as_slice();
    fn row(x: &[f32], i: usize, d: usize) -> &[f32] {
        &x[i * d..(i + 1) * d]
    }

    let mut k_rr = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                k_rr += poly_kernel(row(xr, i, d), row(xr, j, d)) as f64;
            }
        }
    }
    k_rr /= (n * (n - 1)) as f64;

    let mut k_gg = 0.0f64;
    for i in 0..m {
        for j in 0..m {
            if i != j {
                k_gg += poly_kernel(row(xg, i, d), row(xg, j, d)) as f64;
            }
        }
    }
    k_gg /= (m * (m - 1)) as f64;

    let mut k_rg = 0.0f64;
    for i in 0..n {
        for j in 0..m {
            k_rg += poly_kernel(row(xr, i, d), row(xg, j, d)) as f64;
        }
    }
    k_rg /= (n * m) as f64;

    (k_rr + k_gg - 2.0 * k_rg) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn images(n: usize, bias: f32, rng: &mut StdRng) -> Vec<Tensor> {
        (0..n)
            .map(|_| {
                Tensor::from_vec(
                    (0..3 * 16 * 16)
                        .map(|_| (rng.gen_range(0.0..1.0f32) + bias).clamp(0.0, 1.0))
                        .collect(),
                    &[3, 16, 16],
                )
            })
            .collect()
    }

    #[test]
    fn kid_near_zero_for_same_distribution() {
        let e = FeatureExtractor::new(8);
        let mut rng = StdRng::seed_from_u64(1);
        let a = images(20, 0.0, &mut rng);
        let b = images(20, 0.0, &mut rng);
        let v = kid(&e, &a, &b);
        assert!(v.abs() < 0.01, "same-distribution KID {v}");
    }

    #[test]
    fn kid_grows_with_shift() {
        let e = FeatureExtractor::new(8);
        let mut rng = StdRng::seed_from_u64(2);
        let real = images(16, 0.0, &mut rng);
        let near = images(16, 0.05, &mut rng);
        let far = images(16, 0.5, &mut rng);
        assert!(kid(&e, &real, &far) > kid(&e, &real, &near));
    }

    #[test]
    fn kid_from_features_identical_gaussians() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[50, 4], &mut rng);
        let b = Tensor::randn(&[50, 4], &mut rng);
        assert!(kid_from_features(&a, &b).abs() < 0.3);
    }

    #[test]
    fn unbiased_estimator_can_go_slightly_negative() {
        // The unbiased estimator has no positivity constraint for small n;
        // just check it stays near zero for identical sets.
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let v = kid_from_features(&a, &a);
        assert!(v <= 1e-4, "self-KID should be ≤ 0 up to rounding, got {v}");
    }
}
