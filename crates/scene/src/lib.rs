//! Procedural aerial-scene substrate standing in for VisDrone-DET.
//!
//! The paper trains and evaluates on VisDrone-DET — 10,209 drone images
//! with 2.6 million annotated boxes over pedestrians, cars, vans, trucks
//! and more, captured across 14 cities at varying altitudes, angles, and
//! times of day. That dataset is not available in this environment, so
//! this crate generates a synthetic equivalent that preserves the
//! *statistics the paper's arguments depend on*:
//!
//! * dense scenes with roughly 20–90 small objects per image (Fig. 1),
//! * structured layouts (highways, intersections, markets, campuses,
//!   parks, residential blocks) with spatially correlated object
//!   placement,
//! * a parametric drone viewpoint (altitude, pitch, heading) so
//!   viewpoint-transition synthesis (Table III) has ground truth,
//! * day/night lighting (Fig. 5), and
//! * exact bounding-box + class annotations for every object, which the
//!   paper gets from VisDrone labels and uses both to train YOLO and to
//!   build keypoint-aware captions.
//!
//! # Example
//!
//! ```
//! use aero_scene::{SceneGenerator, SceneGeneratorConfig, Rasterizer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let spec = SceneGenerator::new(SceneGeneratorConfig::default()).generate(&mut rng);
//! let annotated = Rasterizer::new(32, 32).render(&spec);
//! assert!(!annotated.boxes.is_empty());
//! ```

mod dataset;
mod layout;
mod raster;
mod types;

pub use dataset::{
    build_classical_dataset, build_dataset, AerialDataset, DatasetConfig, DatasetItem,
    ObjectCountStats,
};
pub use layout::{Layout, RoadSegment, SceneGenerator, SceneGeneratorConfig};
pub use raster::{AnnotatedImage, Homography, Image, Rasterizer};
pub use types::{
    Annotation, BBox, ObjectClass, SceneKind, SceneObject, SceneSpec, TimeOfDay, Viewpoint,
};
