//! Rasterization of scene specs into RGB images with annotations.

use crate::layout::Layout;
use crate::types::{Annotation, BBox, SceneSpec, TimeOfDay, Viewpoint};
use aero_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// An RGB image with `f32` channels in `[0, 1]`, stored channel-major
/// (`[3, h, w]`, matching the tensor layout the models consume).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Image {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        Image { width, height, data: vec![0.0; 3 * width * height] }
    }

    /// Builds an image from a `[3, h, w]` tensor, clamping to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is `[3, h, w]`.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.rank(), 3, "image tensor must be [3, h, w]");
        assert_eq!(t.shape()[0], 3, "image tensor must have 3 channels");
        let (h, w) = (t.shape()[1], t.shape()[2]);
        Image { width: w, height: h, data: t.clamp(0.0, 1.0).into_vec() }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reads the RGB value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> [f32; 3] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let plane = self.width * self.height;
        let idx = y * self.width + x;
        [self.data[idx], self.data[plane + idx], self.data[2 * plane + idx]]
    }

    /// Writes the RGB value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: [f32; 3]) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let plane = self.width * self.height;
        let idx = y * self.width + x;
        self.data[idx] = rgb[0];
        self.data[plane + idx] = rgb[1];
        self.data[2 * plane + idx] = rgb[2];
    }

    /// The image as a `[3, h, w]` tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), &[3, self.height, self.width])
    }

    /// Mean luminance (Rec. 601 weights) — used to verify night renders.
    pub fn mean_luminance(&self) -> f32 {
        let plane = self.width * self.height;
        let mut acc = 0.0;
        for i in 0..plane {
            acc += 0.299 * self.data[i]
                + 0.587 * self.data[plane + i]
                + 0.114 * self.data[2 * plane + i];
        }
        acc / plane as f32
    }

    /// Extracts a crop, clamping the window to the image, and resizes it
    /// to `(out_w, out_h)` with nearest-neighbour sampling. Used by the
    /// ROI feature-augmentation path ("each region is resized to match
    /// the dimensions of the original image").
    pub fn crop_resize(&self, bbox: &BBox, out_w: usize, out_h: usize) -> Image {
        let b = bbox.clip(self.width, self.height);
        let (bw, bh) = (b.width().max(1.0), b.height().max(1.0));
        let mut out = Image::new(out_w, out_h);
        for oy in 0..out_h {
            for ox in 0..out_w {
                let sx = (b.x0 + (ox as f32 + 0.5) / out_w as f32 * bw) as usize;
                let sy = (b.y0 + (oy as f32 + 0.5) / out_h as f32 * bh) as usize;
                let sx = sx.min(self.width - 1);
                let sy = sy.min(self.height - 1);
                out.set_pixel(ox, oy, self.pixel(sx, sy));
            }
        }
        out
    }

    /// Nearest-neighbour resize of the whole image.
    pub fn resize(&self, out_w: usize, out_h: usize) -> Image {
        self.crop_resize(&BBox::new(0.0, 0.0, self.width as f32, self.height as f32), out_w, out_h)
    }

    /// Writes the image as a binary PPM (P6) file.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure.
    pub fn save_ppm<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "P6\n{} {}\n255", self.width, self.height)?;
        let plane = self.width * self.height;
        let mut buf = Vec::with_capacity(3 * plane);
        for i in 0..plane {
            for c in 0..3 {
                buf.push((self.data[c * plane + i].clamp(0.0, 1.0) * 255.0) as u8);
            }
        }
        f.write_all(&buf)
    }

    /// Reads a binary PPM (P6) file written by [`Image::save_ppm`] (or any
    /// 8-bit P6 writer), mapping bytes back into `[0, 1]` channels.
    ///
    /// # Errors
    ///
    /// Returns an error for I/O failures or malformed headers/payloads.
    pub fn load_ppm<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::decode_ppm(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Decodes an in-memory binary PPM (P6) payload.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed header field or a
    /// short pixel payload.
    pub fn decode_ppm(bytes: &[u8]) -> Result<Self, String> {
        // Header: "P6" <ws> width <ws> height <ws> maxval <single ws> data.
        let mut pos = 0usize;
        let mut field = |bytes: &[u8]| -> Result<String, String> {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            let start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if start == pos {
                return Err("truncated PPM header".into());
            }
            String::from_utf8(bytes[start..pos].to_vec()).map_err(|_| "non-ASCII header".into())
        };
        if field(bytes)? != "P6" {
            return Err("not a P6 PPM".into());
        }
        let width: usize = field(bytes)?.parse().map_err(|_| "bad width")?;
        let height: usize = field(bytes)?.parse().map_err(|_| "bad height")?;
        if field(bytes)? != "255" {
            return Err("only maxval 255 is supported".into());
        }
        pos += 1; // the single whitespace byte before the payload
        let plane = width * height;
        let payload = bytes.get(pos..pos + 3 * plane).ok_or("short PPM payload")?;
        let mut data = vec![0.0f32; 3 * plane];
        for i in 0..plane {
            for c in 0..3 {
                data[c * plane + i] = f32::from(payload[3 * i + c]) / 255.0;
            }
        }
        Ok(Image { width, height, data })
    }

    /// Warps this image through a pixel-to-pixel [`Homography`]: output
    /// pixel `(x, y)` samples the source at `h.apply(x, y)` with
    /// nearest-neighbour lookup, clamped to the image (edge extension).
    pub fn warp(&self, h: &Homography) -> Image {
        let mut out = Image::new(self.width, self.height);
        for oy in 0..self.height {
            for ox in 0..self.width {
                let (sx, sy) = h.apply(ox as f32 + 0.5, oy as f32 + 0.5);
                let sx = (sx.floor().max(0.0) as usize).min(self.width - 1);
                let sy = (sy.floor().max(0.0) as usize).min(self.height - 1);
                out.set_pixel(ox, oy, self.pixel(sx, sy));
            }
        }
        out
    }
}

/// An affine pixel-to-pixel homography derived from the parametric drone
/// camera (heading rotation, altitude zoom, pitch foreshortening).
///
/// The camera model in [`Rasterizer::world_to_pixel`] is affine, so the
/// composition `pixel →(view A)→ world →(view B)→ pixel` is exactly
/// representable as a 3×3 matrix with last row `[0, 0, 1]`. This is the
/// cross-view warp prior used by the view-translation workload: warp the
/// source view into the target view's frame before conditioning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Homography {
    /// Row-major 3×3 matrix; maps homogeneous `(x, y, 1)` pixel coords.
    pub m: [[f32; 3]; 3],
}

impl Homography {
    /// The identity warp.
    pub fn identity() -> Self {
        Homography { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] }
    }

    /// The warp taking **target-view** pixel coordinates to **source-view**
    /// pixel coordinates on a `width`×`height` raster: the inverse camera
    /// of `target` into world space composed with the forward camera of
    /// `source`. `image.warp(&h)` with this homography renders the source
    /// image as it would appear from the target viewpoint.
    pub fn between(width: usize, height: usize, source: &Viewpoint, target: &Viewpoint) -> Self {
        let to_source = camera_matrix(width, height, source);
        let from_target = invert_affine(&camera_matrix(width, height, target));
        Homography { m: mat_mul(&to_source, &from_target) }
    }

    /// Applies the homography to a pixel coordinate.
    pub fn apply(&self, x: f32, y: f32) -> (f32, f32) {
        let m = &self.m;
        (m[0][0] * x + m[0][1] * y + m[0][2], m[1][0] * x + m[1][1] * y + m[1][2])
    }

    /// The inverse warp.
    pub fn invert(&self) -> Self {
        Homography { m: invert_affine(&self.m) }
    }

    /// A stable 64-bit fingerprint of the matrix (FNV-1a over the f32 bit
    /// patterns), used in condition-cache and shard-router keys.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for row in &self.m {
            for &value in row {
                for byte in value.to_bits().to_le_bytes() {
                    hash ^= u64::from(byte);
                    hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
        }
        hash
    }
}

/// The affine world→pixel camera matrix of [`Rasterizer::world_to_pixel`].
fn camera_matrix(width: usize, height: usize, vp: &Viewpoint) -> [[f32; 3]; 3] {
    let theta = vp.heading_deg.to_radians();
    let zoom = 1.0 / vp.altitude.max(0.1);
    let fore = vp.pitch_deg.to_radians().sin().max(0.2);
    let (c, s) = (theta.cos(), theta.sin());
    let (w, h) = (width as f32, height as f32);
    let (sx, sy) = (zoom * w, zoom * fore * h);
    // x = ((u-0.5)c - (v-0.5)s)·zoom·W + 0.5W, y likewise with fore·H.
    [
        [sx * c, -sx * s, sx * (0.5 * s - 0.5 * c) + 0.5 * w],
        [sy * s, sy * c, sy * (-0.5 * s - 0.5 * c) + 0.5 * h],
        [0.0, 0.0, 1.0],
    ]
}

fn mat_mul(a: &[[f32; 3]; 3], b: &[[f32; 3]; 3]) -> [[f32; 3]; 3] {
    let mut out = [[0.0f32; 3]; 3];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = (0..3).map(|k| a[i][k] * b[k][j]).sum();
        }
    }
    out
}

/// Inverts an affine matrix (last row `[0, 0, 1]`). The camera's 2×2
/// block is rotation·diagonal-scale with strictly positive scales, so it
/// is always invertible.
fn invert_affine(m: &[[f32; 3]; 3]) -> [[f32; 3]; 3] {
    let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
    let inv = [[m[1][1] / det, -m[0][1] / det], [-m[1][0] / det, m[0][0] / det]];
    [
        [inv[0][0], inv[0][1], -(inv[0][0] * m[0][2] + inv[0][1] * m[1][2])],
        [inv[1][0], inv[1][1], -(inv[1][0] * m[0][2] + inv[1][1] * m[1][2])],
        [0.0, 0.0, 1.0],
    ]
}

/// A rendered scene: the image plus its pixel-space annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedImage {
    /// The rendered RGB image.
    pub image: Image,
    /// Visible objects' class + clipped pixel boxes.
    pub boxes: Vec<Annotation>,
}

/// Renders [`SceneSpec`]s at a fixed resolution.
///
/// The renderer uses inverse mapping: every pixel is mapped back into the
/// scene's world frame through the drone viewpoint (heading rotation,
/// altitude zoom, oblique pitch foreshortening) and shaded by querying the
/// layout, then objects are composited on top. Night scenes darken the
/// palette and add headlight/streetlight pools, mirroring the "high-noise
/// condition" the paper describes for Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rasterizer {
    width: usize,
    height: usize,
}

impl Rasterizer {
    /// Creates a rasterizer producing `width`×`height` images.
    pub fn new(width: usize, height: usize) -> Self {
        Rasterizer { width, height }
    }

    /// Output width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Output height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Renders the scene and its annotations.
    pub fn render(&self, spec: &SceneSpec) -> AnnotatedImage {
        let vp = &spec.viewpoint;
        let mut image = Image::new(self.width, self.height);
        let night = spec.time == TimeOfDay::Night;

        // Deterministic per-scene noise.
        let mut noise_state = spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut noise = move || {
            noise_state ^= noise_state << 13;
            noise_state ^= noise_state >> 7;
            noise_state ^= noise_state << 17;
            ((noise_state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };

        for py in 0..self.height {
            for px in 0..self.width {
                let (u, v) = self.pixel_to_world(px as f32 + 0.5, py as f32 + 0.5, vp);
                let mut rgb = self.shade_world(u, v, spec);
                // Object compositing in world space.
                for o in &spec.objects {
                    let (len, wid) = o.class.footprint();
                    let (dx, dy) = (u - o.x, v - o.y);
                    let (c, s) = (o.heading.cos(), o.heading.sin());
                    let local_x = dx * c + dy * s;
                    let local_y = -dx * s + dy * c;
                    if local_x.abs() <= len * 0.5 && local_y.abs() <= wid * 0.5 {
                        let base = o.class.base_color();
                        let t = o.tint * 0.4 - 0.2;
                        rgb = [
                            (base[0] + t).clamp(0.0, 1.0),
                            (base[1] + t).clamp(0.0, 1.0),
                            (base[2] + t).clamp(0.0, 1.0),
                        ];
                        // windshield hint towards the front of vehicles
                        if len > 0.03 && local_x > len * 0.28 {
                            rgb = [0.25, 0.3, 0.38];
                        }
                    }
                }
                if night {
                    rgb = self.apply_night(rgb, u, v, spec);
                }
                let n = noise() * 0.04;
                rgb = [
                    (rgb[0] + n).clamp(0.0, 1.0),
                    (rgb[1] + n).clamp(0.0, 1.0),
                    (rgb[2] + n).clamp(0.0, 1.0),
                ];
                image.set_pixel(px, py, rgb);
            }
        }

        let boxes = self.annotate(spec);
        AnnotatedImage { image, boxes }
    }

    /// Projects a world point into pixel coordinates under a viewpoint.
    pub fn world_to_pixel(&self, u: f32, v: f32, vp: &Viewpoint) -> (f32, f32) {
        let theta = vp.heading_deg.to_radians();
        let zoom = 1.0 / vp.altitude.max(0.1);
        let fore = vp.pitch_deg.to_radians().sin().max(0.2);
        let (c, s) = (theta.cos(), theta.sin());
        let rx = (u - 0.5) * c - (v - 0.5) * s;
        let ry = (u - 0.5) * s + (v - 0.5) * c;
        let x = rx * zoom + 0.5;
        let y = ry * zoom * fore + 0.5;
        (x * self.width as f32, y * self.height as f32)
    }

    /// Maps a pixel coordinate back into the scene's world frame — the
    /// exact inverse of [`Rasterizer::world_to_pixel`]. Public so camera
    /// consumers (e.g. the cross-view homography) can compose the two.
    pub fn pixel_to_world(&self, px: f32, py: f32, vp: &Viewpoint) -> (f32, f32) {
        let theta = vp.heading_deg.to_radians();
        let zoom = 1.0 / vp.altitude.max(0.1);
        let fore = vp.pitch_deg.to_radians().sin().max(0.2);
        let x = px / self.width as f32 - 0.5;
        let y = py / self.height as f32 - 0.5;
        let rx = x / zoom;
        let ry = y / (zoom * fore);
        let (c, s) = (theta.cos(), theta.sin());
        let u = rx * c + ry * s + 0.5;
        let v = -rx * s + ry * c + 0.5;
        (u, v)
    }

    fn shade_world(&self, u: f32, v: f32, spec: &SceneSpec) -> [f32; 3] {
        let layout: &Layout = &spec.layout;
        // Out-of-world margins render as darker earth.
        if !(0.0..=1.0).contains(&u) || !(0.0..=1.0).contains(&v) {
            return [0.22, 0.24, 0.18];
        }
        for w in &layout.water {
            let d = ((u - w.cx).powi(2) + (v - w.cy).powi(2)).sqrt();
            if d <= w.r {
                return [0.16, 0.32, 0.52];
            }
        }
        for road in &layout.roads {
            let d = road.distance_to((u, v));
            if d <= road.half_width {
                // lane markings: thin bright bands between lanes
                let lanes = road.lanes.max(1);
                if lanes > 1 {
                    let rel = (d / road.half_width + 1.0) * 0.5; // 0..1 across road
                    let lane_pos = rel * lanes as f32;
                    if (lane_pos - lane_pos.round()).abs() < 0.06
                        && lane_pos.round() as usize != 0
                        && (lane_pos.round() as usize) < lanes
                    {
                        return [0.85, 0.85, 0.82];
                    }
                }
                return [0.32, 0.32, 0.34];
            }
            if d <= road.half_width * 1.15 {
                return [0.78, 0.78, 0.75]; // kerb / painted edge
            }
        }
        for p in &layout.plazas {
            if (u - p.cx).abs() <= p.hx && (v - p.cy).abs() <= p.hy {
                return [0.62, 0.6, 0.58];
            }
        }
        for b in &layout.buildings {
            if (u - b.cx).abs() <= b.hx && (v - b.cy).abs() <= b.hy {
                // roof palette varies with tint: warm reds through greys
                let t = b.tint;
                return [0.45 + 0.4 * (1.0 - t), 0.28 + 0.22 * t, 0.25 + 0.25 * t];
            }
        }
        for t in &layout.trees {
            let d = ((u - t.cx).powi(2) + (v - t.cy).powi(2)).sqrt();
            if d <= t.r {
                return [0.12, 0.38 + 0.1 * (1.0 - d / t.r), 0.14];
            }
        }
        [0.35, 0.48, 0.26] // grass
    }

    fn apply_night(&self, rgb: [f32; 3], u: f32, v: f32, spec: &SceneSpec) -> [f32; 3] {
        let mut out = [rgb[0] * 0.16, rgb[1] * 0.17, rgb[2] * 0.22];
        // Headlight pools ahead of vehicles.
        for o in &spec.objects {
            let (len, _) = o.class.footprint();
            if len < 0.03 {
                continue; // pedestrians/bicycles carry no headlights
            }
            let hx = o.x + o.heading.cos() * len * 0.7;
            let hy = o.y + o.heading.sin() * len * 0.7;
            let d = ((u - hx).powi(2) + (v - hy).powi(2)).sqrt();
            let glow = (1.0 - d / 0.03).max(0.0);
            if glow > 0.0 {
                out[0] = (out[0] + 0.85 * glow).min(1.0);
                out[1] = (out[1] + 0.8 * glow).min(1.0);
                out[2] = (out[2] + 0.6 * glow).min(1.0);
            }
        }
        // Streetlight pools along roads.
        for road in &spec.layout.roads {
            let mut t = 0.1;
            while t < 1.0 {
                let (lx, ly) = road.point_at(t, road.half_width * 1.1);
                let d = ((u - lx).powi(2) + (v - ly).powi(2)).sqrt();
                let glow = (1.0 - d / 0.05).max(0.0) * 0.5;
                if glow > 0.0 {
                    out[0] = (out[0] + glow * 0.9).min(1.0);
                    out[1] = (out[1] + glow * 0.75).min(1.0);
                    out[2] = (out[2] + glow * 0.4).min(1.0);
                }
                t += 0.2;
            }
        }
        out
    }

    fn annotate(&self, spec: &SceneSpec) -> Vec<Annotation> {
        let mut boxes = Vec::new();
        for o in &spec.objects {
            let (len, wid) = o.class.footprint();
            let (c, s) = (o.heading.cos(), o.heading.sin());
            let corners = [
                (o.x + c * len * 0.5 - s * wid * 0.5, o.y + s * len * 0.5 + c * wid * 0.5),
                (o.x + c * len * 0.5 + s * wid * 0.5, o.y + s * len * 0.5 - c * wid * 0.5),
                (o.x - c * len * 0.5 - s * wid * 0.5, o.y - s * len * 0.5 + c * wid * 0.5),
                (o.x - c * len * 0.5 + s * wid * 0.5, o.y - s * len * 0.5 - c * wid * 0.5),
            ];
            let mut x0 = f32::INFINITY;
            let mut y0 = f32::INFINITY;
            let mut x1 = f32::NEG_INFINITY;
            let mut y1 = f32::NEG_INFINITY;
            for (u, v) in corners {
                let (px, py) = self.world_to_pixel(u, v, &spec.viewpoint);
                x0 = x0.min(px);
                y0 = y0.min(py);
                x1 = x1.max(px);
                y1 = y1.max(py);
            }
            let bbox = BBox::new(x0, y0, x1, y1).clip(self.width, self.height);
            if bbox.is_visible() {
                boxes.push(Annotation { class: o.class, bbox });
            }
        }
        boxes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{SceneGenerator, SceneGeneratorConfig};
    use crate::types::SceneKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_scene(seed: u64) -> SceneSpec {
        let gen = SceneGenerator::new(SceneGeneratorConfig::default());
        gen.generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn image_pixel_round_trip() {
        let mut img = Image::new(4, 4);
        img.set_pixel(2, 1, [0.1, 0.5, 0.9]);
        assert_eq!(img.pixel(2, 1), [0.1, 0.5, 0.9]);
        assert_eq!(img.pixel(0, 0), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn tensor_round_trip() {
        let mut img = Image::new(3, 2);
        img.set_pixel(1, 1, [0.2, 0.4, 0.6]);
        let t = img.to_tensor();
        assert_eq!(t.shape(), &[3, 2, 3]);
        assert_eq!(Image::from_tensor(&t), img);
    }

    #[test]
    fn render_produces_in_range_pixels_and_boxes() {
        let r = Rasterizer::new(32, 32);
        let a = r.render(&sample_scene(1));
        let t = a.image.to_tensor();
        assert!(t.min() >= 0.0 && t.max() <= 1.0);
        assert!(!a.boxes.is_empty());
        for b in &a.boxes {
            assert!(b.bbox.x1 <= 32.0 && b.bbox.y1 <= 32.0);
        }
    }

    #[test]
    fn night_is_darker_than_day() {
        let r = Rasterizer::new(32, 32);
        let spec = sample_scene(2);
        let day = r.render(&spec.with_time(TimeOfDay::Day)).image.mean_luminance();
        let night = r.render(&spec.with_time(TimeOfDay::Night)).image.mean_luminance();
        assert!(night < day * 0.7, "night {night} vs day {day}");
    }

    #[test]
    fn lower_altitude_zooms_in() {
        // At lower altitude the same object covers more pixels.
        let r = Rasterizer::new(64, 64);
        let spec = sample_scene(3);
        let high = r.render(&spec.with_viewpoint(Viewpoint::top_down(1.0)));
        let low = r.render(&spec.with_viewpoint(Viewpoint::top_down(0.5)));
        let area = |a: &AnnotatedImage| -> f32 {
            a.boxes.iter().map(|b| b.bbox.area()).sum::<f32>() / a.boxes.len().max(1) as f32
        };
        assert!(area(&low) > area(&high), "low {} high {}", area(&low), area(&high));
    }

    #[test]
    fn oblique_pitch_compresses_vertically() {
        let r = Rasterizer::new(64, 64);
        let vp_nadir = Viewpoint { altitude: 1.0, pitch_deg: 90.0, heading_deg: 0.0 };
        let vp_oblique = Viewpoint { altitude: 1.0, pitch_deg: 40.0, heading_deg: 0.0 };
        let (_, y_n) = r.world_to_pixel(0.5, 0.9, &vp_nadir);
        let (_, y_o) = r.world_to_pixel(0.5, 0.9, &vp_oblique);
        assert!((y_o - 32.0).abs() < (y_n - 32.0).abs());
    }

    #[test]
    fn render_is_deterministic() {
        let r = Rasterizer::new(32, 32);
        let spec = sample_scene(4);
        assert_eq!(r.render(&spec), r.render(&spec));
    }

    #[test]
    fn crop_resize_shapes() {
        let r = Rasterizer::new(32, 32);
        let a = r.render(&sample_scene(5));
        let b = &a.boxes[0];
        let crop = a.image.crop_resize(&b.bbox, 32, 32);
        assert_eq!((crop.width(), crop.height()), (32, 32));
    }

    #[test]
    fn park_scene_contains_water_pixels() {
        let gen = SceneGenerator::default();
        let mut rng = StdRng::seed_from_u64(8);
        let mut spec = gen.generate_kind(SceneKind::Park, &mut rng);
        spec.time = TimeOfDay::Day;
        spec.viewpoint = Viewpoint::top_down(1.0);
        let img = Rasterizer::new(48, 48).render(&spec).image;
        // count blue-dominant pixels
        let mut blue = 0;
        for y in 0..48 {
            for x in 0..48 {
                let p = img.pixel(x, y);
                if p[2] > p[0] + 0.1 && p[2] > p[1] + 0.1 {
                    blue += 1;
                }
            }
        }
        assert!(blue > 10, "expected pond pixels, found {blue}");
    }

    #[test]
    fn homography_matches_camera_composition() {
        // The matrix form must agree with pixel_to_world ∘ world_to_pixel
        // computed pointwise through the rasterizer.
        let r = Rasterizer::new(32, 32);
        let source = Viewpoint { altitude: 0.6, pitch_deg: 55.0, heading_deg: 25.0 };
        let target = Viewpoint { altitude: 0.9, pitch_deg: 80.0, heading_deg: -40.0 };
        let h = Homography::between(32, 32, &source, &target);
        for &(px, py) in &[(0.5f32, 0.5f32), (17.0, 4.5), (31.5, 31.5), (3.25, 28.0)] {
            let (u, v) = r.pixel_to_world(px, py, &target);
            let (ex, ey) = r.world_to_pixel(u, v, &source);
            let (hx, hy) = h.apply(px, py);
            assert!((hx - ex).abs() < 1e-3 && (hy - ey).abs() < 1e-3, "({hx},{hy}) vs ({ex},{ey})");
        }
    }

    #[test]
    fn homography_inverse_round_trips() {
        let source = Viewpoint { altitude: 0.5, pitch_deg: 45.0, heading_deg: 70.0 };
        let target = Viewpoint::top_down(1.0);
        let h = Homography::between(48, 48, &source, &target);
        let inv = h.invert();
        let (x, y) = h.apply(12.0, 30.0);
        let (bx, by) = inv.apply(x, y);
        assert!((bx - 12.0).abs() < 1e-3 && (by - 30.0).abs() < 1e-3, "({bx}, {by})");
        // Same-viewpoint warp is the identity.
        let id = Homography::between(48, 48, &target, &target);
        let (ix, iy) = id.apply(7.5, 9.5);
        assert!((ix - 7.5).abs() < 1e-4 && (iy - 9.5).abs() < 1e-4);
    }

    #[test]
    fn identity_warp_preserves_the_image() {
        let img = Rasterizer::new(16, 16).render(&sample_scene(9)).image;
        assert_eq!(img.warp(&Homography::identity()), img);
    }

    #[test]
    fn homography_digest_distinguishes_viewpoints() {
        let a = Homography::between(32, 32, &Viewpoint::top_down(1.0), &Viewpoint::top_down(0.5));
        let b = Homography::between(32, 32, &Viewpoint::top_down(1.0), &Viewpoint::top_down(0.6));
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.digest());
    }

    #[test]
    fn ppm_round_trips_through_load() {
        let dir = std::env::temp_dir().join("aero_scene_ppm_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("rt.ppm");
        let img = Rasterizer::new(12, 9).render(&sample_scene(10)).image;
        img.save_ppm(&p).unwrap();
        let back = Image::load_ppm(&p).unwrap();
        assert_eq!((back.width(), back.height()), (12, 9));
        // 8-bit quantization (truncating writer): within one step.
        for y in 0..9 {
            for x in 0..12 {
                let (a, b) = (img.pixel(x, y), back.pixel(x, y));
                for c in 0..3 {
                    assert!((a[c] - b[c]).abs() <= 1.0 / 255.0 + 1e-6, "{a:?} vs {b:?}");
                }
            }
        }
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn ppm_write_succeeds() {
        let dir = std::env::temp_dir().join("aero_scene_ppm");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.ppm");
        Rasterizer::new(8, 8).render(&sample_scene(6)).image.save_ppm(&p).unwrap();
        let meta = std::fs::metadata(&p).unwrap();
        assert!(meta.len() > 8 * 8 * 3);
        let _ = std::fs::remove_file(p);
    }
}
