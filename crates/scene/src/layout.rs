//! Procedural layout and scene generation.

use crate::types::{ObjectClass, SceneKind, SceneObject, SceneSpec, TimeOfDay, Viewpoint};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A straight road segment in world coordinates (`[0, 1]²`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadSegment {
    /// Start point.
    pub start: (f32, f32),
    /// End point.
    pub end: (f32, f32),
    /// Road half-width in world units.
    pub half_width: f32,
    /// Number of painted lanes.
    pub lanes: usize,
}

impl RoadSegment {
    /// Unit direction vector of the road.
    pub fn direction(&self) -> (f32, f32) {
        let dx = self.end.0 - self.start.0;
        let dy = self.end.1 - self.start.1;
        let len = (dx * dx + dy * dy).sqrt().max(1e-6);
        (dx / len, dy / len)
    }

    /// Heading angle in radians.
    pub fn heading(&self) -> f32 {
        let (dx, dy) = self.direction();
        dy.atan2(dx)
    }

    /// A point at parameter `t ∈ [0, 1]` offset `lateral` from the axis.
    pub fn point_at(&self, t: f32, lateral: f32) -> (f32, f32) {
        let (dx, dy) = self.direction();
        let base = (
            self.start.0 + (self.end.0 - self.start.0) * t,
            self.start.1 + (self.end.1 - self.start.1) * t,
        );
        (base.0 - dy * lateral, base.1 + dx * lateral)
    }

    /// Signed distance heuristics: distance from a point to the segment axis.
    pub fn distance_to(&self, p: (f32, f32)) -> f32 {
        let (dx, dy) = self.direction();
        let len = {
            let ex = self.end.0 - self.start.0;
            let ey = self.end.1 - self.start.1;
            (ex * ex + ey * ey).sqrt()
        };
        let px = p.0 - self.start.0;
        let py = p.1 - self.start.1;
        let t = (px * dx + py * dy).clamp(0.0, len);
        let cx = self.start.0 + dx * t;
        let cy = self.start.1 + dy * t;
        ((p.0 - cx).powi(2) + (p.1 - cy).powi(2)).sqrt()
    }
}

/// Axis-aligned world-space rectangle (used for buildings and stalls).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldRect {
    /// Centre x.
    pub cx: f32,
    /// Centre y.
    pub cy: f32,
    /// Half extent along x.
    pub hx: f32,
    /// Half extent along y.
    pub hy: f32,
    /// Roof tint seed in `[0, 1]`.
    pub tint: f32,
}

/// A circular feature (tree canopy or pond).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldCircle {
    /// Centre x.
    pub cx: f32,
    /// Centre y.
    pub cy: f32,
    /// Radius in world units.
    pub r: f32,
}

/// Static scene furniture: roads, buildings, trees, optional water.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Layout {
    /// Road segments (drawn below everything else).
    pub roads: Vec<RoadSegment>,
    /// Buildings (market stalls included).
    pub buildings: Vec<WorldRect>,
    /// Tree canopies.
    pub trees: Vec<WorldCircle>,
    /// Ponds/water bodies.
    pub water: Vec<WorldCircle>,
    /// Paved plaza regions (campus walkways, market floor).
    pub plazas: Vec<WorldRect>,
}

/// Configuration of the scene generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneGeneratorConfig {
    /// Minimum annotated objects per scene (paper: ~20).
    pub min_objects: usize,
    /// Maximum annotated objects per scene (paper: ~90).
    pub max_objects: usize,
    /// Probability of a night scene.
    pub night_probability: f64,
}

impl Default for SceneGeneratorConfig {
    fn default() -> Self {
        SceneGeneratorConfig { min_objects: 20, max_objects: 90, night_probability: 0.25 }
    }
}

/// Procedural generator of [`SceneSpec`]s.
#[derive(Debug, Clone, Default)]
pub struct SceneGenerator {
    config: SceneGeneratorConfig,
}

impl SceneGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: SceneGeneratorConfig) -> Self {
        SceneGenerator { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &SceneGeneratorConfig {
        &self.config
    }

    /// Generates a complete scene from the RNG's current state.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SceneSpec {
        let kind = SceneKind::ALL[rng.gen_range(0..SceneKind::ALL.len())];
        self.generate_kind(kind, rng)
    }

    /// Generates a scene of a specific archetype.
    pub fn generate_kind<R: Rng + ?Sized>(&self, kind: SceneKind, rng: &mut R) -> SceneSpec {
        let time = if rng.gen_bool(self.config.night_probability) {
            TimeOfDay::Night
        } else {
            TimeOfDay::Day
        };
        let viewpoint = Viewpoint {
            altitude: rng.gen_range(0.5..1.0),
            pitch_deg: rng.gen_range(55.0..90.0),
            heading_deg: rng.gen_range(0.0..360.0),
        };
        let seed = rng.gen();
        let (layout, objects) = match kind {
            SceneKind::Highway => self.highway(rng),
            SceneKind::Intersection => self.intersection(rng),
            SceneKind::Market => self.market(rng),
            SceneKind::Campus => self.campus(rng),
            SceneKind::Park => self.park(rng),
            SceneKind::Residential => self.residential(rng),
        };
        SceneSpec { kind, time, viewpoint, layout, objects, seed }
    }

    fn target_count<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.gen_range(self.config.min_objects..=self.config.max_objects)
    }

    fn vehicle_mix<R: Rng + ?Sized>(rng: &mut R) -> ObjectClass {
        match rng.gen_range(0..10) {
            0..=5 => ObjectClass::Car,
            6 => ObjectClass::Van,
            7 => ObjectClass::Truck,
            8 => ObjectClass::Bus,
            _ => ObjectClass::Motor,
        }
    }

    fn place_on_road<R: Rng + ?Sized>(
        road: &RoadSegment,
        class: ObjectClass,
        rng: &mut R,
    ) -> SceneObject {
        let lane_count = road.lanes.max(1);
        let lane = rng.gen_range(0..lane_count) as f32;
        let lane_offset =
            (lane + 0.5) / lane_count as f32 * 2.0 * road.half_width - road.half_width;
        let t = rng.gen_range(0.05..0.95);
        let (x, y) = road.point_at(t, lane_offset * 0.85);
        SceneObject { class, x, y, heading: road.heading(), tint: rng.gen() }
    }

    fn scatter_pedestrians<R: Rng + ?Sized>(
        objects: &mut Vec<SceneObject>,
        n: usize,
        region: (f32, f32, f32, f32),
        rng: &mut R,
    ) {
        let (x0, y0, x1, y1) = region;
        for _ in 0..n {
            objects.push(SceneObject {
                class: if rng.gen_bool(0.85) {
                    ObjectClass::Pedestrian
                } else {
                    ObjectClass::Bicycle
                },
                x: rng.gen_range(x0..x1),
                y: rng.gen_range(y0..y1),
                heading: rng.gen_range(0.0..std::f32::consts::TAU),
                tint: rng.gen(),
            });
        }
    }

    fn highway<R: Rng + ?Sized>(&self, rng: &mut R) -> (Layout, Vec<SceneObject>) {
        let y = rng.gen_range(0.35..0.65);
        let road = RoadSegment {
            start: (0.0, y),
            end: (1.0, y + rng.gen_range(-0.1..0.1)),
            half_width: 0.09,
            lanes: 4,
        };
        let mut layout = Layout { roads: vec![road], ..Layout::default() };
        // Dense neighbourhood on one side, trees on the other (per Fig. 3's
        // running example).
        for _ in 0..rng.gen_range(6..12) {
            layout.buildings.push(WorldRect {
                cx: rng.gen_range(0.05..0.95),
                cy: rng.gen_range(0.02..(y - 0.16).max(0.04)),
                hx: rng.gen_range(0.03..0.07),
                hy: rng.gen_range(0.03..0.06),
                tint: rng.gen(),
            });
        }
        for _ in 0..rng.gen_range(8..16) {
            layout.trees.push(WorldCircle {
                cx: rng.gen_range(0.02..0.98),
                cy: rng.gen_range((y + 0.14).min(0.92)..0.98),
                r: rng.gen_range(0.015..0.04),
            });
        }
        let n = self.target_count(rng);
        let mut objects = Vec::with_capacity(n);
        let vehicles = (n as f32 * 0.8) as usize;
        for _ in 0..vehicles {
            objects.push(Self::place_on_road(&road, Self::vehicle_mix(rng), rng));
        }
        Self::scatter_pedestrians(
            &mut objects,
            n - vehicles,
            (0.05, 0.02, 0.95, (y - 0.12).max(0.05)),
            rng,
        );
        (layout, objects)
    }

    fn intersection<R: Rng + ?Sized>(&self, rng: &mut R) -> (Layout, Vec<SceneObject>) {
        let cx = rng.gen_range(0.4..0.6);
        let cy = rng.gen_range(0.4..0.6);
        let h = RoadSegment { start: (0.0, cy), end: (1.0, cy), half_width: 0.07, lanes: 2 };
        let v = RoadSegment { start: (cx, 0.0), end: (cx, 1.0), half_width: 0.07, lanes: 2 };
        let mut layout = Layout { roads: vec![h, v], ..Layout::default() };
        for corner in [(0.2, 0.2), (0.8, 0.2), (0.2, 0.8), (0.8, 0.8)] {
            for _ in 0..rng.gen_range(1..4) {
                layout.buildings.push(WorldRect {
                    cx: (corner.0 + rng.gen_range(-0.12..0.12f32)).clamp(0.05, 0.95),
                    cy: (corner.1 + rng.gen_range(-0.12..0.12f32)).clamp(0.05, 0.95),
                    hx: rng.gen_range(0.03..0.06),
                    hy: rng.gen_range(0.03..0.06),
                    tint: rng.gen(),
                });
            }
        }
        let n = self.target_count(rng);
        let mut objects = Vec::with_capacity(n);
        let vehicles = (n as f32 * 0.7) as usize;
        for i in 0..vehicles {
            let road = if i % 2 == 0 { &h } else { &v };
            objects.push(Self::place_on_road(road, Self::vehicle_mix(rng), rng));
        }
        Self::scatter_pedestrians(&mut objects, n - vehicles, (0.1, 0.1, 0.9, 0.35), rng);
        (layout, objects)
    }

    fn market<R: Rng + ?Sized>(&self, rng: &mut R) -> (Layout, Vec<SceneObject>) {
        let x = rng.gen_range(0.4..0.6);
        let street = RoadSegment { start: (x, 0.0), end: (x, 1.0), half_width: 0.06, lanes: 1 };
        let mut layout = Layout {
            roads: vec![street],
            plazas: vec![WorldRect { cx: x, cy: 0.5, hx: 0.22, hy: 0.5, tint: 0.5 }],
            ..Layout::default()
        };
        // Red-roofed stalls lining the street.
        for side in [-1.0f32, 1.0] {
            let mut t = 0.06;
            while t < 0.95 {
                layout.buildings.push(WorldRect {
                    cx: x + side * rng.gen_range(0.09..0.13),
                    cy: t,
                    hx: rng.gen_range(0.02..0.035),
                    hy: rng.gen_range(0.025..0.045),
                    tint: rng.gen_range(0.0..0.25), // warm roof tints
                });
                t += rng.gen_range(0.09..0.14);
            }
        }
        let n = self.target_count(rng);
        let mut objects = Vec::with_capacity(n);
        let peds = (n as f32 * 0.7) as usize;
        Self::scatter_pedestrians(
            &mut objects,
            peds,
            ((x - 0.07).max(0.02), 0.02, (x + 0.07).min(0.98), 0.98),
            rng,
        );
        for _ in 0..(n - peds) {
            let class = if rng.gen_bool(0.5) { ObjectClass::Van } else { Self::vehicle_mix(rng) };
            objects.push(Self::place_on_road(&street, class, rng));
        }
        (layout, objects)
    }

    fn campus<R: Rng + ?Sized>(&self, rng: &mut R) -> (Layout, Vec<SceneObject>) {
        let walk1 = RoadSegment { start: (0.0, 0.5), end: (1.0, 0.5), half_width: 0.035, lanes: 1 };
        let walk2 = RoadSegment { start: (0.5, 0.0), end: (0.5, 1.0), half_width: 0.035, lanes: 1 };
        let mut layout = Layout {
            roads: vec![walk1, walk2],
            plazas: vec![WorldRect { cx: 0.5, cy: 0.5, hx: 0.12, hy: 0.12, tint: 0.6 }],
            ..Layout::default()
        };
        for _ in 0..rng.gen_range(2..5) {
            layout.buildings.push(WorldRect {
                cx: rng.gen_range(0.1..0.9),
                cy: rng.gen_range(0.08..0.25),
                hx: rng.gen_range(0.05..0.1),
                hy: rng.gen_range(0.04..0.08),
                tint: rng.gen(),
            });
        }
        for _ in 0..rng.gen_range(10..18) {
            layout.trees.push(WorldCircle {
                cx: rng.gen_range(0.02..0.98),
                cy: rng.gen_range(0.6..0.98),
                r: rng.gen_range(0.015..0.035),
            });
        }
        let n = self.target_count(rng);
        let mut objects = Vec::with_capacity(n);
        let peds = (n as f32 * 0.6) as usize;
        Self::scatter_pedestrians(&mut objects, peds, (0.3, 0.3, 0.7, 0.7), rng);
        for _ in 0..(n - peds) {
            // parked cars along the side of the road
            objects.push(Self::place_on_road(&walk1, ObjectClass::Car, rng));
        }
        (layout, objects)
    }

    fn park<R: Rng + ?Sized>(&self, rng: &mut R) -> (Layout, Vec<SceneObject>) {
        let walkway = RoadSegment {
            start: (0.0, rng.gen_range(0.55..0.75)),
            end: (1.0, rng.gen_range(0.55..0.75)),
            half_width: 0.03,
            lanes: 1,
        };
        let mut layout = Layout {
            roads: vec![walkway],
            water: vec![WorldCircle {
                cx: rng.gen_range(0.25..0.75),
                cy: rng.gen_range(0.2..0.4),
                r: rng.gen_range(0.1..0.18),
            }],
            ..Layout::default()
        };
        for _ in 0..rng.gen_range(14..24) {
            layout.trees.push(WorldCircle {
                cx: rng.gen_range(0.02..0.98),
                cy: rng.gen_range(0.02..0.98),
                r: rng.gen_range(0.015..0.04),
            });
        }
        let n = self.target_count(rng);
        let mut objects = Vec::with_capacity(n);
        Self::scatter_pedestrians(&mut objects, n, (0.05, 0.45, 0.95, 0.95), rng);
        (layout, objects)
    }

    fn residential<R: Rng + ?Sized>(&self, rng: &mut R) -> (Layout, Vec<SceneObject>) {
        let road = RoadSegment { start: (0.0, 0.5), end: (1.0, 0.5), half_width: 0.05, lanes: 2 };
        let mut layout = Layout { roads: vec![road], ..Layout::default() };
        for row in [0.2f32, 0.8] {
            let mut x = 0.08;
            while x < 0.95 {
                layout.buildings.push(WorldRect {
                    cx: x,
                    cy: row + rng.gen_range(-0.05..0.05f32),
                    hx: rng.gen_range(0.035..0.055),
                    hy: rng.gen_range(0.035..0.055),
                    tint: rng.gen(),
                });
                x += rng.gen_range(0.12..0.18);
            }
        }
        for _ in 0..rng.gen_range(4..10) {
            layout.trees.push(WorldCircle {
                cx: rng.gen_range(0.02..0.98),
                cy: rng.gen_range(0.3..0.45),
                r: rng.gen_range(0.012..0.025),
            });
        }
        let n = self.target_count(rng);
        let mut objects = Vec::with_capacity(n);
        let vehicles = (n as f32 * 0.55) as usize;
        for _ in 0..vehicles {
            objects.push(Self::place_on_road(&road, Self::vehicle_mix(rng), rng));
        }
        Self::scatter_pedestrians(&mut objects, n - vehicles, (0.05, 0.55, 0.95, 0.95), rng);
        (layout, objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn object_counts_within_paper_range() {
        let gen = SceneGenerator::new(SceneGeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let spec = gen.generate(&mut rng);
            assert!(
                (20..=90).contains(&spec.objects.len()),
                "{} objects in {:?}",
                spec.objects.len(),
                spec.kind
            );
        }
    }

    #[test]
    fn every_kind_generates() {
        let gen = SceneGenerator::default();
        let mut rng = StdRng::seed_from_u64(2);
        for kind in SceneKind::ALL {
            let spec = gen.generate_kind(kind, &mut rng);
            assert_eq!(spec.kind, kind);
            assert!(!spec.objects.is_empty());
        }
    }

    #[test]
    fn objects_lie_in_world_bounds() {
        let gen = SceneGenerator::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let spec = gen.generate(&mut rng);
            for o in &spec.objects {
                assert!((-0.2..=1.2).contains(&o.x), "x={}", o.x);
                assert!((-0.2..=1.2).contains(&o.y), "y={}", o.y);
            }
        }
    }

    #[test]
    fn highway_vehicles_follow_road_heading() {
        let gen = SceneGenerator::default();
        let mut rng = StdRng::seed_from_u64(4);
        let spec = gen.generate_kind(SceneKind::Highway, &mut rng);
        let road_heading = spec.layout.roads[0].heading();
        let vehicle_headings: Vec<f32> = spec
            .objects
            .iter()
            .filter(|o| o.class == ObjectClass::Car)
            .map(|o| o.heading)
            .collect();
        assert!(!vehicle_headings.is_empty());
        for h in vehicle_headings {
            assert!((h - road_heading).abs() < 1e-5);
        }
    }

    #[test]
    fn park_has_water_market_has_stalls() {
        let gen = SceneGenerator::default();
        let mut rng = StdRng::seed_from_u64(5);
        let park = gen.generate_kind(SceneKind::Park, &mut rng);
        assert!(!park.layout.water.is_empty());
        let market = gen.generate_kind(SceneKind::Market, &mut rng);
        assert!(market.layout.buildings.len() >= 6);
    }

    #[test]
    fn road_geometry_helpers() {
        let road = RoadSegment { start: (0.0, 0.5), end: (1.0, 0.5), half_width: 0.1, lanes: 2 };
        assert_eq!(road.direction(), (1.0, 0.0));
        assert_eq!(road.heading(), 0.0);
        let (x, y) = road.point_at(0.5, 0.05);
        assert!((x - 0.5).abs() < 1e-6 && (y - 0.55).abs() < 1e-6);
        assert!((road.distance_to((0.5, 0.8)) - 0.3).abs() < 1e-6);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = SceneGenerator::default();
        let a = gen.generate(&mut StdRng::seed_from_u64(42));
        let b = gen.generate(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
