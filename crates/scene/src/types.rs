//! Core scene vocabulary: object classes, boxes, viewpoints, specs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Annotated object categories, mirroring the VisDrone-DET label set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectClass {
    /// A person on foot.
    Pedestrian,
    /// A bicycle (with or without rider).
    Bicycle,
    /// A passenger car.
    Car,
    /// A delivery van.
    Van,
    /// A truck.
    Truck,
    /// A bus.
    Bus,
    /// A motorcycle.
    Motor,
}

impl ObjectClass {
    /// All classes, in canonical order (stable class-id assignment).
    pub const ALL: [ObjectClass; 7] = [
        ObjectClass::Pedestrian,
        ObjectClass::Bicycle,
        ObjectClass::Car,
        ObjectClass::Van,
        ObjectClass::Truck,
        ObjectClass::Bus,
        ObjectClass::Motor,
    ];

    /// The stable integer id of this class (infallible: `ALL` lists
    /// every variant).
    pub fn id(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).unwrap_or(0)
    }

    /// Class from its stable id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn from_id(id: usize) -> Self {
        Self::ALL[id]
    }

    /// Lower-case label used in captions ("car", "van", …).
    pub fn label(self) -> &'static str {
        match self {
            ObjectClass::Pedestrian => "pedestrian",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::Car => "car",
            ObjectClass::Van => "van",
            ObjectClass::Truck => "truck",
            ObjectClass::Bus => "bus",
            ObjectClass::Motor => "motorcycle",
        }
    }

    /// Plural caption label ("cars", "buses", …).
    pub fn plural_label(self) -> &'static str {
        match self {
            ObjectClass::Pedestrian => "pedestrians",
            ObjectClass::Bicycle => "bicycles",
            ObjectClass::Car => "cars",
            ObjectClass::Van => "vans",
            ObjectClass::Truck => "trucks",
            ObjectClass::Bus => "buses",
            ObjectClass::Motor => "motorcycles",
        }
    }

    /// Nominal world-space footprint (length, width) in scene units
    /// (the full scene spans 1.0 × 1.0).
    pub fn footprint(self) -> (f32, f32) {
        match self {
            ObjectClass::Pedestrian => (0.012, 0.012),
            ObjectClass::Bicycle => (0.018, 0.010),
            ObjectClass::Car => (0.042, 0.022),
            ObjectClass::Van => (0.050, 0.024),
            ObjectClass::Truck => (0.068, 0.028),
            ObjectClass::Bus => (0.085, 0.028),
            ObjectClass::Motor => (0.020, 0.010),
        }
    }

    /// A representative body colour (RGB in `[0, 1]`), varied per object.
    pub fn base_color(self) -> [f32; 3] {
        match self {
            ObjectClass::Pedestrian => [0.85, 0.55, 0.40],
            ObjectClass::Bicycle => [0.20, 0.55, 0.80],
            ObjectClass::Car => [0.75, 0.10, 0.10],
            ObjectClass::Van => [0.90, 0.90, 0.92],
            ObjectClass::Truck => [0.95, 0.70, 0.15],
            ObjectClass::Bus => [0.95, 0.85, 0.20],
            ObjectClass::Motor => [0.30, 0.30, 0.35],
        }
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Lighting condition of the scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TimeOfDay {
    /// Daylight: full palette, soft shadows.
    #[default]
    Day,
    /// Night: darkened palette, headlights and streetlight pools.
    Night,
}

impl TimeOfDay {
    /// Caption phrase ("daytime" / "nighttime").
    pub fn phrase(self) -> &'static str {
        match self {
            TimeOfDay::Day => "daytime",
            TimeOfDay::Night => "nighttime",
        }
    }
}

/// Scene archetype controlling the procedural layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SceneKind {
    /// A multi-lane highway with dense traffic and a neighbourhood edge.
    Highway,
    /// Two crossing roads with queued traffic.
    Intersection,
    /// A market street: stalls, vans, many pedestrians.
    Market,
    /// A campus: walkways, lawns, scattered pedestrians, parked cars.
    Campus,
    /// A park: pond, walkway, trees, pedestrians.
    Park,
    /// A residential block: building grid, parked cars, a few people.
    Residential,
}

impl SceneKind {
    /// All kinds in canonical order.
    pub const ALL: [SceneKind; 6] = [
        SceneKind::Highway,
        SceneKind::Intersection,
        SceneKind::Market,
        SceneKind::Campus,
        SceneKind::Park,
        SceneKind::Residential,
    ];

    /// Caption phrase describing the scene kind.
    pub fn phrase(self) -> &'static str {
        match self {
            SceneKind::Highway => "a busy highway",
            SceneKind::Intersection => "a road intersection",
            SceneKind::Market => "a bustling market street",
            SceneKind::Campus => "a paved campus",
            SceneKind::Park => "a tranquil park",
            SceneKind::Residential => "a residential block",
        }
    }
}

impl fmt::Display for SceneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.phrase())
    }
}

/// Drone camera parameters.
///
/// `altitude` ∈ `[0.3, 1.0]` controls zoom (1.0 = highest, widest view);
/// `pitch_deg` ∈ `[30, 90]` is the camera tilt (90° = straight down);
/// `heading_deg` rotates the view around the vertical axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Viewpoint {
    /// Normalized altitude in `[0.3, 1.0]`.
    pub altitude: f32,
    /// Camera pitch in degrees; 90 is nadir (top-down).
    pub pitch_deg: f32,
    /// Heading in degrees, rotating the scene in view.
    pub heading_deg: f32,
}

impl Default for Viewpoint {
    fn default() -> Self {
        Viewpoint { altitude: 1.0, pitch_deg: 90.0, heading_deg: 0.0 }
    }
}

impl Viewpoint {
    /// A nadir (top-down) view from the given altitude.
    pub fn top_down(altitude: f32) -> Self {
        Viewpoint { altitude, pitch_deg: 90.0, heading_deg: 0.0 }
    }

    /// Caption phrase summarizing the viewpoint ("a high vantage point,
    /// looking straight down", …).
    pub fn phrase(&self) -> String {
        let height = if self.altitude >= 0.75 {
            "a high vantage point"
        } else if self.altitude >= 0.5 {
            "a medium altitude"
        } else {
            "a low altitude"
        };
        let angle = if self.pitch_deg >= 75.0 {
            "looking straight down"
        } else if self.pitch_deg >= 50.0 {
            "at a slightly angled perspective"
        } else {
            "from a low angle to the side"
        };
        format!("{height}, {angle}")
    }
}

/// One annotated object in world coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Object category.
    pub class: ObjectClass,
    /// World-space centre x ∈ `[0, 1]`.
    pub x: f32,
    /// World-space centre y ∈ `[0, 1]`.
    pub y: f32,
    /// Orientation in radians (0 = facing +x).
    pub heading: f32,
    /// Per-object colour jitter seed in `[0, 1]`.
    pub tint: f32,
}

/// Axis-aligned bounding box in pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BBox {
    /// Left edge (inclusive).
    pub x0: f32,
    /// Top edge (inclusive).
    pub y0: f32,
    /// Right edge (exclusive).
    pub x1: f32,
    /// Bottom edge (exclusive).
    pub y1: f32,
}

impl BBox {
    /// Creates a box from corner coordinates.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        BBox { x0, y0, x1, y1 }
    }

    /// Box width (zero when degenerate).
    pub fn width(&self) -> f32 {
        (self.x1 - self.x0).max(0.0)
    }

    /// Box height (zero when degenerate).
    pub fn height(&self) -> f32 {
        (self.y1 - self.y0).max(0.0)
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> (f32, f32) {
        ((self.x0 + self.x1) * 0.5, (self.y0 + self.y1) * 0.5)
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BBox) -> f32 {
        let ix0 = self.x0.max(other.x0);
        let iy0 = self.y0.max(other.y0);
        let ix1 = self.x1.min(other.x1);
        let iy1 = self.y1.min(other.y1);
        let inter = (ix1 - ix0).max(0.0) * (iy1 - iy0).max(0.0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Clips the box to an image of the given size.
    pub fn clip(&self, width: usize, height: usize) -> BBox {
        BBox {
            x0: self.x0.clamp(0.0, width as f32),
            y0: self.y0.clamp(0.0, height as f32),
            x1: self.x1.clamp(0.0, width as f32),
            y1: self.y1.clamp(0.0, height as f32),
        }
    }

    /// Whether the clipped box retains positive area.
    pub fn is_visible(&self) -> bool {
        self.area() > 0.0
    }
}

/// One detection-style annotation: class + pixel box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// Object category.
    pub class: ObjectClass,
    /// Pixel-space bounding box.
    pub bbox: BBox,
}

/// Complete ground-truth description of one scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneSpec {
    /// Scene archetype.
    pub kind: SceneKind,
    /// Lighting condition.
    pub time: TimeOfDay,
    /// Camera parameters.
    pub viewpoint: Viewpoint,
    /// Static layout (roads, buildings, trees, water).
    pub layout: crate::layout::Layout,
    /// Annotated dynamic objects.
    pub objects: Vec<SceneObject>,
    /// Seed the scene was generated from (for reproducibility).
    pub seed: u64,
}

impl SceneSpec {
    /// Counts objects per class, indexed by [`ObjectClass::id`].
    pub fn class_histogram(&self) -> [usize; 7] {
        let mut hist = [0usize; 7];
        for o in &self.objects {
            hist[o.class.id()] += 1;
        }
        hist
    }

    /// A copy of this scene viewed from a different camera.
    pub fn with_viewpoint(&self, viewpoint: Viewpoint) -> SceneSpec {
        SceneSpec { viewpoint, ..self.clone() }
    }

    /// A copy of this scene under different lighting.
    pub fn with_time(&self, time: TimeOfDay) -> SceneSpec {
        SceneSpec { time, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ids_round_trip() {
        for class in ObjectClass::ALL {
            assert_eq!(ObjectClass::from_id(class.id()), class);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = ObjectClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ObjectClass::ALL.len());
    }

    #[test]
    fn bbox_iou_identity_and_disjoint() {
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        let b = BBox::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn bbox_iou_half_overlap() {
        let a = BBox::new(0.0, 0.0, 2.0, 1.0);
        let b = BBox::new(1.0, 0.0, 3.0, 1.0);
        // intersection 1, union 3
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_clip_bounds() {
        let b = BBox::new(-5.0, -5.0, 100.0, 100.0).clip(32, 32);
        assert_eq!(b, BBox::new(0.0, 0.0, 32.0, 32.0));
        let off = BBox::new(40.0, 40.0, 50.0, 50.0).clip(32, 32);
        assert!(!off.is_visible());
    }

    #[test]
    fn viewpoint_phrases_vary() {
        let high = Viewpoint::top_down(1.0).phrase();
        let low = Viewpoint { altitude: 0.35, pitch_deg: 40.0, heading_deg: 0.0 }.phrase();
        assert_ne!(high, low);
        assert!(high.contains("high"));
        assert!(low.contains("low"));
    }

    #[test]
    fn footprints_are_ordered_sensibly() {
        let (bus_len, _) = ObjectClass::Bus.footprint();
        let (car_len, _) = ObjectClass::Car.footprint();
        let (ped_len, _) = ObjectClass::Pedestrian.footprint();
        assert!(bus_len > car_len && car_len > ped_len);
    }
}
