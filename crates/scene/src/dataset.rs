//! Dataset builders: the synthetic aerial corpus and the "classical"
//! single-subject corpus used for the Fig. 1 complexity comparison.

use crate::layout::{SceneGenerator, SceneGeneratorConfig};
use crate::raster::{AnnotatedImage, Rasterizer};
use crate::types::{SceneKind, SceneSpec, TimeOfDay};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One dataset entry: the ground-truth spec plus its render.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetItem {
    /// Full scene ground truth.
    pub spec: SceneSpec,
    /// Rendered image and pixel annotations.
    pub rendered: AnnotatedImage,
}

/// A paired aerial dataset (our stand-in for VisDrone-DET).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AerialDataset {
    /// All items, in generation order.
    pub items: Vec<DatasetItem>,
    /// Image resolution the dataset was rendered at.
    pub image_size: usize,
}

impl AerialDataset {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over items.
    pub fn iter(&self) -> std::slice::Iter<'_, DatasetItem> {
        self.items.iter()
    }

    /// Splits into (train, eval) at `train_fraction`.
    pub fn split(&self, train_fraction: f32) -> (AerialDataset, AerialDataset) {
        let n_train = ((self.items.len() as f32) * train_fraction).round() as usize;
        let n_train = n_train.min(self.items.len());
        (
            AerialDataset { items: self.items[..n_train].to_vec(), image_size: self.image_size },
            AerialDataset { items: self.items[n_train..].to_vec(), image_size: self.image_size },
        )
    }

    /// Aggregate object-count statistics (Fig. 1).
    pub fn object_count_stats(&self) -> ObjectCountStats {
        let counts: Vec<usize> = self.items.iter().map(|i| i.spec.objects.len()).collect();
        ObjectCountStats::from_counts(&counts)
    }
}

/// Configuration for [`build_dataset`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of scenes to generate.
    pub n_scenes: usize,
    /// Square image resolution.
    pub image_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Scene generator parameters.
    pub generator: SceneGeneratorConfig,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            n_scenes: 64,
            image_size: 32,
            seed: 0,
            generator: SceneGeneratorConfig::default(),
        }
    }
}

/// Builds the synthetic aerial dataset, parallelizing rendering across
/// threads (each scene is generated from an independent per-index seed so
/// the result is deterministic regardless of thread count).
///
/// # Panics
///
/// Panics if a rendering worker thread panics.
pub fn build_dataset(config: &DatasetConfig) -> AerialDataset {
    let generator = SceneGenerator::new(config.generator);
    let rasterizer = Rasterizer::new(config.image_size, config.image_size);
    let n_threads = aero_tensor::parallel::suggested_threads(8);
    let chunk = config.n_scenes.div_ceil(n_threads).max(1);
    let mut items: Vec<Option<DatasetItem>> = vec![None; config.n_scenes];
    crossbeam::thread::scope(|scope| {
        for (tid, slot_chunk) in items.chunks_mut(chunk).enumerate() {
            let generator = &generator;
            let rasterizer = &rasterizer;
            let base = tid * chunk;
            let seed = config.seed;
            scope.spawn(move |_| {
                for (k, slot) in slot_chunk.iter_mut().enumerate() {
                    let idx = base + k;
                    let mut rng = StdRng::seed_from_u64(
                        seed.wrapping_add(0x51ED_2701).wrapping_add(idx as u64 * 0x9E37),
                    );
                    let spec = generator.generate(&mut rng);
                    let rendered = rasterizer.render(&spec);
                    *slot = Some(DatasetItem { spec, rendered });
                }
            });
        }
    })
    .expect("dataset worker panicked");
    AerialDataset {
        items: items.into_iter().map(|i| i.expect("all slots filled")).collect(),
        image_size: config.image_size,
    }
}

/// Builds a "classical image synthesis dataset" stand-in (FlintStones-like
/// in Fig. 1): single-subject scenes with 1–2 objects on a plain ground.
pub fn build_classical_dataset(n_scenes: usize, image_size: usize, seed: u64) -> AerialDataset {
    let rasterizer = Rasterizer::new(image_size, image_size);
    let generator = SceneGenerator::new(SceneGeneratorConfig {
        min_objects: 1,
        max_objects: 2,
        night_probability: 0.0,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(n_scenes);
    for _ in 0..n_scenes {
        let kind = if rng.gen_bool(0.5) { SceneKind::Park } else { SceneKind::Campus };
        let mut spec = generator.generate_kind(kind, &mut rng);
        spec.time = TimeOfDay::Day;
        // Classical datasets centre their one or two subjects.
        for (i, o) in spec.objects.iter_mut().enumerate() {
            o.x = 0.45 + 0.1 * i as f32;
            o.y = 0.5;
        }
        let rendered = rasterizer.render(&spec);
        items.push(DatasetItem { spec, rendered });
    }
    AerialDataset { items, image_size }
}

/// Summary statistics of objects-per-image (the Fig. 1 histogram).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectCountStats {
    /// Minimum objects in any image.
    pub min: usize,
    /// Maximum objects in any image.
    pub max: usize,
    /// Mean objects per image.
    pub mean: f32,
    /// Histogram over bins of width 10 (0–9, 10–19, …, 90+).
    pub histogram: Vec<usize>,
}

impl ObjectCountStats {
    /// Computes stats from raw per-image counts.
    pub fn from_counts(counts: &[usize]) -> Self {
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<usize>() as f32 / counts.len() as f32
        };
        let mut histogram = vec![0usize; 10];
        for &c in counts {
            histogram[(c / 10).min(9)] += 1;
        }
        ObjectCountStats { min, max, mean, histogram }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_dataset_deterministic_and_sized() {
        let cfg =
            DatasetConfig { n_scenes: 8, image_size: 16, seed: 3, ..DatasetConfig::default() };
        let a = build_dataset(&cfg);
        let b = build_dataset(&cfg);
        assert_eq!(a.len(), 8);
        assert_eq!(a, b, "dataset generation must be deterministic");
        assert_eq!(a.items[0].rendered.image.width(), 16);
    }

    #[test]
    fn split_partitions() {
        let cfg =
            DatasetConfig { n_scenes: 10, image_size: 8, seed: 1, ..DatasetConfig::default() };
        let ds = build_dataset(&cfg);
        let (train, eval) = ds.split(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(eval.len(), 3);
    }

    #[test]
    fn aerial_vs_classical_complexity_gap() {
        // The Fig. 1 claim: aerial scenes carry ~20–90 objects, classical
        // scenes 1–2.
        let aerial = build_dataset(&DatasetConfig {
            n_scenes: 12,
            image_size: 8,
            seed: 5,
            ..DatasetConfig::default()
        });
        let classical = build_classical_dataset(12, 8, 5);
        let sa = aerial.object_count_stats();
        let sc = classical.object_count_stats();
        assert!(sa.min >= 20 && sa.max <= 90);
        assert!(sc.max <= 2);
        assert!(sa.mean > 10.0 * sc.mean);
    }

    #[test]
    fn histogram_bins_cover_counts() {
        let stats = ObjectCountStats::from_counts(&[0, 5, 10, 19, 95, 90]);
        assert_eq!(stats.histogram[0], 2);
        assert_eq!(stats.histogram[1], 2);
        assert_eq!(stats.histogram[9], 2);
        assert_eq!(stats.min, 0);
        assert_eq!(stats.max, 95);
    }

    #[test]
    fn empty_counts_are_safe() {
        let stats = ObjectCountStats::from_counts(&[]);
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.min, 0);
    }
}
