//! Property-based tests for the scene substrate.

use aero_scene::{BBox, Rasterizer, SceneGenerator, SceneGeneratorConfig, TimeOfDay, Viewpoint};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scenes_respect_object_bounds(seed in 0u64..10_000, lo in 3usize..10, extra in 1usize..30) {
        let hi = lo + extra;
        let gen = SceneGenerator::new(SceneGeneratorConfig {
            min_objects: lo,
            max_objects: hi,
            night_probability: 0.3,
        });
        let spec = gen.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert!((lo..=hi).contains(&spec.objects.len()));
    }

    #[test]
    fn rendered_pixels_always_in_unit_range(seed in 0u64..5_000) {
        let gen = SceneGenerator::default();
        let spec = gen.generate(&mut StdRng::seed_from_u64(seed));
        let img = Rasterizer::new(16, 16).render(&spec).image;
        let t = img.to_tensor();
        prop_assert!(t.min() >= 0.0 && t.max() <= 1.0);
    }

    #[test]
    fn annotations_always_clipped(seed in 0u64..5_000) {
        let gen = SceneGenerator::default();
        let spec = gen.generate(&mut StdRng::seed_from_u64(seed));
        let a = Rasterizer::new(24, 24).render(&spec);
        for b in &a.boxes {
            prop_assert!(b.bbox.x0 >= 0.0 && b.bbox.y0 >= 0.0);
            prop_assert!(b.bbox.x1 <= 24.0 && b.bbox.y1 <= 24.0);
            prop_assert!(b.bbox.is_visible());
        }
    }

    #[test]
    fn iou_is_symmetric_and_bounded(
        ax in 0.0f32..10.0, ay in 0.0f32..10.0, aw in 0.1f32..10.0, ah in 0.1f32..10.0,
        bx in 0.0f32..10.0, by in 0.0f32..10.0, bw in 0.1f32..10.0, bh in 0.1f32..10.0,
    ) {
        let a = BBox::new(ax, ay, ax + aw, ay + ah);
        let b = BBox::new(bx, by, bx + bw, by + bh);
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn night_never_brighter_than_day(seed in 0u64..2_000) {
        let gen = SceneGenerator::default();
        let spec = gen.generate(&mut StdRng::seed_from_u64(seed));
        let r = Rasterizer::new(16, 16);
        let day = r.render(&spec.with_time(TimeOfDay::Day)).image.mean_luminance();
        let night = r.render(&spec.with_time(TimeOfDay::Night)).image.mean_luminance();
        prop_assert!(night <= day, "night {night} vs day {day}");
    }

    #[test]
    fn projection_center_is_fixed_point(alt in 0.35f32..1.0, pitch in 35.0f32..90.0, heading in 0.0f32..360.0) {
        // the world centre maps to the image centre for every viewpoint
        let r = Rasterizer::new(64, 64);
        let vp = Viewpoint { altitude: alt, pitch_deg: pitch, heading_deg: heading };
        let (x, y) = r.world_to_pixel(0.5, 0.5, &vp);
        prop_assert!((x - 32.0).abs() < 1e-3 && (y - 32.0).abs() < 1e-3);
    }
}
