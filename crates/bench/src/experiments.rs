//! One function per table/figure of the paper.

use crate::protocol::{EvalMetrics, ExperimentScale, Protocol};
use aero_baselines::{all_baselines, BaselineConfig};
use aero_metrics::{MetricRow, MetricTable};
use aero_scene::{
    build_classical_dataset, build_dataset, DatasetConfig, Image, ObjectCountStats,
    SceneGeneratorConfig, TimeOfDay, Viewpoint,
};
use aero_tensor::Tensor;
use aero_text::coverage::keypoint_coverage;
use aero_text::llm::{LlmProvider, SimulatedLlm};
use aero_text::prompt::PromptTemplate;
use aerodiffusion::viewpoint::{night_synthesis, viewpoint_transition};
use aerodiffusion::{AblationVariant, AeroDiffusionPipeline, SubstrateBundle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

// ------------------------------------------------------------------ Fig 1

/// Result of the Fig. 1 dataset-complexity comparison.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Object-count statistics of the aerial dataset.
    pub aerial: ObjectCountStats,
    /// Object-count statistics of the classical dataset.
    pub classical: ObjectCountStats,
}

/// Reproduces Fig. 1: object-count distributions of an aerial
/// (VisDrone-like) vs a classical (FlintStones-like) dataset.
pub fn run_fig1(scale: ExperimentScale, seed: u64) -> Fig1Result {
    let n = match scale {
        ExperimentScale::Smoke => 20,
        ExperimentScale::Small => 200,
        ExperimentScale::Paper => 2000,
    };
    let aerial = build_dataset(&DatasetConfig {
        n_scenes: n,
        image_size: 16,
        seed,
        generator: SceneGeneratorConfig::default(),
    });
    let classical = build_classical_dataset(n, 16, seed);
    Fig1Result { aerial: aerial.object_count_stats(), classical: classical.object_count_stats() }
}

// ------------------------------------------------------------------ Fig 3

/// Result of the Fig. 3 prompt contrast.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// The rendered traditional prompt.
    pub traditional_prompt: String,
    /// Caption produced under the traditional prompt.
    pub traditional_caption: String,
    /// Coverage score of the traditional caption.
    pub traditional_score: f32,
    /// The rendered keypoint-aware prompt.
    pub keypoint_prompt: String,
    /// Caption produced under the keypoint-aware prompt.
    pub keypoint_caption: String,
    /// Coverage score of the keypoint caption.
    pub keypoint_score: f32,
}

/// Reproduces Fig. 3: the traditional vs keypoint-aware prompt contrast
/// on one scene.
pub fn run_fig3(seed: u64) -> Fig3Result {
    let ds = build_dataset(&DatasetConfig {
        n_scenes: 1,
        image_size: 32,
        seed,
        generator: SceneGeneratorConfig::default(),
    });
    let spec = &ds.items[0].spec;
    let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
    let trad = PromptTemplate::traditional();
    let keyp = PromptTemplate::keypoint_aware();
    let traditional_caption = llm.describe(spec, &trad, &mut StdRng::seed_from_u64(seed));
    let keypoint_caption = llm.describe(spec, &keyp, &mut StdRng::seed_from_u64(seed));
    Fig3Result {
        traditional_prompt: trad.render(spec),
        traditional_score: keypoint_coverage(&traditional_caption, spec).score(),
        traditional_caption,
        keypoint_prompt: keyp.render(spec),
        keypoint_score: keypoint_coverage(&keypoint_caption, spec).score(),
        keypoint_caption,
    }
}

// ---------------------------------------------------------------- Table I

/// Result of the Table I SOTA comparison.
#[derive(Debug)]
pub struct Table1Result {
    /// (model name, metrics) in the paper's row order, AeroDiffusion last.
    pub rows: Vec<(String, EvalMetrics)>,
}

impl Table1Result {
    /// Formats the result as the paper's Table I.
    pub fn table(&self) -> MetricTable {
        let mut t = MetricTable::new(
            "Table I: Performance Comparison of SOTA Models for Aerial Image Synthesis",
            &["FID ↓", "PSNR ↑", "KID ↓"],
        );
        for (name, m) in &self.rows {
            t.push(MetricRow::new(name.clone(), vec![m.fid, m.psnr, m.kid]));
        }
        t
    }

    /// Metrics for a named row.
    pub fn metrics(&self, name: &str) -> Option<EvalMetrics> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, m)| *m)
    }
}

/// Reproduces Table I: trains the five baselines and AeroDiffusion under
/// an identical budget and scores FID/PSNR/KID on the eval split.
pub fn run_table1(scale: ExperimentScale, seed: u64) -> Table1Result {
    let protocol = Protocol::new(scale, seed);
    let cfg = scale.pipeline_config();

    // One shared substrate bundle (CLIP/VAE/detector) plays the role of
    // everyone's pretrained components.
    let captions = aerodiffusion::substrate::caption_dataset(
        &protocol.train,
        LlmProvider::KeypointAware,
        &PromptTemplate::keypoint_aware(),
        seed,
    );
    let bundle = SubstrateBundle::train(&protocol.train, &captions, &cfg, seed);

    let base_cfg = match scale {
        ExperimentScale::Smoke => BaselineConfig::smoke(cfg.vision.image_size),
        _ => BaselineConfig {
            image_size: cfg.vision.image_size,
            diffusion: cfg.diffusion,
            epochs: cfg.diffusion_epochs,
            batch_size: cfg.diffusion_batch_size,
            lr: cfg.diffusion_lr,
            unet_channels: cfg.unet_channels,
        },
    };

    let mut rows = Vec::new();
    for (idx, mut model) in all_baselines(base_cfg).into_iter().enumerate() {
        // distinct seeds per model so initializations are independent
        let model_seed = seed.wrapping_add(1 + idx as u64).wrapping_mul(0x9E37_79B9);
        model.fit(&protocol.train, &bundle, model_seed);
        let mut rng = StdRng::seed_from_u64(model_seed ^ 0xBEEF);
        let generated: Vec<Image> =
            protocol.eval.iter().map(|item| model.generate(item, &bundle, &mut rng)).collect();
        rows.push((model.name().to_string(), protocol.score(&generated)));
    }

    let pipeline = AeroDiffusionPipeline::fit(&protocol.train, cfg, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
    let generated = pipeline.generate_eval(&protocol.eval, &mut rng);
    rows.push(("AeroDiffusion".to_string(), protocol.score(&generated)));

    Table1Result { rows }
}

// --------------------------------------------------------------- Table II

/// Result of the Table II caption-source comparison.
#[derive(Debug)]
pub struct Table2Result {
    /// (provider name, clip score, fid) in the paper's row order.
    pub rows: Vec<(String, f32, f32)>,
}

impl Table2Result {
    /// Formats the result as the paper's Table II.
    pub fn table(&self) -> MetricTable {
        let mut t = MetricTable::new(
            "Table II: Evaluation for Keypoint-Aware Text Generation",
            &["CLIP SCORE ↑", "FID ↓"],
        );
        for (name, clip, fid) in &self.rows {
            t.push(MetricRow::new(name.clone(), vec![*clip, *fid]));
        }
        t
    }

    /// (clip score, fid) of a named row.
    pub fn metrics(&self, name: &str) -> Option<(f32, f32)> {
        self.rows.iter().find(|(n, _, _)| n == name).map(|(_, c, f)| (*c, *f))
    }
}

/// Reproduces Table II: retrains the conditional pipeline with captions
/// from each (simulated) LLM and scores CLIP alignment + FID. A single
/// reference CLIP (trained on keypoint captions, standing in for the
/// pretrained CLIP the paper scores with) scores every provider.
pub fn run_table2(scale: ExperimentScale, seed: u64) -> Table2Result {
    let protocol = Protocol::new(scale, seed);
    let cfg = scale.pipeline_config();

    // Reference scorer.
    let ref_captions = aerodiffusion::substrate::caption_dataset(
        &protocol.train,
        LlmProvider::KeypointAware,
        &PromptTemplate::keypoint_aware(),
        seed,
    );
    let ref_bundle = SubstrateBundle::train(&protocol.train, &ref_captions, &cfg, seed);

    let mut rows = Vec::new();
    for provider in LlmProvider::ALL {
        let pipeline = AeroDiffusionPipeline::fit_with_options(
            &protocol.train,
            cfg,
            provider,
            AblationVariant::Full,
            seed,
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let generated = pipeline.generate_eval(&protocol.eval, &mut rng);

        // Target captions for alignment scoring: this provider's output on
        // the eval scenes.
        let llm = SimulatedLlm::new(provider);
        let targets: Vec<Vec<usize>> = protocol
            .eval
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let cap = llm.describe(
                    &item.spec,
                    &PromptTemplate::keypoint_aware(),
                    &mut StdRng::seed_from_u64(seed ^ i as u64),
                );
                ref_bundle.tokenizer.encode(&cap)
            })
            .collect();
        let tensors: Vec<Tensor> = generated.iter().map(Image::to_tensor).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let clip_score = ref_bundle.clip.clip_score(&Tensor::stack(&refs), &targets);
        let metrics = protocol.score(&generated);
        rows.push((provider.name().to_string(), clip_score, metrics.fid));
    }
    Table2Result { rows }
}

// -------------------------------------------------------------- Table III

/// One Table III row: a viewpoint transition.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Excerpt of the reference description `G`.
    pub reference_description: String,
    /// Excerpt of the requirement `G'`.
    pub target_description: String,
    /// The requested viewpoint.
    pub target_viewpoint: Viewpoint,
    /// CLIP alignment of the generated image with `G'`.
    pub alignment_to_target: f32,
    /// CLIP alignment of the generated image with the original `G`.
    pub alignment_to_reference: f32,
}

/// Result of the Table III viewpoint-transition study.
#[derive(Debug)]
pub struct Table3Result {
    /// The three transition rows.
    pub rows: Vec<Table3Row>,
    /// Generated images, aligned with `rows`.
    pub images: Vec<Image>,
}

/// Reproduces Table III: three reference scenes re-synthesized from new
/// viewpoints via edited target descriptions `G'`.
pub fn run_table3(scale: ExperimentScale, seed: u64) -> Table3Result {
    let protocol = Protocol::new(scale, seed);
    let cfg = scale.pipeline_config();
    let pipeline = AeroDiffusionPipeline::fit(&protocol.train, cfg, seed);

    let targets = [
        Viewpoint { altitude: 0.85, pitch_deg: 60.0, heading_deg: 20.0 },
        Viewpoint { altitude: 0.45, pitch_deg: 70.0, heading_deg: 0.0 },
        Viewpoint { altitude: 0.9, pitch_deg: 55.0, heading_deg: 180.0 },
    ];
    let mut rows = Vec::new();
    let mut images = Vec::new();
    for (i, vp) in targets.iter().enumerate() {
        let item = &protocol.eval.items[i % protocol.eval.len()];
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 + 77));
        let result = viewpoint_transition(&pipeline, item, *vp, &mut rng);
        let score = |caption: &str, image: &Image| -> f32 {
            let tokens = pipeline.bundle().tokenizer.encode(caption);
            let t = image.to_tensor();
            let batch = t.reshape(&[1, 3, t.shape()[1], t.shape()[2]]);
            pipeline.bundle().clip.clip_score(&batch, &[tokens])
        };
        rows.push(Table3Row {
            alignment_to_target: score(&result.target_description, &result.image),
            alignment_to_reference: score(&result.reference_description, &result.image),
            reference_description: result.reference_description,
            target_description: result.target_description,
            target_viewpoint: *vp,
        });
        images.push(result.image);
    }
    Table3Result { rows, images }
}

// --------------------------------------------------------------- Table IV

/// Result of the Table IV ablation study.
#[derive(Debug)]
pub struct Table4Result {
    /// (variant label, metrics) in the paper's row order.
    pub rows: Vec<(String, EvalMetrics)>,
}

impl Table4Result {
    /// Formats the result as the paper's Table IV.
    pub fn table(&self) -> MetricTable {
        let mut t = MetricTable::new(
            "Table IV: Ablation study (OD = object detection for feature augmentation)",
            &["FID ↓", "PSNR ↑", "KID ↓"],
        );
        for (name, m) in &self.rows {
            t.push(MetricRow::new(name.clone(), vec![m.fid, m.psnr, m.kid]));
        }
        t
    }

    /// Metrics of a named row.
    pub fn metrics(&self, label: &str) -> Option<EvalMetrics> {
        self.rows.iter().find(|(n, _)| n == label).map(|(_, m)| *m)
    }
}

/// Reproduces Table IV: the cumulative component ladder
/// base SD → +BLIP → +keypoint text → +OD (full).
pub fn run_table4(scale: ExperimentScale, seed: u64) -> Table4Result {
    let protocol = Protocol::new(scale, seed);
    let cfg = scale.pipeline_config();
    let mut rows = Vec::new();
    for variant in AblationVariant::ALL {
        let pipeline = AeroDiffusionPipeline::fit_with_options(
            &protocol.train,
            cfg,
            LlmProvider::KeypointAware,
            variant,
            seed,
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB1A);
        let generated = pipeline.generate_eval(&protocol.eval, &mut rng);
        rows.push((variant.label().to_string(), protocol.score(&generated)));
    }
    Table4Result { rows }
}

// ------------------------------------------------------------- Figs 4 & 5

/// A saved gallery of generated samples.
#[derive(Debug)]
pub struct SampleGallery {
    /// (label, generated image, mean luminance).
    pub samples: Vec<(String, Image, f32)>,
    /// Reference images aligned with `samples` (empty if not applicable).
    pub references: Vec<Image>,
}

impl SampleGallery {
    /// Writes every sample (and reference) as PPM files under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_ppm(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (i, (label, img, _)) in self.samples.iter().enumerate() {
            let safe: String =
                label.chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect();
            img.save_ppm(dir.join(format!("{i:02}_{safe}.ppm")))?;
        }
        for (i, r) in self.references.iter().enumerate() {
            r.save_ppm(dir.join(format!("{i:02}_reference.ppm")))?;
        }
        Ok(())
    }
}

/// Reproduces Fig. 4: daytime samples from AeroDiffusion next to their
/// reference scenes.
pub fn run_fig4(scale: ExperimentScale, seed: u64) -> SampleGallery {
    let protocol = Protocol::new(scale, seed);
    let cfg = scale.pipeline_config();
    let pipeline = AeroDiffusionPipeline::fit(&protocol.train, cfg, seed);
    let mut samples = Vec::new();
    let mut references = Vec::new();
    let day_items: Vec<_> =
        protocol.eval.iter().filter(|i| i.spec.time == TimeOfDay::Day).take(4).collect();
    for (i, item) in day_items.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (1000 + i as u64));
        let img = pipeline.generate(item, &mut rng);
        let lum = img.mean_luminance();
        samples.push((format!("aerodiffusion_day_{i}"), img, lum));
        references.push(item.rendered.image.clone());
    }
    SampleGallery { samples, references }
}

/// Reproduces Fig. 5: nighttime samples with explicit lighting text
/// ("high-noise condition").
pub fn run_fig5(scale: ExperimentScale, seed: u64) -> SampleGallery {
    let protocol = Protocol::new(scale, seed);
    let cfg = scale.pipeline_config();
    let pipeline = AeroDiffusionPipeline::fit(&protocol.train, cfg, seed);
    let mut samples = Vec::new();
    let mut references = Vec::new();
    for (i, item) in protocol.eval.iter().take(3).enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (2000 + i as u64));
        let result = night_synthesis(&pipeline, item, &mut rng);
        samples.push((format!("aerodiffusion_night_{i}"), result.image, result.luminance));
        references.push(aerodiffusion::viewpoint::night_reference(item, cfg.vision.image_size));
    }
    SampleGallery { samples, references }
}
