//! Regenerates Table IV: the component ablation study.

use aero_bench::{run_table4, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Table IV — ablation study (scale: {scale:?})\n");
    println!("Training the four-variant ladder: base SD → +BLIP → +LLM text → +OD…\n");
    let r = run_table4(scale, 45);
    println!("{}", r.table());
    println!("\nPaper's reference values:");
    println!("  base SD           132.60 / 4.80 / 0.09");
    println!("  + BLIP            119.13 / 4.85 / 0.07");
    println!("  + LLM text        108.23 / 4.92 / 0.05");
    println!("  + OD (full)        78.15 / 5.98 / 0.04");
    println!("\nExpected shape: FID improves monotonically down the ladder, with the");
    println!("full model improving on base SD by ~54 FID points at paper scale.");
    let first = r.rows.first().map(|(_, m)| m.fid).unwrap_or(0.0);
    let last = r.rows.last().map(|(_, m)| m.fid).unwrap_or(0.0);
    println!("\nMeasured: base {first:.2} -> full {last:.2} (delta {:.2})", first - last);
}
