//! Regenerates Table III: viewpoint-transition synthesis.

use aero_bench::{run_table3, ExperimentScale};
use std::path::Path;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Table III — viewpoint transition image synthesis (scale: {scale:?})\n");
    let r = run_table3(scale, 44);
    for (i, row) in r.rows.iter().enumerate() {
        println!("=== Transition {} ===", i + 1);
        println!(
            "target viewpoint: altitude {:.2}, pitch {:.0}°, heading {:.0}°",
            row.target_viewpoint.altitude,
            row.target_viewpoint.pitch_deg,
            row.target_viewpoint.heading_deg
        );
        println!("G  (reference): {}", excerpt(&row.reference_description));
        println!("G' (target):    {}", excerpt(&row.target_description));
        println!(
            "CLIP alignment of generated image: to G' {:.2}, to G {:.2}\n",
            row.alignment_to_target, row.alignment_to_reference
        );
    }
    let dir = Path::new("target/experiments/table3");
    std::fs::create_dir_all(dir).expect("create output dir");
    for (i, img) in r.images.iter().enumerate() {
        let path = dir.join(format!("transition_{i}.ppm"));
        img.save_ppm(&path).expect("write ppm");
        println!("wrote {}", path.display());
    }
}

fn excerpt(s: &str) -> String {
    if s.len() > 110 {
        format!("{}…", &s[..110])
    } else {
        s.to_string()
    }
}
