//! Regenerates Fig. 5: nighttime sample gallery.

use aero_bench::{run_fig5, ExperimentScale};
use std::path::Path;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Fig. 5 — generated nighttime samples (high-noise condition, scale: {scale:?})\n");
    let gallery = run_fig5(scale, 47);
    let dir = Path::new("target/experiments/fig5");
    gallery.save_ppm(dir).expect("write gallery");
    for ((label, img, lum), reference) in gallery.samples.iter().zip(&gallery.references) {
        println!(
            "{label}: {}x{}, generated luminance {:.3} (night reference render: {:.3})",
            img.width(),
            img.height(),
            lum,
            reference.mean_luminance()
        );
    }
    println!(
        "\nwrote {} samples + {} references to {}",
        gallery.samples.len(),
        gallery.references.len(),
        dir.display()
    );
    println!("Expected shape: generated night samples are markedly darker than day renders.");
}
