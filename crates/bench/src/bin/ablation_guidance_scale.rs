//! Design-choice ablation: classifier-free guidance scale sweep.
//!
//! The paper fixes the guidance scale at 7.0 without analysis; this bench
//! sweeps it, reporting FID/PSNR per scale so the sensitivity of the
//! pipeline to the choice is visible (the DESIGN.md ablation list).

use aero_bench::{ExperimentScale, Protocol};
use aero_diffusion::DdimSampler;
use aero_metrics::MetricRow;
use aero_metrics::MetricTable;
use aerodiffusion::AeroDiffusionPipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Ablation: classifier-free guidance scale sweep (scale: {scale:?})\n");
    let protocol = Protocol::new(scale, 77);
    let cfg = scale.pipeline_config();
    let pipeline = AeroDiffusionPipeline::fit(&protocol.train, cfg, 77);

    let mut table = MetricTable::new("Guidance-scale sweep", &["FID ↓", "PSNR ↑", "KID ↓"]);
    for g in [1.0f32, 3.0, 5.0, 7.0, 10.0] {
        let sampler = DdimSampler::new(cfg.diffusion.ddim_steps, g);
        let mut rng = StdRng::seed_from_u64(78);
        let generated: Vec<aero_scene::Image> = protocol
            .eval
            .iter()
            .map(|item| pipeline.generate_with_sampler(item, &sampler, &mut rng))
            .collect();
        let m = protocol.score(&generated);
        table.push(MetricRow::new(format!("guidance {g:.1}"), vec![m.fid, m.psnr, m.kid]));
    }
    println!("{table}");
    println!("The paper's operating point (7.0) sits on this curve; at reduced");
    println!("scale moderate guidance typically gives the best FID.");
}
