//! Model-artifact benchmark: f32 vs q8 single-file artifacts against the
//! multi-file directory loader.
//!
//! One smoke pipeline is trained once, then measured along three axes:
//!
//! - **size** — the f32 and q8 `.amdl` artifacts versus the directory
//!   save, plus the q8/f32 payload ratio the quantizer achieves on the
//!   real model;
//! - **cold-start** — time from bytes-on-disk to a hydrated pipeline:
//!   artifact read (CRC + mmap) + snapshot hydration, versus
//!   [`AeroDiffusionPipeline::load`] over the directory format;
//! - **fidelity** — the q8 per-layer quantization-error envelope, and a
//!   byte-compare proving the f32 artifact round trip is lossless
//!   end-to-end (same sample bytes as the directory loader).
//!
//! `BENCH_MODEL_SMOKE=1` drops the repetition count so CI can use this as
//! a liveness gate; the invariants (q8 smaller than f32, f32 byte-lossless,
//! every load path producing the same image) are asserted at every scale.
//! Writes `BENCH_model.json` to the working directory.

use aero_model::{snapshot_from_artifact, write_snapshot, ModelArtifact, Quantization};
use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aero_serve::Json;
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `f` (median, not mean, so
/// one cold-cache outlier cannot dominate a smoke run).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn dir_size(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("read model dir")
        .map(|e| e.expect("dir entry").metadata().expect("metadata").len())
        .sum()
}

fn sample_image(pipeline: &AeroDiffusionPipeline) -> aero_scene::Image {
    let config = pipeline.config();
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 1,
        image_size: config.vision.image_size,
        seed: 91,
        generator: SceneGeneratorConfig::default(),
    });
    pipeline.generate(&dataset.items[0], &mut StdRng::seed_from_u64(5))
}

fn main() {
    let smoke = std::env::var("BENCH_MODEL_SMOKE").is_ok_and(|v| v == "1");
    let reps = if smoke { 3 } else { 9 };
    let config = PipelineConfig::smoke();
    println!(
        "bench_model: training a smoke pipeline once, measuring artifact paths (reps={reps})…"
    );
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 4,
        image_size: config.vision.image_size,
        seed: 17,
        generator: SceneGeneratorConfig::default(),
    });
    let pipeline = AeroDiffusionPipeline::fit(&dataset, config, 17);
    let snapshot = pipeline.snapshot();
    let reference = sample_image(&pipeline);

    let work = std::env::temp_dir().join(format!("aero_bench_model_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("create bench workdir");
    let model_dir = work.join("model");
    pipeline.save(&model_dir).expect("directory save");
    let f32_path = work.join("model-f32.amdl");
    let q8_path = work.join("model-q8.amdl");
    let f32_report = write_snapshot(&snapshot, Quantization::F32, &f32_path).expect("f32 export");
    let q8_report = write_snapshot(&snapshot, Quantization::Q8, &q8_path).expect("q8 export");

    let dir_bytes = dir_size(&model_dir);
    assert!(
        q8_report.artifact_bytes < f32_report.artifact_bytes,
        "q8 artifact must be smaller than f32 ({} vs {})",
        q8_report.artifact_bytes,
        f32_report.artifact_bytes
    );

    // Cold-start: bytes on disk → a hydrated, sample-ready pipeline.
    let hydrate = |path: &Path| {
        let artifact = ModelArtifact::read(path).expect("artifact read");
        let snap = snapshot_from_artifact(&artifact).expect("snapshot from artifact");
        snap.hydrate().expect("hydrate")
    };
    let f32_cold = median_secs(reps, || {
        let _ = hydrate(&f32_path);
    });
    let q8_cold = median_secs(reps, || {
        let _ = hydrate(&q8_path);
    });
    let dir_cold = median_secs(reps, || {
        let _ = AeroDiffusionPipeline::load(&model_dir, PipelineConfig::smoke())
            .expect("directory load");
    });
    // Load-only (CRC verify + mmap + header decode, no hydration): the
    // part the artifact format itself is responsible for.
    let f32_load = median_secs(reps, || {
        let _ = ModelArtifact::read(&f32_path).expect("artifact read");
    });
    let q8_load = median_secs(reps, || {
        let _ = ModelArtifact::read(&q8_path).expect("artifact read");
    });

    // Every load path must produce the reference image; the f32 artifact
    // must be byte-lossless end to end.
    let from_f32 = sample_image(&hydrate(&f32_path));
    assert_eq!(from_f32, reference, "f32 artifact sample must be byte-identical");
    let from_dir = sample_image(
        &AeroDiffusionPipeline::load(&model_dir, PipelineConfig::smoke()).expect("directory load"),
    );
    assert_eq!(from_dir, reference, "directory-loader sample must be byte-identical");
    let q8_sample = sample_image(&hydrate(&q8_path));
    assert_eq!(
        (q8_sample.width(), q8_sample.height()),
        (reference.width(), reference.height()),
        "q8 sample must have reference geometry"
    );

    let ratio = q8_report.artifact_bytes as f64 / f32_report.artifact_bytes as f64;
    println!("{:>14} {:>12} {:>14} {:>14}", "path", "bytes", "load ms", "cold-start ms");
    println!("{:>14} {:>12} {:>14} {:>14.2}", "dir", dir_bytes, "-", dir_cold * 1e3);
    println!(
        "{:>14} {:>12} {:>14.2} {:>14.2}",
        "f32.amdl",
        f32_report.artifact_bytes,
        f32_load * 1e3,
        f32_cold * 1e3
    );
    println!(
        "{:>14} {:>12} {:>14.2} {:>14.2}",
        "q8.amdl",
        q8_report.artifact_bytes,
        q8_load * 1e3,
        q8_cold * 1e3
    );
    println!(
        "q8/f32 artifact ratio: {:.1}% (payload ratio {:.1}%); q8 max_abs error {:.6}",
        ratio * 100.0,
        q8_report.size_ratio() * 100.0,
        q8_report.max_abs_error
    );

    let json = Json::obj(vec![
        ("bench", "model".into()),
        ("smoke", smoke.into()),
        ("reps", reps.into()),
        ("dir_bytes", dir_bytes.into()),
        ("f32_bytes", f32_report.artifact_bytes.into()),
        ("q8_bytes", q8_report.artifact_bytes.into()),
        ("q8_over_f32", ratio.into()),
        ("q8_payload_ratio", q8_report.size_ratio().into()),
        ("q8_max_abs_error", f64::from(q8_report.max_abs_error).into()),
        ("q8_mean_abs_error", f64::from(q8_report.mean_abs_error).into()),
        ("f32_load_ms", (f32_load * 1e3).into()),
        ("q8_load_ms", (q8_load * 1e3).into()),
        ("f32_cold_start_ms", (f32_cold * 1e3).into()),
        ("q8_cold_start_ms", (q8_cold * 1e3).into()),
        ("dir_cold_start_ms", (dir_cold * 1e3).into()),
        ("f32_sample_lossless", true.into()),
    ]);
    std::fs::write("BENCH_model.json", format!("{}\n", json.render()))
        .expect("write BENCH_model.json");
    println!("wrote BENCH_model.json");
    let _ = std::fs::remove_dir_all(&work);
}
