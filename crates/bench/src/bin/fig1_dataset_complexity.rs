//! Regenerates Fig. 1: aerial vs classical dataset complexity.

use aero_bench::{run_fig1, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Fig. 1 — dataset complexity comparison (scale: {scale:?})\n");
    let r = run_fig1(scale, 1);
    println!("VisDrone-like aerial dataset:");
    println!(
        "  objects/image: min {}, max {}, mean {:.1}",
        r.aerial.min, r.aerial.max, r.aerial.mean
    );
    println!("  histogram (bins of 10): {:?}", r.aerial.histogram);
    println!("\nFlintStones-like classical dataset:");
    println!(
        "  objects/image: min {}, max {}, mean {:.1}",
        r.classical.min, r.classical.max, r.classical.mean
    );
    println!("  histogram (bins of 10): {:?}", r.classical.histogram);
    println!(
        "\nComplexity ratio (aerial mean / classical mean): {:.1}x",
        r.aerial.mean / r.classical.mean.max(0.01)
    );
    println!("\nPaper's claim: aerial imagery carries ~20–90 objects per image");
    println!("vs 1–2 in classical datasets — reproduced above.");
}
