//! Regenerates Table I: the SOTA model comparison.

use aero_bench::{run_table1, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Table I — SOTA comparison (scale: {scale:?}; set AERO_SCALE=smoke|small|paper)\n");
    println!("Training 5 baselines + AeroDiffusion under an identical budget…\n");
    let r = run_table1(scale, 42);
    println!("{}", r.table());
    println!("\nPaper's reference values (A100-scale, VisDrone-DET):");
    println!("  DDPM 217.95 / 10.38 / 0.18   Stable Diffusion 119.13 / 4.85 / 0.07");
    println!("  ARLDM 111.59 / 5.61 / 0.04   Versatile 124.12 / 5.70 / 0.06");
    println!("  Make-a-Scene 114.74 / 5.74 / 0.06   AeroDiffusion 78.15 / 5.98 / 0.04");
    println!("\nExpected shape: AeroDiffusion best FID/KID; DDPM best PSNR, worst FID.");
    let aero = r.metrics("AeroDiffusion").expect("row exists");
    let ddpm = r.metrics("DDPM").expect("row exists");
    let baseline_best_fid = r
        .rows
        .iter()
        .filter(|(n, _)| n != "AeroDiffusion")
        .map(|(_, m)| m.fid)
        .fold(f32::INFINITY, f32::min);
    println!("\nMeasured shape checks:");
    println!(
        "  AeroDiffusion FID {:.2} vs best baseline {:.2} -> {}",
        aero.fid,
        baseline_best_fid,
        if aero.fid < baseline_best_fid { "WIN" } else { "loss (increase scale)" }
    );
    println!(
        "  DDPM PSNR {:.2} vs AeroDiffusion {:.2} (paper: DDPM higher via pixel space)",
        ddpm.psnr, aero.psnr
    );
}
