//! Serving-throughput benchmark: batching, replica scale-out, and
//! admission under overload.
//!
//! Three sections, all against one smoke-scale trained pipeline:
//!
//! 1. **batch caps** — the same request burst served by one worker with
//!    the micro-batcher capped at 1, 4 and 8, so the measured difference
//!    is purely what coalescing buys: one `[n, c, h, w]` sampler call
//!    amortises the per-op graph overhead that `n` separate
//!    `[1, c, h, w]` calls pay `n` times.
//! 2. **replica fleet** — the burst routed over 1, 2 and 4 replica
//!    groups (one worker each), measuring what independent groups add on
//!    a multi-core host.
//! 3. **overload** — a burst of 2× the armed queue-depth gate, measuring
//!    the shed rate and asserting every shed is a typed `overloaded`
//!    reply (and every admitted request is still served).
//!
//! A warmup request per prompt runs first so replica hydration and
//! condition encoding are excluded from the measured window.
//!
//! Writes `BENCH_serve.json` to the working directory.
//! `BENCH_SERVE_SMOKE=1` shrinks the workload and skips the file write —
//! used by CI as a threshold-free liveness check.

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aero_serve::{GenerateRequest, Json, RejectReason, ServeConfig, ServeReply, ServeRuntime};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot};
use std::time::{Duration, Instant};

const PROMPTS: [&str; 8] = [
    "an aerial view of a park",
    "a parking lot at night",
    "a dense downtown block",
    "a river through farmland",
    "a harbor at dawn",
    "a stadium from above",
    "a suburban cul-de-sac",
    "an industrial rail yard",
];
const STEPS: usize = 4;

struct Run {
    label: &'static str,
    knob: usize,
    req_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    mean_batch: f64,
}

fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    let i = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[i] as f64 / 1000.0
}

fn image_of(reply: ServeReply) -> aero_serve::GeneratedImage {
    match reply {
        ServeReply::Image(img) => img,
        ServeReply::Rejected { id, reason } => panic!("request {id} rejected: {reason}"),
        ServeReply::Preview(p) => panic!("wait() must not surface previews ({})", p.id),
    }
}

/// Serves a warm `requests`-deep burst and measures throughput/latency.
fn measure(
    snapshot: &PipelineSnapshot,
    label: &'static str,
    knob: usize,
    requests: usize,
    configure: impl Fn(&mut ServeConfig),
) -> Run {
    let mut config = ServeConfig::for_pipeline(snapshot.config());
    config.workers = 1;
    config.max_batch = 4;
    config.queue_capacity = requests + PROMPTS.len();
    config.batch_wait = Duration::from_millis(5);
    config.steps = STEPS;
    configure(&mut config);
    let runtime = ServeRuntime::start(snapshot.clone(), config);
    // Warmup: hydrate every replica and fill the condition caches.
    for (i, prompt) in PROMPTS.iter().enumerate() {
        let handle = runtime
            .submit(GenerateRequest::new(format!("warm-{i}"), *prompt, 1000 + i as u64))
            .expect("warmup submit");
        let _ = image_of(handle.wait());
    }
    // Measured burst: everything is queued up front, so the batcher can
    // coalesce up to its cap on every pop.
    let started = Instant::now();
    let handles: Vec<_> = (0..requests)
        .map(|i| {
            runtime
                .submit(GenerateRequest::new(format!("r{i}"), PROMPTS[i % PROMPTS.len()], i as u64))
                .expect("burst submit")
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(requests);
    let mut batch_total = 0usize;
    for handle in handles {
        let img = image_of(handle.wait());
        latencies_us.push(img.latency.total_us());
        batch_total += img.batch_size;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = runtime.shutdown();
    assert_eq!(stats.completed as usize, requests + PROMPTS.len(), "zero dropped requests");
    latencies_us.sort_unstable();
    Run {
        label,
        knob,
        req_per_sec: requests as f64 / elapsed,
        p50_ms: percentile_ms(&latencies_us, 0.50),
        p95_ms: percentile_ms(&latencies_us, 0.95),
        mean_batch: batch_total as f64 / requests as f64,
    }
}

/// Floods a depth-gated runtime with 2× its shed threshold and measures
/// the typed shed rate; every admitted request must still be served.
fn measure_overload(snapshot: &PipelineSnapshot, shed_depth: usize) -> (usize, usize, f64) {
    let mut config = ServeConfig::for_pipeline(snapshot.config());
    config.workers = 1;
    config.max_batch = 4;
    config.batch_wait = Duration::from_millis(5);
    config.steps = STEPS;
    config.queue_capacity = 4 * shed_depth;
    config.admission.shed_queue_depth = shed_depth;
    let runtime = ServeRuntime::start(snapshot.clone(), config);
    let offered = 2 * shed_depth;
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for i in 0..offered {
        match runtime.submit(GenerateRequest::new(
            format!("o{i}"),
            PROMPTS[i % PROMPTS.len()],
            i as u64,
        )) {
            Ok(handle) => accepted.push(handle),
            Err(RejectReason::Overloaded { .. }) => shed += 1,
            Err(reason) => panic!("overload must shed typed `overloaded`, got {reason}"),
        }
    }
    let served = accepted.len();
    for handle in accepted {
        let _ = image_of(handle.wait());
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.completed as usize, served, "every admitted request is served");
    assert_eq!(stats.rejected_overloaded as usize, shed);
    (offered, shed, shed as f64 / offered as f64)
}

fn main() {
    let smoke = std::env::var("BENCH_SERVE_SMOKE").is_ok_and(|v| v == "1");
    let requests = if smoke { 8 } else { 24 };
    let batch_caps: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 8] };
    let replica_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let config = PipelineConfig::smoke();
    println!(
        "bench_serve: training a smoke pipeline once, serving {requests}-request bursts{}…",
        if smoke { " (smoke mode)" } else { "" }
    );
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 4,
        image_size: config.vision.image_size,
        seed: 17,
        generator: SceneGeneratorConfig::default(),
    });
    let snapshot = AeroDiffusionPipeline::fit(&dataset, config, 17).snapshot();

    // Section 1: what coalescing buys, one worker, one replica.
    let batch_runs: Vec<Run> = batch_caps
        .iter()
        .map(|&b| measure(&snapshot, "max_batch", b, requests, |c| c.max_batch = b))
        .collect();
    // Section 2: what replica groups buy, one worker per group.
    let fleet_runs: Vec<Run> = replica_counts
        .iter()
        .map(|&r| measure(&snapshot, "replicas", r, requests, |c| c.replicas = r))
        .collect();
    println!(
        "{:>10} {:>6} {:>12} {:>10} {:>10} {:>11}",
        "knob", "value", "req/sec", "p50 ms", "p95 ms", "mean batch"
    );
    for run in batch_runs.iter().chain(&fleet_runs) {
        println!(
            "{:>10} {:>6} {:>12.2} {:>10.2} {:>10.2} {:>11.2}",
            run.label, run.knob, run.req_per_sec, run.p50_ms, run.p95_ms, run.mean_batch
        );
    }
    let last = batch_runs.len() - 1;
    let speedup = batch_runs[last].req_per_sec / batch_runs[0].req_per_sec;
    println!("batch-{} vs batch-1 throughput: {speedup:.2}x", batch_runs[last].knob);
    assert!(
        batch_runs[last].req_per_sec > batch_runs[0].req_per_sec,
        "coalescing must beat serial batch-1 serving"
    );

    // Section 3: shed rate at 2× the depth gate.
    let shed_depth = requests / 2;
    let (offered, shed, shed_rate) = measure_overload(&snapshot, shed_depth);
    println!(
        "overload: offered {offered} against a depth gate of {shed_depth} → \
         {shed} shed ({:.0}% of offered), all typed",
        shed_rate * 100.0
    );
    assert!(shed > 0, "a 2x-capacity burst must shed load");

    if smoke {
        println!("smoke mode: skipping BENCH_serve.json write");
        return;
    }
    let run_json = |r: &Run| {
        Json::obj(vec![
            (r.label, r.knob.into()),
            ("req_per_sec", r.req_per_sec.into()),
            ("p50_ms", r.p50_ms.into()),
            ("p95_ms", r.p95_ms.into()),
            ("mean_batch", r.mean_batch.into()),
        ])
    };
    let json = Json::obj(vec![
        ("bench", "serve".into()),
        ("requests", requests.into()),
        ("steps", STEPS.into()),
        ("workers", 1u64.into()),
        ("results", Json::Arr(batch_runs.iter().map(run_json).collect())),
        ("fleet", Json::Arr(fleet_runs.iter().map(run_json).collect())),
        (
            "overload",
            Json::obj(vec![
                ("offered", offered.into()),
                ("shed_queue_depth", shed_depth.into()),
                ("shed", shed.into()),
                ("shed_rate", shed_rate.into()),
            ]),
        ),
        ("batch8_vs_batch1_speedup", speedup.into()),
    ]);
    std::fs::write("BENCH_serve.json", format!("{}\n", json.render()))
        .expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
