//! Serving-throughput benchmark: the same request burst served with the
//! micro-batcher capped at batch 1, 4 and 8.
//!
//! One worker serves every configuration so the measured difference is
//! purely what coalescing buys: one `[n, c, h, w]` sampler call amortises
//! the per-op graph overhead that `n` separate `[1, c, h, w]` calls pay
//! `n` times. A warmup request per prompt runs first so replica hydration
//! and condition encoding are excluded from the measured window (the
//! burst itself is all cache hits, identical across configurations).
//!
//! Writes `BENCH_serve.json` (requests/sec, p50/p95 latency per batch
//! cap) to the working directory.

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aero_serve::{GenerateRequest, Json, ServeConfig, ServeReply, ServeRuntime};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot};
use std::time::{Duration, Instant};

const PROMPTS: [&str; 4] = [
    "an aerial view of a park",
    "a parking lot at night",
    "a dense downtown block",
    "a river through farmland",
];
const REQUESTS: usize = 24;
const STEPS: usize = 4;

struct Run {
    max_batch: usize,
    req_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    mean_batch: f64,
}

fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    let i = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[i] as f64 / 1000.0
}

fn measure(snapshot: &PipelineSnapshot, max_batch: usize) -> Run {
    let mut config = ServeConfig::for_pipeline(snapshot.config());
    config.workers = 1;
    config.max_batch = max_batch;
    config.queue_capacity = REQUESTS + PROMPTS.len();
    config.batch_wait = Duration::from_millis(5);
    config.steps = STEPS;
    let runtime = ServeRuntime::start(snapshot.clone(), config);
    // Warmup: hydrate the replica and fill the condition cache.
    for (i, prompt) in PROMPTS.iter().enumerate() {
        let handle = runtime
            .submit(GenerateRequest::new(format!("warm-{i}"), *prompt, 1000 + i as u64))
            .expect("warmup submit");
        assert!(matches!(handle.wait(), ServeReply::Image(_)));
    }
    // Measured burst: everything is queued up front, so the batcher can
    // coalesce up to its cap on every pop.
    let started = Instant::now();
    let handles: Vec<_> = (0..REQUESTS)
        .map(|i| {
            runtime
                .submit(GenerateRequest::new(format!("r{i}"), PROMPTS[i % PROMPTS.len()], i as u64))
                .expect("burst submit")
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(REQUESTS);
    let mut batch_total = 0usize;
    for handle in handles {
        match handle.wait() {
            ServeReply::Image(img) => {
                latencies_us.push(img.latency.total_us());
                batch_total += img.batch_size;
            }
            ServeReply::Rejected { id, reason } => panic!("burst request {id} rejected: {reason}"),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let _ = runtime.shutdown();
    latencies_us.sort_unstable();
    Run {
        max_batch,
        req_per_sec: REQUESTS as f64 / elapsed,
        p50_ms: percentile_ms(&latencies_us, 0.50),
        p95_ms: percentile_ms(&latencies_us, 0.95),
        mean_batch: batch_total as f64 / REQUESTS as f64,
    }
}

fn main() {
    let config = PipelineConfig::smoke();
    println!("bench_serve: training a smoke pipeline once, serving it at batch caps 1/4/8…");
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 4,
        image_size: config.vision.image_size,
        seed: 17,
        generator: SceneGeneratorConfig::default(),
    });
    let snapshot = AeroDiffusionPipeline::fit(&dataset, config, 17).snapshot();

    let runs: Vec<Run> = [1usize, 4, 8].iter().map(|&b| measure(&snapshot, b)).collect();
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>11}",
        "max_batch", "req/sec", "p50 ms", "p95 ms", "mean batch"
    );
    for run in &runs {
        println!(
            "{:>10} {:>12.2} {:>10.2} {:>10.2} {:>11.2}",
            run.max_batch, run.req_per_sec, run.p50_ms, run.p95_ms, run.mean_batch
        );
    }
    let speedup = runs[2].req_per_sec / runs[0].req_per_sec;
    println!("batch-8 vs batch-1 throughput: {speedup:.2}x");
    assert!(
        runs[2].req_per_sec > runs[0].req_per_sec,
        "coalescing at batch 8 must beat serial batch-1 serving"
    );

    let json = Json::obj(vec![
        ("bench", "serve".into()),
        ("requests", REQUESTS.into()),
        ("steps", STEPS.into()),
        ("workers", 1u64.into()),
        (
            "results",
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("max_batch", r.max_batch.into()),
                            ("req_per_sec", r.req_per_sec.into()),
                            ("p50_ms", r.p50_ms.into()),
                            ("p95_ms", r.p95_ms.into()),
                            ("mean_batch", r.mean_batch.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("batch8_vs_batch1_speedup", speedup.into()),
    ]);
    std::fs::write("BENCH_serve.json", format!("{}\n", json.render()))
        .expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
