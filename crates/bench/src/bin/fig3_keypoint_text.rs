//! Regenerates Fig. 3: traditional vs keypoint-aware prompting.

use aero_bench::run_fig3;

fn main() {
    println!("Fig. 3 — keypoint-aware text generation example\n");
    let r = run_fig3(7);
    println!("=== Traditional prompt ===");
    println!("{}\n", r.traditional_prompt);
    println!("Output: {}\n", r.traditional_caption);
    println!("[keypoint coverage score: {:.2}]\n", r.traditional_score);
    println!("=== Keypoint-aware prompt ===");
    println!("{}\n", r.keypoint_prompt);
    println!("Output: {}\n", r.keypoint_caption);
    println!("[keypoint coverage score: {:.2}]\n", r.keypoint_score);
    println!(
        "Keypoint-aware prompting improves caption coverage by {:.0}%",
        100.0 * (r.keypoint_score - r.traditional_score) / r.traditional_score.max(0.01)
    );
}
