//! Diagnostic: how strongly does the condition steer generation?
//!
//! Trains the pipeline at the chosen scale, then for each eval item
//! generates with (a) its own condition and (b) another item's condition
//! from the same start noise. If conditioning works, own-condition
//! generations should be closer to their reference (higher PSNR) than
//! cross-condition ones.

use aero_bench::{ExperimentScale, Protocol};
use aero_metrics::psnr;
use aerodiffusion::AeroDiffusionPipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    let protocol = Protocol::new(scale, 42);
    let cfg = scale.pipeline_config();
    println!("training AeroDiffusion at {scale:?}…");
    let pipeline = AeroDiffusionPipeline::fit(&protocol.train, cfg, 42);

    // VAE ceiling: reconstruction PSNR bounds any latent-space generator
    {
        let mut recon_total = 0.0;
        let m = protocol.eval.len().min(8);
        for item in protocol.eval.iter().take(m) {
            let t = item.rendered.image.to_tensor();
            let s = t.shape()[1];
            let batch = t.reshape(&[1, 3, s, s]);
            let recon = pipeline.bundle().vae.reconstruct(&batch);
            recon_total += psnr(&batch, &recon);
        }
        println!("VAE reconstruction PSNR (ceiling): {:.2}", recon_total / m as f32);
    }

    // condition diversity: mean pairwise cosine of condition vectors
    {
        let conds: Vec<Vec<f32>> = protocol
            .eval
            .iter()
            .take(8)
            .map(|item| pipeline.condition_vector(item).into_vec())
            .collect();
        let mut cos_sum = 0.0;
        let mut pairs = 0;
        for i in 0..conds.len() {
            for j in (i + 1)..conds.len() {
                let dot: f32 = conds[i].iter().zip(&conds[j]).map(|(a, b)| a * b).sum();
                let na: f32 = conds[i].iter().map(|v| v * v).sum::<f32>().sqrt();
                let nb: f32 = conds[j].iter().map(|v| v * v).sum::<f32>().sqrt();
                cos_sum += dot / (na * nb).max(1e-8);
                pairs += 1;
            }
        }
        println!(
            "condition diversity: mean pairwise cosine {:.4} over {pairs} pairs (1.0 = identical)",
            cos_sum / pairs as f32
        );
    }

    let n = protocol.eval.len().min(8);
    let mut own_total = 0.0;
    let mut cross_total = 0.0;
    for i in 0..n {
        let item = &protocol.eval.items[i];
        let other = &protocol.eval.items[(i + 1) % n];
        let own_caption = pipeline.caption_for(item, &mut StdRng::seed_from_u64(7));
        let own = pipeline.generate_with_description(
            item,
            &own_caption,
            &mut StdRng::seed_from_u64(100 + i as u64),
        );
        // cross: other item's condition content, same start noise
        let cross_caption = pipeline.caption_for(other, &mut StdRng::seed_from_u64(7));
        let cross = pipeline.generate_with_description(
            other,
            &cross_caption,
            &mut StdRng::seed_from_u64(100 + i as u64),
        );
        let reference = item.rendered.image.to_tensor();
        let own_psnr = psnr(&reference, &own.to_tensor());
        let cross_psnr = psnr(&reference, &cross.to_tensor());
        own_total += own_psnr;
        cross_total += cross_psnr;
        println!(
            "item {i}: PSNR(own cond) {own_psnr:.2}  PSNR(cross cond) {cross_psnr:.2}  delta {:+.2}",
            own_psnr - cross_psnr
        );
    }
    println!(
        "\nmean PSNR own {:.2} vs cross {:.2} (positive gap = conditioning steers generation)",
        own_total / n as f32,
        cross_total / n as f32
    );
}
