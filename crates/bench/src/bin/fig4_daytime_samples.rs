//! Regenerates Fig. 4: daytime sample gallery.

use aero_bench::{run_fig4, ExperimentScale};
use std::path::Path;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Fig. 4 — generated daytime samples (scale: {scale:?})\n");
    let gallery = run_fig4(scale, 46);
    let dir = Path::new("target/experiments/fig4");
    gallery.save_ppm(dir).expect("write gallery");
    for (label, img, lum) in &gallery.samples {
        println!("{label}: {}x{}, mean luminance {:.3}", img.width(), img.height(), lum);
    }
    println!(
        "\nwrote {} samples + {} references to {}",
        gallery.samples.len(),
        gallery.references.len(),
        dir.display()
    );
}
