//! Diagnostic: can the conditional UNet learn to use a *perfect*
//! condition (a one-hot scene id) to reproduce per-scene latents?
//!
//! This isolates the conditioning mechanism from the representation
//! question: if own-condition samples are much closer to their latent
//! than cross-condition samples, the UNet + sampler + CFG chain works.

use aero_diffusion::{
    CondUnet, DdimSampler, DiffusionConfig, DiffusionTrainer, SampleOptions, Sampler, TrainBatch,
    UnetConfig,
};
use aero_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let n_scenes: usize = std::env::var("SCENES").ok().and_then(|v| v.parse().ok()).unwrap_or(6);
    let latents: Vec<Tensor> = (0..n_scenes).map(|_| Tensor::randn(&[4, 8, 8], &mut rng)).collect();
    let onehot = |i: usize| {
        let mut c = Tensor::zeros(&[1, n_scenes]);
        c.set(&[0, i], 1.0);
        c
    };

    let unet = CondUnet::new(
        UnetConfig {
            in_channels: 4,
            base_channels: 8,
            cond_dim: n_scenes,
            time_embed_dim: 32,
            cond_tokens: 1,
            spatial_cond_cells: 16,
        },
        &mut rng,
    );
    let trainer = DiffusionTrainer::new(DiffusionConfig::small());
    let batches: Vec<TrainBatch> = (0..n_scenes)
        .map(|i| {
            let z = latents[i].reshape(&[1, 4, 8, 8]);
            TrainBatch { z0: z, cond: Some(onehot(i)) }
        })
        .collect();
    let epochs: usize = std::env::var("EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(150);
    let lr: f32 = std::env::var("LR").ok().and_then(|v| v.parse().ok()).unwrap_or(3e-3);
    let history = trainer.train(&unet, &batches, epochs, lr, &mut rng);
    println!(
        "loss: first {:.4} -> last {:.4} over {} epochs",
        history.first().unwrap(),
        history.last().unwrap(),
        epochs
    );

    let sampler = DdimSampler::new(10, 3.0);
    let mut own_sum = 0.0;
    let mut cross_sum = 0.0;
    #[allow(clippy::needless_range_loop)] // `i` indexes two rotated views, not one slice
    for i in 0..n_scenes {
        let own_cond = onehot(i);
        let own = Sampler::Ddim(sampler).run(
            &unet,
            trainer.schedule(),
            SampleOptions::from_rng(&[1, 4, 8, 8], &mut StdRng::seed_from_u64(50 + i as u64))
                .with_cond(&own_cond),
        );
        let cross_cond = onehot((i + 1) % n_scenes);
        let cross = Sampler::Ddim(sampler).run(
            &unet,
            trainer.schedule(),
            SampleOptions::from_rng(&[1, 4, 8, 8], &mut StdRng::seed_from_u64(50 + i as u64))
                .with_cond(&cross_cond),
        );
        let target = latents[i].reshape(&[1, 4, 8, 8]);
        let d_own = own.sub(&target).powf(2.0).mean();
        let d_cross = cross.sub(&target).powf(2.0).mean();
        println!("scene {i}: mse own {d_own:.3} cross {d_cross:.3}");
        own_sum += d_own;
        cross_sum += d_cross;
    }
    println!(
        "\nmean latent MSE: own {:.3} vs cross {:.3} -> conditioning {}",
        own_sum / n_scenes as f32,
        cross_sum / n_scenes as f32,
        if own_sum < 0.7 * cross_sum { "WORKS" } else { "NOT LEARNED" }
    );
}
