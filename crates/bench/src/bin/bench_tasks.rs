//! Task-pipeline benchmark: per-task end-to-end sampling latency for the
//! four [`TaskSpec`] workloads (text, view translation, inpainting, and
//! the two-stage super-resolution cascade) on one smoke-trained
//! pipeline.
//!
//! Besides the latency table, the run asserts the API contracts CI cares
//! about at every scale: each task is deterministic in `(task, sampler,
//! seed)` (two runs byte-compare equal) and produces a native-resolution
//! image. `BENCH_TASKS_SMOKE=1` drops the repetition count so CI can use
//! this as a liveness gate. Writes `BENCH_tasks.json` to the working
//! directory.

use aero_diffusion::{DdimSampler, StepSink};
use aero_scene::{
    build_dataset, Annotation, BBox, DatasetConfig, Homography, ObjectClass, SceneGeneratorConfig,
    Viewpoint,
};
use aero_serve::Json;
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `f` (median, not mean, so
/// one cold-cache outlier cannot dominate a smoke run).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::var("BENCH_TASKS_SMOKE").is_ok_and(|v| v == "1");
    let reps = if smoke { 3 } else { 9 };
    let config = PipelineConfig::smoke();
    println!("bench_tasks: training a smoke pipeline once, timing task pipelines (reps={reps})…");
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 4,
        image_size: config.vision.image_size,
        seed: 23,
        generator: SceneGeneratorConfig::default(),
    });
    let pipeline = AeroDiffusionPipeline::fit(&dataset, config, 23);
    let sampler = DdimSampler::new(4, config.diffusion.guidance_scale);
    let s = config.vision.image_size;

    let item = &dataset.items[0];
    let caption = pipeline.caption_for(item, &mut StdRng::seed_from_u64(0));
    let source = dataset.items[1].rendered.image.clone();
    let homography = Homography::between(
        source.width(),
        source.height(),
        &Viewpoint::default(),
        &Viewpoint { altitude: 0.6, pitch_deg: 60.0, heading_deg: 30.0 },
    );
    let tasks = [
        ("text", TaskSpec::text(item, &caption, "an aerial view of a park")),
        ("view", TaskSpec::view(source.clone(), homography, "the park from the north")),
        (
            "inpaint",
            TaskSpec::inpaint(
                source,
                vec![Annotation {
                    class: ObjectClass::ALL[0],
                    bbox: BBox::new(4.0, 4.0, 11.0, 10.0),
                }],
                "a truck at the center",
            ),
        ),
    ];

    let mut fields: Vec<(&str, Json)> = vec![
        ("bench", "tasks".into()),
        ("smoke", smoke.into()),
        ("reps", reps.into()),
        ("ddim_steps", sampler.steps.into()),
    ];
    println!("{:>10} {:>14}", "task", "median ms");
    for (name, task) in &tasks {
        let reference = pipeline.run_task(task, &sampler, 31, StepSink::none());
        assert_eq!(
            (reference.width(), reference.height()),
            (s, s),
            "{name} must produce a native-resolution image"
        );
        assert_eq!(
            reference,
            pipeline.run_task(task, &sampler, 31, StepSink::none()),
            "{name} must be deterministic in (task, sampler, seed)"
        );
        let secs = median_secs(reps, || {
            let _ = pipeline.run_task(task, &sampler, 31, StepSink::none());
        });
        println!("{:>10} {:>14.2}", name, secs * 1e3);
        fields.push((name, Json::obj(vec![("median_ms", (secs * 1e3).into())])));
    }

    // The cascade is its own dataflow (draft → downscale → re-denoise),
    // so it is timed end to end rather than as a bare run_task.
    let cascade_ref =
        pipeline.super_res_cascade(item, "a sharper aerial photo", &sampler, 31, StepSink::none());
    assert_eq!(
        (cascade_ref.width(), cascade_ref.height()),
        (s, s),
        "superres cascade must produce a native-resolution image"
    );
    assert_eq!(
        cascade_ref,
        pipeline.super_res_cascade(item, "a sharper aerial photo", &sampler, 31, StepSink::none()),
        "superres cascade must be deterministic in (prompt, sampler, seed)"
    );
    let cascade_secs = median_secs(reps, || {
        let _ = pipeline.super_res_cascade(
            item,
            "a sharper aerial photo",
            &sampler,
            31,
            StepSink::none(),
        );
    });
    println!("{:>10} {:>14.2}", "superres", cascade_secs * 1e3);
    fields.push(("superres", Json::obj(vec![("median_ms", (cascade_secs * 1e3).into())])));
    fields.push(("deterministic", true.into()));

    let json = Json::obj(fields);
    std::fs::write("BENCH_tasks.json", format!("{}\n", json.render()))
        .expect("write BENCH_tasks.json");
    println!("wrote BENCH_tasks.json");
}
