//! Design-choice ablation: beta-schedule comparison.
//!
//! Compares the paper's linear schedule against the cosine and
//! scaled-linear alternatives under an identical training budget — one of
//! the ablation benches DESIGN.md calls out for design choices the paper
//! fixes without analysis.

use aero_bench::{ExperimentScale, Protocol};
use aero_diffusion::{BetaSchedule, DiffusionConfig};
use aero_metrics::{MetricRow, MetricTable};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Ablation: noise-schedule comparison (scale: {scale:?})\n");
    let protocol = Protocol::new(scale, 88);
    let base_cfg = scale.pipeline_config();

    let schedules: [(&str, BetaSchedule); 3] = [
        ("linear (paper)", base_cfg.diffusion.schedule),
        ("cosine", BetaSchedule::Cosine),
        ("scaled-linear", BetaSchedule::ScaledLinear { beta_start: 0.02, beta_end: 0.25 }),
    ];
    let mut table = MetricTable::new("Beta-schedule comparison", &["FID ↓", "PSNR ↑", "KID ↓"]);
    for (name, schedule) in schedules {
        let cfg = PipelineConfig {
            diffusion: DiffusionConfig { schedule, ..base_cfg.diffusion },
            ..base_cfg
        };
        let pipeline = AeroDiffusionPipeline::fit(&protocol.train, cfg, 88);
        let mut rng = StdRng::seed_from_u64(89);
        let generated = pipeline.generate_eval(&protocol.eval, &mut rng);
        let m = protocol.score(&generated);
        table.push(MetricRow::new(name, vec![m.fid, m.psnr, m.kid]));
    }
    println!("{table}");
}
