//! Regenerates Table II: caption-source comparison.

use aero_bench::{run_table2, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Table II — keypoint-aware text generation (scale: {scale:?})\n");
    println!("Retraining the conditional pipeline per caption source…\n");
    let r = run_table2(scale, 43);
    println!("{}", r.table());
    println!("\nPaper's reference values:");
    println!("  Gemini 30.12 / 86.22   GPT-4o 29.22 / 92.11");
    println!("  BLIP 25.64 / 126.38    AeroDiffusion 32.82 / 78.16");
    println!("\nExpected shape: AeroDiffusion highest CLIP score and lowest FID;");
    println!("BLIP-style one-line captions worst on both.");
}
