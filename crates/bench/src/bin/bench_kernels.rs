//! Kernel-layer benchmark: compute backends × kernel thread counts.
//!
//! Times four workloads — a square matmul, a batched conv2d, one UNet
//! denoise step, and one full DDIM sample — under both compute backends
//! (`reference`, the serial oracle kernels; `blocked`, the cache-blocked
//! microkernels) at 1, 2, 4 and 8 kernel threads, asserting along the
//! way that every backend × thread-count combination produces
//! bit-identical output bytes (the kernel layer's core contract).
//!
//! Writes `BENCH_kernels.json` to the working directory. The file
//! records the host's `available_parallelism` because parallel speedups
//! are only meaningful relative to it: the dispatcher clamps its plan to
//! the physical core count, so on a single-core container every thread
//! column times the same serial execution. Three gates:
//!
//! - **blocked ≥3× matmul (1 thread)** — the cache-blocked backend must
//!   beat the reference oracle by ≥3× on the single-thread 512² matmul
//!   (sized so the reference streams its B operand past L2). Armed
//!   whenever not in smoke mode (no core requirement: it is a
//!   single-thread comparison).
//! - **matmul ≥2× (4 threads, blocked)** — only arms on hosts with at
//!   least 4 cores; elsewhere the numbers are recorded honestly and the
//!   gate is reported as skipped.
//! - **no parallel regression** — `conv2d` and `unet_denoise_step` must
//!   not *lose* from parallel dispatch (4-thread time ≥0.9× of
//!   1-thread). Same ≥4-core arming; on smaller hosts the core-clamped
//!   planner keeps these serial by construction.
//!
//! Also measures span-tracing overhead: the DDIM workload is re-timed
//! inside an [`aero_obs::span::collect`] scope and the relative cost is
//! recorded as `tracing_overhead_pct` (target <2%; recorded, not gated —
//! single-core CI containers are too noisy to assert on).
//!
//! `BENCH_KERNELS_SMOKE=1` shrinks every workload to smoke size and
//! skips the file write — used by CI as a threshold-free liveness check.

use aero_diffusion::{
    BetaSchedule, CondUnet, DdimSampler, NoiseSchedule, SampleOptions, Sampler, UnetConfig,
};
use aero_serve::Json;
use aero_tensor::backend::with_backend;
use aero_tensor::parallel::with_threads;
use aero_tensor::{BackendKind, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const COND_DIM: usize = 48;

struct Workload {
    name: &'static str,
    /// Best-of-N wall time per thread count, in microseconds, aligned
    /// with [`THREAD_COUNTS`]; one row per entry of [`BackendKind::ALL`]
    /// (reference first, blocked second).
    best_us: [Vec<u64>; 2],
}

/// Times `f` under every backend × thread-count combination, asserting
/// all runs produce the same output bytes as the reference backend at
/// one thread, and returns the per-combination best-of-`reps` wall
/// times. Within one thread count the two backends' reps are
/// interleaved, so host-load drift hits both sides of the
/// blocked-vs-reference ratio equally.
fn measure<F>(name: &'static str, reps: usize, f: F) -> Workload
where
    F: Fn() -> Tensor,
{
    let oracle: Vec<u32> = with_backend(BackendKind::Reference, || with_threads(1, &f))
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let mut best_us = [vec![u64::MAX; THREAD_COUNTS.len()], vec![u64::MAX; THREAD_COUNTS.len()]];
    for (ti, &threads) in THREAD_COUNTS.iter().enumerate() {
        for &backend in &BackendKind::ALL {
            with_backend(backend, || with_threads(threads, &f)); // warmup
        }
        for _ in 0..reps {
            for (bi, &backend) in BackendKind::ALL.iter().enumerate() {
                let started = Instant::now();
                let out = with_backend(backend, || with_threads(threads, &f));
                let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                best_us[bi][ti] = best_us[bi][ti].min(us);
                let bits: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    bits, oracle,
                    "{name}: output diverged from the oracle under {backend} at {threads} threads"
                );
            }
        }
    }
    Workload { name, best_us }
}

/// Parallel speedup of `w` under `backend` at `threads` relative to the
/// same backend at one thread.
fn speedup(w: &Workload, backend: BackendKind, threads: usize) -> f64 {
    let bi = BackendKind::ALL.iter().position(|&b| b == backend).unwrap();
    let i = THREAD_COUNTS.iter().position(|&t| t == threads).unwrap();
    w.best_us[bi][0] as f64 / (w.best_us[bi][i].max(1)) as f64
}

/// Single-thread speedup of the blocked backend over the reference
/// oracle on `w`.
fn backend_speedup_1t(w: &Workload) -> f64 {
    w.best_us[0][0] as f64 / (w.best_us[1][0].max(1)) as f64
}

/// Best-of-`reps` wall time of `f` in microseconds. With `traced`, each
/// run executes inside a span-collection scope (and the run is checked
/// to have actually recorded spans, so the overhead number is honest).
fn best_us<F: Fn() -> Tensor>(reps: usize, traced: bool, f: &F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let started = Instant::now();
        if traced {
            let (_, trace) = aero_obs::span::collect(f);
            assert!(!trace.is_empty(), "traced run recorded no spans");
        } else {
            f();
        }
        best = best.min(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    best
}

fn main() {
    let smoke = std::env::var("BENCH_KERNELS_SMOKE").is_ok_and(|v| v == "1");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("bench_kernels: host has {cores} core(s){}", if smoke { ", smoke mode" } else { "" });

    let mut rng = StdRng::seed_from_u64(42);
    // 512² puts the reference kernel's streamed B operand (1 MiB) past
    // L2 — the cache regime the blocked backend exists for; at 256² both
    // backends run cache-resident and the gap is ALU-bound only.
    let (mm_side, reps) = if smoke { (32, 2) } else { (512, 5) };
    let a = Tensor::randn(&[mm_side, mm_side], &mut rng);
    let b = Tensor::randn(&[mm_side, mm_side], &mut rng);
    let matmul = measure("matmul", reps, || a.matmul(&b));

    let (ch, side) = if smoke { (4, 8) } else { (16, 32) };
    let x = Tensor::randn(&[2, ch, side, side], &mut rng);
    let w = Tensor::randn(&[2 * ch, ch, 3, 3], &mut rng);
    let bias = Tensor::zeros(&[2 * ch]);
    let conv = measure("conv2d", reps, || x.conv2d(&w, Some(&bias), 1, 1));

    let unet = CondUnet::new(UnetConfig::latent(COND_DIM), &mut rng);
    let z = Tensor::randn(&[1, 4, 8, 8], &mut rng);
    let cond = Tensor::randn(&[1, COND_DIM], &mut rng);
    let step = measure("unet_denoise_step", reps, || unet.predict(&z, &[5], Some(&cond)));

    let schedule =
        NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.012 }, 64);
    let sampler = DdimSampler::new(if smoke { 2 } else { 8 }, 2.0);
    let z_init = Tensor::randn(&[1, 4, 8, 8], &mut rng);
    let ddim = measure("ddim_sample", if smoke { 1 } else { 2 }, || {
        Sampler::Ddim(sampler).run(
            &unet,
            &schedule,
            SampleOptions::from_latent(z_init.clone()).with_cond(&cond),
        )
    });

    let workloads = [matmul, conv, step, ddim];
    println!(
        "{:>20} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "backend", "1t µs", "2t µs", "4t µs", "8t µs"
    );
    for w in &workloads {
        for (bi, backend) in BackendKind::ALL.iter().enumerate() {
            println!(
                "{:>20} {:>10} {:>10} {:>10} {:>10} {:>10}",
                w.name,
                backend.as_str(),
                w.best_us[bi][0],
                w.best_us[bi][1],
                w.best_us[bi][2],
                w.best_us[bi][3]
            );
        }
    }

    // Span-tracing overhead on the DDIM workload: best-of-N with the
    // thread-local collector off vs. installed. Recorded, not gated —
    // the <2% target is meaningful on quiet hosts only.
    let trace_reps = if smoke { 2 } else { 8 };
    let ddim_run = || {
        Sampler::Ddim(sampler).run(
            &unet,
            &schedule,
            SampleOptions::from_latent(z_init.clone()).with_cond(&cond),
        )
    };
    ddim_run(); // warmup
    let tracing_off_us = best_us(trace_reps, false, &ddim_run);
    let tracing_on_us = best_us(trace_reps, true, &ddim_run);
    let tracing_overhead_pct = (tracing_on_us as f64 - tracing_off_us as f64).max(0.0)
        / tracing_off_us.max(1) as f64
        * 100.0;
    println!(
        "tracing overhead on ddim_sample: {tracing_overhead_pct:.2}% \
         ({tracing_off_us} µs off, {tracing_on_us} µs on; target <2%)"
    );

    // Single-thread backend gate: no core requirement, arms off-smoke.
    let mm = &workloads[0];
    let blocked_1t = backend_speedup_1t(mm);
    println!("matmul: blocked {blocked_1t:.2}x over reference at 1 thread");
    if !smoke {
        assert!(
            blocked_1t >= 3.0,
            "blocked matmul must reach 3x over the reference oracle at 1 thread"
        );
    }

    // Parallel gates are only physically meaningful with ≥4 cores.
    let gated = !smoke && cores >= 4;
    if gated {
        let s = speedup(mm, BackendKind::Blocked, 4);
        println!("matmul: {s:.2}x at 4 threads (blocked)");
        assert!(s >= 2.0, "matmul must reach 2x at 4 threads on a {cores}-core host");
        // The dispatcher must never fan out where it loses: small convs
        // and UNet steps stay at worst within noise of their serial run.
        for name in ["conv2d", "unet_denoise_step"] {
            let w = workloads.iter().find(|w| w.name == name).unwrap();
            let s = speedup(w, BackendKind::Blocked, 4);
            println!("{name}: {s:.2}x at 4 threads (blocked)");
            assert!(s >= 0.9, "{name} must not regress under parallel dispatch");
        }
    } else {
        println!("parallel speedup gates skipped ({cores} core(s), smoke={smoke})");
    }

    if smoke {
        println!(
            "smoke mode: all outputs bit-identical across both backends × 1/2/4/8 threads, \
             no file written"
        );
        return;
    }
    let json = Json::obj(vec![
        ("bench", "kernels".into()),
        ("available_parallelism", (cores as u64).into()),
        ("thread_counts", Json::Arr(THREAD_COUNTS.iter().map(|&t| (t as u64).into()).collect())),
        ("backends", Json::Arr(BackendKind::ALL.iter().map(|b| b.as_str().into()).collect())),
        ("speedup_gate_armed", gated.into()),
        ("blocked_gate_armed", true.into()),
        ("matmul_blocked_vs_reference_1t", blocked_1t.into()),
        ("tracing_off_us", tracing_off_us.into()),
        ("tracing_on_us", tracing_on_us.into()),
        ("tracing_overhead_pct", tracing_overhead_pct.into()),
        (
            "results",
            Json::Arr(
                workloads
                    .iter()
                    .map(|w| {
                        Json::obj(vec![
                            ("workload", w.name.into()),
                            (
                                "reference_us",
                                Json::Arr(w.best_us[0].iter().map(|&u| u.into()).collect()),
                            ),
                            (
                                "blocked_us",
                                Json::Arr(w.best_us[1].iter().map(|&u| u.into()).collect()),
                            ),
                            ("speedup_4t", speedup(w, BackendKind::Blocked, 4).into()),
                            ("blocked_vs_reference_1t", backend_speedup_1t(w).into()),
                            ("bit_identical", true.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write("BENCH_kernels.json", format!("{}\n", json.render()))
        .expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
