//! Kernel-layer benchmark: serial vs. sharded-parallel tensor kernels.
//!
//! Times four workloads — a square matmul, a batched conv2d, one UNet
//! denoise step, and one full DDIM sample — at 1, 2, 4 and 8 kernel
//! threads, asserting along the way that every thread count produces
//! bit-identical output bytes (the kernel layer's core contract).
//!
//! Writes `BENCH_kernels.json` to the working directory. The file
//! records the host's `available_parallelism` because speedups are only
//! meaningful relative to it: on a single-core container every
//! configuration times the same serial execution plus thread overhead.
//! The ≥2× matmul / UNet-step speedup gate therefore only arms on hosts
//! with at least 4 cores; elsewhere the numbers are recorded honestly
//! and the gate is reported as skipped.
//!
//! Also measures span-tracing overhead: the DDIM workload is re-timed
//! inside an [`aero_obs::span::collect`] scope and the relative cost is
//! recorded as `tracing_overhead_pct` (target <2%; recorded, not gated —
//! single-core CI containers are too noisy to assert on).
//!
//! `BENCH_KERNELS_SMOKE=1` shrinks every workload to smoke size and
//! skips the file write — used by CI as a threshold-free liveness check.

use aero_diffusion::{
    BetaSchedule, CondUnet, DdimSampler, NoiseSchedule, SampleOptions, Sampler, UnetConfig,
};
use aero_serve::Json;
use aero_tensor::parallel::with_threads;
use aero_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const COND_DIM: usize = 48;

struct Workload {
    name: &'static str,
    /// Best-of-N wall time per thread count, in microseconds, aligned
    /// with [`THREAD_COUNTS`].
    best_us: Vec<u64>,
}

/// Times `f` at every thread count, asserting all runs produce the same
/// output bytes, and returns the per-count best-of-`reps` wall times.
fn measure<F>(name: &'static str, reps: usize, f: F) -> Workload
where
    F: Fn() -> Tensor,
{
    let reference: Vec<u32> = with_threads(1, &f).as_slice().iter().map(|v| v.to_bits()).collect();
    let mut best_us = Vec::with_capacity(THREAD_COUNTS.len());
    for &threads in &THREAD_COUNTS {
        with_threads(threads, &f); // warmup
        let mut best = u64::MAX;
        for _ in 0..reps {
            let started = Instant::now();
            let out = with_threads(threads, &f);
            best = best.min(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
            let bits: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, reference, "{name}: output diverged at {threads} threads");
        }
        best_us.push(best);
    }
    Workload { name, best_us }
}

fn speedup(w: &Workload, threads: usize) -> f64 {
    let i = THREAD_COUNTS.iter().position(|&t| t == threads).unwrap();
    w.best_us[0] as f64 / (w.best_us[i].max(1)) as f64
}

/// Best-of-`reps` wall time of `f` in microseconds. With `traced`, each
/// run executes inside a span-collection scope (and the run is checked
/// to have actually recorded spans, so the overhead number is honest).
fn best_us<F: Fn() -> Tensor>(reps: usize, traced: bool, f: &F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let started = Instant::now();
        if traced {
            let (_, trace) = aero_obs::span::collect(f);
            assert!(!trace.is_empty(), "traced run recorded no spans");
        } else {
            f();
        }
        best = best.min(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    best
}

fn main() {
    let smoke = std::env::var("BENCH_KERNELS_SMOKE").is_ok_and(|v| v == "1");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("bench_kernels: host has {cores} core(s){}", if smoke { ", smoke mode" } else { "" });

    let mut rng = StdRng::seed_from_u64(42);
    let (mm_side, reps) = if smoke { (32, 2) } else { (256, 5) };
    let a = Tensor::randn(&[mm_side, mm_side], &mut rng);
    let b = Tensor::randn(&[mm_side, mm_side], &mut rng);
    let matmul = measure("matmul", reps, || a.matmul(&b));

    let (ch, side) = if smoke { (4, 8) } else { (16, 32) };
    let x = Tensor::randn(&[2, ch, side, side], &mut rng);
    let w = Tensor::randn(&[2 * ch, ch, 3, 3], &mut rng);
    let bias = Tensor::zeros(&[2 * ch]);
    let conv = measure("conv2d", reps, || x.conv2d(&w, Some(&bias), 1, 1));

    let unet = CondUnet::new(UnetConfig::latent(COND_DIM), &mut rng);
    let z = Tensor::randn(&[1, 4, 8, 8], &mut rng);
    let cond = Tensor::randn(&[1, COND_DIM], &mut rng);
    let step = measure("unet_denoise_step", reps, || unet.predict(&z, &[5], Some(&cond)));

    let schedule =
        NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.012 }, 64);
    let sampler = DdimSampler::new(if smoke { 2 } else { 8 }, 2.0);
    let z_init = Tensor::randn(&[1, 4, 8, 8], &mut rng);
    let ddim = measure("ddim_sample", if smoke { 1 } else { 2 }, || {
        Sampler::Ddim(sampler).run(
            &unet,
            &schedule,
            SampleOptions::from_latent(z_init.clone()).with_cond(&cond),
        )
    });

    let workloads = [matmul, conv, step, ddim];
    println!("{:>20} {:>10} {:>10} {:>10} {:>10}", "workload", "1t µs", "2t µs", "4t µs", "8t µs");
    for w in &workloads {
        println!(
            "{:>20} {:>10} {:>10} {:>10} {:>10}",
            w.name, w.best_us[0], w.best_us[1], w.best_us[2], w.best_us[3]
        );
    }

    // Span-tracing overhead on the DDIM workload: best-of-N with the
    // thread-local collector off vs. installed. Recorded, not gated —
    // the <2% target is meaningful on quiet hosts only.
    let trace_reps = if smoke { 2 } else { 8 };
    let ddim_run = || {
        Sampler::Ddim(sampler).run(
            &unet,
            &schedule,
            SampleOptions::from_latent(z_init.clone()).with_cond(&cond),
        )
    };
    ddim_run(); // warmup
    let tracing_off_us = best_us(trace_reps, false, &ddim_run);
    let tracing_on_us = best_us(trace_reps, true, &ddim_run);
    let tracing_overhead_pct = (tracing_on_us as f64 - tracing_off_us as f64).max(0.0)
        / tracing_off_us.max(1) as f64
        * 100.0;
    println!(
        "tracing overhead on ddim_sample: {tracing_overhead_pct:.2}% \
         ({tracing_off_us} µs off, {tracing_on_us} µs on; target <2%)"
    );

    // The ≥2× speedup gate is only physically meaningful with ≥4 cores.
    let gated = !smoke && cores >= 4;
    if gated {
        for name in ["matmul", "unet_denoise_step"] {
            let w = workloads.iter().find(|w| w.name == name).unwrap();
            let s = speedup(w, 4);
            println!("{name}: {s:.2}x at 4 threads");
            assert!(s >= 2.0, "{name} must reach 2x at 4 threads on a {cores}-core host");
        }
    } else {
        println!("speedup gate skipped ({cores} core(s), smoke={smoke})");
    }

    if smoke {
        println!("smoke mode: all outputs bit-identical across 1/2/4/8 threads, no file written");
        return;
    }
    let json = Json::obj(vec![
        ("bench", "kernels".into()),
        ("available_parallelism", (cores as u64).into()),
        ("thread_counts", Json::Arr(THREAD_COUNTS.iter().map(|&t| (t as u64).into()).collect())),
        ("speedup_gate_armed", gated.into()),
        ("tracing_off_us", tracing_off_us.into()),
        ("tracing_on_us", tracing_on_us.into()),
        ("tracing_overhead_pct", tracing_overhead_pct.into()),
        (
            "results",
            Json::Arr(
                workloads
                    .iter()
                    .map(|w| {
                        Json::obj(vec![
                            ("workload", w.name.into()),
                            ("best_us", Json::Arr(w.best_us.iter().map(|&u| u.into()).collect())),
                            ("speedup_4t", speedup(w, 4).into()),
                            ("bit_identical", true.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write("BENCH_kernels.json", format!("{}\n", json.render()))
        .expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
