//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `run_*` function implements one experiment's full protocol —
//! dataset construction, substrate/model training, generation, scoring —
//! and returns a structured result that the corresponding binary prints
//! and the integration tests assert on. Scale is controlled by
//! [`ExperimentScale`] (the `AERO_SCALE` environment variable in the
//! binaries): `Smoke` for seconds-level CI runs, `Small` for the default
//! minutes-level reproduction, `Paper` for the full configuration.

pub mod experiments;
pub mod protocol;

pub use experiments::{
    run_fig1, run_fig3, run_fig4, run_fig5, run_table1, run_table2, run_table3, run_table4,
    Fig1Result, Fig3Result, SampleGallery, Table1Result, Table2Result, Table3Result, Table4Result,
};
pub use protocol::{EvalMetrics, ExperimentScale, Protocol};
