//! Shared evaluation protocol: dataset sizes, splits, and scoring.

use aero_metrics::{fid, kid, psnr_batch, FeatureExtractor};
use aero_scene::{build_dataset, AerialDataset, DatasetConfig, Image, SceneGeneratorConfig};
use aero_tensor::Tensor;
use aerodiffusion::PipelineConfig;

/// Experiment scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExperimentScale {
    /// Seconds: used by integration tests.
    Smoke,
    /// Minutes: the default for `cargo run` reproductions.
    #[default]
    Small,
    /// The paper-faithful configuration (hours on CPU).
    Paper,
}

impl ExperimentScale {
    /// Reads `AERO_SCALE` (`smoke`/`small`/`paper`), defaulting to small.
    pub fn from_env() -> Self {
        match std::env::var("AERO_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "smoke" => ExperimentScale::Smoke,
            "paper" => ExperimentScale::Paper,
            _ => ExperimentScale::Small,
        }
    }

    /// The pipeline configuration for this scale.
    pub fn pipeline_config(self) -> PipelineConfig {
        match self {
            ExperimentScale::Smoke => PipelineConfig::smoke(),
            ExperimentScale::Small => PipelineConfig::small(),
            ExperimentScale::Paper => PipelineConfig::paper(),
        }
    }

    /// (train, eval) dataset sizes. The paper trains on 6,471 images and
    /// evaluates on 3,200 samples; lower scales shrink proportionally.
    pub fn split_sizes(self) -> (usize, usize) {
        match self {
            ExperimentScale::Smoke => (6, 4),
            ExperimentScale::Small => (32, 24),
            ExperimentScale::Paper => (6471, 3200),
        }
    }
}

/// FID / PSNR / KID of one generated set (a Table I/IV cell row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// Fréchet distance to the real eval set (lower better).
    pub fid: f32,
    /// Mean PSNR against the paired references (higher better).
    pub psnr: f32,
    /// Kernel distance to the real eval set (lower better).
    pub kid: f32,
}

/// The shared experiment protocol: one dataset, one split, one extractor.
#[derive(Debug)]
pub struct Protocol {
    /// Training split.
    pub train: AerialDataset,
    /// Evaluation split (references for PSNR; real set for FID/KID).
    pub eval: AerialDataset,
    /// The fixed FID/KID feature extractor.
    pub extractor: FeatureExtractor,
    /// The scale this protocol was built at.
    pub scale: ExperimentScale,
}

impl Protocol {
    /// Builds the dataset and split for a scale.
    pub fn new(scale: ExperimentScale, seed: u64) -> Self {
        let (n_train, n_eval) = scale.split_sizes();
        let cfg = scale.pipeline_config();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: n_train + n_eval,
            image_size: cfg.vision.image_size,
            seed,
            generator: SceneGeneratorConfig::default(),
        });
        let (train, eval) = ds.split(n_train as f32 / (n_train + n_eval) as f32);
        Protocol { train, eval, extractor: FeatureExtractor::default(), scale }
    }

    /// Real eval images as tensors.
    pub fn real_eval_tensors(&self) -> Vec<Tensor> {
        self.eval.iter().map(|i| i.rendered.image.to_tensor()).collect()
    }

    /// Scores a generated set against the eval split.
    ///
    /// # Panics
    ///
    /// Panics if `generated` does not pair 1:1 with the eval split, or if
    /// the FID covariance square root fails to converge numerically.
    pub fn score(&self, generated: &[Image]) -> EvalMetrics {
        assert_eq!(generated.len(), self.eval.len(), "one generated image per eval item");
        let real = self.real_eval_tensors();
        let gen: Vec<Tensor> = generated.iter().map(Image::to_tensor).collect();
        EvalMetrics {
            fid: fid(&self.extractor, &real, &gen).expect("fid computation"),
            psnr: psnr_batch(&real, &gen),
            kid: kid(&self.extractor, &real, &gen),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_protocol_builds_split() {
        let p = Protocol::new(ExperimentScale::Smoke, 1);
        assert_eq!(p.train.len(), 6);
        assert_eq!(p.eval.len(), 4);
    }

    #[test]
    fn real_vs_real_scores_near_perfect() {
        let p = Protocol::new(ExperimentScale::Smoke, 2);
        let copies: Vec<Image> = p.eval.iter().map(|i| i.rendered.image.clone()).collect();
        let m = p.score(&copies);
        assert!(m.fid < 1e-2, "self-FID {}", m.fid);
        assert_eq!(m.psnr, f32::INFINITY);
        // the unbiased KID estimator is negative for identical small sets
        assert!(m.kid <= 1e-3 && m.kid > -1.0, "self-KID {}", m.kid);
    }

    #[test]
    fn scale_from_env_fallback() {
        // no env set in tests: defaults to Small
        assert_eq!(ExperimentScale::from_env(), ExperimentScale::Small);
    }
}
