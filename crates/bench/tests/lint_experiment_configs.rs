//! Every experiment scale the benchmark harness ships must describe a
//! statically consistent model: the `aero-analysis` shape pass runs over
//! the exact pipeline geometry each [`ExperimentScale`] realises, so a
//! config regression is caught at test time instead of minutes into a
//! benchmark run.

use aero_bench::protocol::ExperimentScale;
use aerodiffusion::lint_config;

#[test]
fn all_experiment_scales_lint_clean() {
    for scale in [ExperimentScale::Smoke, ExperimentScale::Small, ExperimentScale::Paper] {
        let config = scale.pipeline_config();
        let report = lint_config(&config);
        assert!(
            report.is_clean(),
            "{scale:?} experiment config has shape errors:\n{}",
            report.render()
        );
        assert_eq!(
            report.warning_count(),
            0,
            "{scale:?} experiment config has shape warnings:\n{}",
            report.render()
        );
    }
}
