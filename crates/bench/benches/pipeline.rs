//! Criterion benches for the pipeline stages backing Tables I–IV.

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aero_text::llm::LlmProvider;
use aero_text::prompt::PromptTemplate;
use aerodiffusion::substrate::caption_dataset;
use aerodiffusion::{
    AeroDiffusionPipeline, ConditionNetwork, PipelineConfig, RegionAugmenter, SubstrateBundle,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn smoke_world() -> (aero_scene::AerialDataset, PipelineConfig) {
    let cfg = PipelineConfig::smoke();
    let ds = build_dataset(&DatasetConfig {
        n_scenes: 4,
        image_size: cfg.vision.image_size,
        seed: 9,
        generator: SceneGeneratorConfig { min_objects: 4, max_objects: 8, night_probability: 0.2 },
    });
    (ds, cfg)
}

fn bench_region_augmentation(c: &mut Criterion) {
    let (ds, cfg) = smoke_world();
    let mut rng = StdRng::seed_from_u64(1);
    let aug = RegionAugmenter::new(&cfg, &mut rng);
    let item = &ds.items[0];
    let mut group = c.benchmark_group("augment");
    group.sample_size(20);
    group.bench_function("region_augment_one_image", |b| {
        b.iter(|| black_box(aug.augment(&item.rendered.image, &item.rendered.boxes).to_tensor()));
    });
}

fn bench_condition_vector(c: &mut Criterion) {
    let (ds, cfg) = smoke_world();
    let mut rng = StdRng::seed_from_u64(2);
    let net = ConditionNetwork::new(60, &cfg, &mut rng);
    let clip = aero_vision::clip::ClipModel::new(60, cfg.vision, &mut rng);
    let item = &ds.items[0];
    let inputs = [aerodiffusion::condition::ConditionInputs {
        image: &item.rendered.image,
        tokens_g: vec![1; cfg.vision.max_text_len],
        tokens_g_prime: vec![2; cfg.vision.max_text_len],
        rois: &item.rendered.boxes,
    }];
    let mut group = c.benchmark_group("condition");
    group.sample_size(20);
    group.bench_function("condition_vector_build", |b| {
        b.iter(|| black_box(net.build_batch(&clip, &inputs).to_tensor()));
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let (ds, cfg) = smoke_world();
    let pipeline = AeroDiffusionPipeline::fit(&ds, cfg, 3);
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    group.bench_function("ddim_generate_one_sample", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            black_box(pipeline.generate(&ds.items[0], &mut rng))
        });
    });
    group.finish();
}

fn bench_substrate_training(c: &mut Criterion) {
    let (ds, cfg) = smoke_world();
    let captions =
        caption_dataset(&ds, LlmProvider::KeypointAware, &PromptTemplate::keypoint_aware(), 5);
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.bench_function("bundle_train_smoke", |b| {
        b.iter(|| black_box(SubstrateBundle::train(&ds, &captions, &cfg, 6)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_region_augmentation,
    bench_condition_vector,
    bench_generation,
    bench_substrate_training
);
criterion_main!(benches);
