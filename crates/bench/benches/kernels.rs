//! Criterion benches for the numerical kernels behind every experiment.

use aero_diffusion::{BetaSchedule, CondUnet, NoiseSchedule, UnetConfig};
use aero_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b))));
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::randn(&[1, 8, 32, 32], &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
    c.bench_function("conv2d_8to16_32px", |bench| {
        bench.iter(|| black_box(x.conv2d(black_box(&w), None, 1, 1)));
    });
}

fn bench_unet_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let unet = CondUnet::new(
        UnetConfig {
            in_channels: 4,
            base_channels: 16,
            cond_dim: 96,
            time_embed_dim: 32,
            cond_tokens: 3,
            spatial_cond_cells: 16,
        },
        &mut rng,
    );
    let z = Tensor::randn(&[1, 4, 8, 8], &mut rng);
    let cond = Tensor::randn(&[1, 96], &mut rng);
    c.bench_function("unet_forward_latent8", |bench| {
        bench.iter(|| black_box(unet.predict(black_box(&z), &[10], Some(&cond))));
    });
}

fn bench_forward_process(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let schedule =
        NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.012 }, 1000);
    let z0 = Tensor::randn(&[4, 4, 8, 8], &mut rng);
    let eps = Tensor::randn(&[4, 4, 8, 8], &mut rng);
    c.bench_function("q_sample_t500", |bench| {
        bench.iter(|| black_box(schedule.q_sample(black_box(&z0), 500, &eps)));
    });
}

fn bench_scene_render(c: &mut Criterion) {
    use aero_scene::{Rasterizer, SceneGenerator, SceneGeneratorConfig};
    let gen = SceneGenerator::new(SceneGeneratorConfig::default());
    let spec = gen.generate(&mut StdRng::seed_from_u64(5));
    let raster = Rasterizer::new(32, 32);
    c.bench_function("scene_render_32px", |bench| {
        bench.iter(|| black_box(raster.render(black_box(&spec))));
    });
}

fn bench_caption(c: &mut Criterion) {
    use aero_scene::{SceneGenerator, SceneGeneratorConfig};
    use aero_text::llm::{LlmProvider, SimulatedLlm};
    use aero_text::prompt::PromptTemplate;
    let gen = SceneGenerator::new(SceneGeneratorConfig::default());
    let spec = gen.generate(&mut StdRng::seed_from_u64(6));
    let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
    let prompt = PromptTemplate::keypoint_aware();
    c.bench_function("keypoint_caption", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(llm.describe(black_box(&spec), &prompt, &mut rng))
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv2d,
    bench_unet_forward,
    bench_forward_process,
    bench_scene_render,
    bench_caption
);
criterion_main!(benches);
