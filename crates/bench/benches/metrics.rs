//! Criterion benches for the evaluation metrics (the scoring half of
//! every table).

use aero_metrics::{fid, kid, psnr_batch, FeatureExtractor};
use aero_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sets(n: usize) -> (Vec<Tensor>, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mk = |rng: &mut StdRng| -> Vec<Tensor> {
        (0..n).map(|_| Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, rng)).collect()
    };
    (mk(&mut rng), mk(&mut rng))
}

fn bench_fid(c: &mut Criterion) {
    let e = FeatureExtractor::default();
    let (real, gen) = sets(16);
    c.bench_function("fid_16_images", |b| {
        b.iter(|| black_box(fid(&e, black_box(&real), black_box(&gen)).expect("fid")));
    });
}

fn bench_kid(c: &mut Criterion) {
    let e = FeatureExtractor::default();
    let (real, gen) = sets(16);
    c.bench_function("kid_16_images", |b| {
        b.iter(|| black_box(kid(&e, black_box(&real), black_box(&gen))));
    });
}

fn bench_psnr(c: &mut Criterion) {
    let (real, gen) = sets(16);
    c.bench_function("psnr_16_images", |b| {
        b.iter(|| black_box(psnr_batch(black_box(&real), black_box(&gen))));
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let e = FeatureExtractor::default();
    let mut rng = StdRng::seed_from_u64(2);
    let batch = Tensor::rand_uniform(&[16, 3, 32, 32], 0.0, 1.0, &mut rng);
    c.bench_function("feature_extract_batch16", |b| {
        b.iter(|| black_box(e.features(black_box(&batch))));
    });
}

criterion_group!(benches, bench_fid, bench_kid, bench_psnr, bench_feature_extraction);
criterion_main!(benches);
