//! The Make-a-Scene-like baseline: scene-layout conditioning.

use crate::latent::LatentCore;
use crate::model::{clip_text_condition, naive_caption, BaselineConfig, GenerativeModel};
use aero_scene::{AerialDataset, Annotation, DatasetItem, Image};
use aero_tensor::Tensor;
use aerodiffusion::SubstrateBundle;
use rand::rngs::StdRng;

/// Side length of the rasterized layout grid.
const LAYOUT_GRID: usize = 8;

/// Make-a-Scene conditions generation on a coarse scene-layout map plus
/// text. This miniature rasterizes the ground-truth object boxes into an
/// 8×8 occupancy grid (object density per cell) and concatenates it with
/// the CLIP text embedding — explicit spatial structure, but no region
/// feature detail and no keypoint text.
#[derive(Debug)]
pub struct MakeASceneLike {
    core: LatentCore,
}

impl MakeASceneLike {
    /// Creates an unfitted baseline.
    pub fn new(config: BaselineConfig) -> Self {
        MakeASceneLike { core: LatentCore::new(config, 0) }
    }

    fn ensure_dim(&mut self, bundle: &SubstrateBundle) {
        if self.core.cond_dim() == 0 {
            let d = clip_text_condition(bundle, "probe").shape()[1];
            let cfg = *self.core.config();
            self.core = LatentCore::new(cfg, d + LAYOUT_GRID * LAYOUT_GRID);
        }
    }

    /// Rasterizes annotations into a `[1, g²]` density grid.
    fn layout_grid(&self, boxes: &[Annotation]) -> Tensor {
        let s = self.core.config().image_size as f32;
        let g = LAYOUT_GRID;
        let mut grid = vec![0.0f32; g * g];
        for b in boxes {
            let (cx, cy) = b.bbox.center();
            let gx = ((cx / s * g as f32) as usize).min(g - 1);
            let gy = ((cy / s * g as f32) as usize).min(g - 1);
            grid[gy * g + gx] += 1.0;
        }
        // soft normalization keeps dense markets from saturating
        let t = Tensor::from_vec(grid, &[1, g * g]);
        t.map(|v| (v / 3.0).tanh())
    }

    fn condition(&self, item: &DatasetItem, bundle: &SubstrateBundle, caption_seed: u64) -> Tensor {
        let layout = self.layout_grid(&item.rendered.boxes);
        let txt_c = clip_text_condition(bundle, &naive_caption(item, caption_seed));
        Tensor::concat(&[&txt_c, &layout], 1)
    }
}

impl GenerativeModel for MakeASceneLike {
    fn name(&self) -> &'static str {
        "Make-a-Scene"
    }

    fn fit(&mut self, train: &AerialDataset, bundle: &SubstrateBundle, seed: u64) {
        self.ensure_dim(bundle);
        let conds: Vec<Tensor> = train
            .iter()
            .enumerate()
            .map(|(i, item)| self.condition(item, bundle, seed ^ i as u64))
            .collect();
        self.core.fit(train, bundle, &conds, seed);
    }

    fn generate(&self, item: &DatasetItem, bundle: &SubstrateBundle, rng: &mut StdRng) -> Image {
        let cond = self.condition(item, bundle, 0);
        self.core.generate(bundle, &cond, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::BBox;
    use aero_scene::ObjectClass;

    #[test]
    fn layout_grid_counts_density() {
        let model = MakeASceneLike::new(BaselineConfig::smoke(32));
        let boxes = vec![
            Annotation { class: ObjectClass::Car, bbox: BBox::new(0.0, 0.0, 4.0, 4.0) },
            Annotation { class: ObjectClass::Car, bbox: BBox::new(1.0, 1.0, 3.0, 3.0) },
            Annotation { class: ObjectClass::Bus, bbox: BBox::new(28.0, 28.0, 32.0, 32.0) },
        ];
        let grid = model.layout_grid(&boxes);
        assert_eq!(grid.shape(), &[1, 64]);
        // two cars in the top-left cell
        assert!(grid.get(&[0, 0]) > grid.get(&[0, 63]) * 1.5);
        assert!(grid.get(&[0, 63]) > 0.0);
        // cells without objects are zero
        assert_eq!(grid.get(&[0, 1]), 0.0);
    }
}
