//! The unconditional pixel-space DDPM baseline.

use crate::model::{BaselineConfig, GenerativeModel};
use aero_diffusion::{
    CondUnet, DdpmSampler, DiffusionTrainer, SampleOptions, Sampler, TrainBatch, UnetConfig,
};
use aero_scene::{AerialDataset, DatasetItem, Image};
use aero_tensor::Tensor;
use aerodiffusion::SubstrateBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pixel-space DDPM: no condition, ancestral sampling in RGB.
///
/// Operating in pixel space "retains finer details" (the paper's
/// explanation for DDPM's top PSNR) but without any conditioning the
/// samples drift toward the dataset's smooth average — the worst FID in
/// Table I.
#[derive(Debug)]
pub struct DdpmBaseline {
    config: BaselineConfig,
    unet: Option<CondUnet>,
    trainer: DiffusionTrainer,
}

impl DdpmBaseline {
    /// Creates an unfitted baseline.
    pub fn new(config: BaselineConfig) -> Self {
        DdpmBaseline { config, unet: None, trainer: DiffusionTrainer::new(config.diffusion) }
    }
}

impl GenerativeModel for DdpmBaseline {
    fn name(&self) -> &'static str {
        "DDPM"
    }

    fn fit(&mut self, train: &AerialDataset, _bundle: &SubstrateBundle, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 3,
                base_channels: self.config.unet_channels,
                cond_dim: 0,
                time_embed_dim: 32,
                cond_tokens: 0,
                spatial_cond_cells: 0,
            },
            &mut rng,
        );
        // pixel space, scaled to [-1, 1]
        let batches: Vec<TrainBatch> = train
            .items
            .chunks(self.config.batch_size.max(1))
            .map(|chunk| {
                let imgs: Vec<Tensor> = chunk
                    .iter()
                    .map(|i| i.rendered.image.to_tensor().mul_scalar(2.0).add_scalar(-1.0))
                    .collect();
                let refs: Vec<&Tensor> = imgs.iter().collect();
                TrainBatch { z0: Tensor::stack(&refs), cond: None }
            })
            .collect();
        self.trainer.train(&unet, &batches, self.config.epochs, self.config.lr, &mut rng);
        self.unet = Some(unet);
    }

    fn generate(&self, _item: &DatasetItem, _bundle: &SubstrateBundle, rng: &mut StdRng) -> Image {
        let unet = self.unet.as_ref().expect("fit() must be called before generate()");
        let s = self.config.image_size;
        let x = Sampler::Ddpm(DdpmSampler::new()).run(
            unet,
            self.trainer.schedule(),
            SampleOptions::from_rng(&[1, 3, s, s], rng),
        );
        let rgb = x.add_scalar(1.0).mul_scalar(0.5).clamp(0.0, 1.0);
        Image::from_tensor(&rgb.reshape(&[3, s, s]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
    use aero_text::llm::LlmProvider;
    use aero_text::prompt::PromptTemplate;
    use aerodiffusion::{substrate::caption_dataset, PipelineConfig};

    #[test]
    fn ddpm_fits_and_generates() {
        let cfg = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 4,
            image_size: cfg.vision.image_size,
            seed: 41,
            generator: SceneGeneratorConfig {
                min_objects: 3,
                max_objects: 6,
                night_probability: 0.0,
            },
        });
        let captions =
            caption_dataset(&ds, LlmProvider::BlipCaption, &PromptTemplate::traditional(), 1);
        let bundle = SubstrateBundle::train(&ds, &captions, &cfg, 2);
        let mut model = DdpmBaseline::new(BaselineConfig::smoke(cfg.vision.image_size));
        model.fit(&ds, &bundle, 3);
        let img = model.generate(&ds.items[0], &bundle, &mut StdRng::seed_from_u64(4));
        assert_eq!(img.width(), cfg.vision.image_size);
        assert!(img.to_tensor().as_slice().iter().all(|v| v.is_finite()));
    }
}
