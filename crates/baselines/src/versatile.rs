//! The Versatile-Diffusion-like baseline: multi-flow context mixing.

use crate::latent::LatentCore;
use crate::model::{
    clip_image_condition, clip_text_condition, naive_caption, BaselineConfig, GenerativeModel,
};
use aero_scene::{AerialDataset, DatasetItem, Image};
use aero_tensor::Tensor;
use aerodiffusion::SubstrateBundle;
use rand::rngs::StdRng;

/// Versatile Diffusion handles text, image, and variation flows in one
/// model by *blending* context streams; this miniature mirrors that with
/// an averaged image/text CLIP context. Blending dilutes each modality's
/// signal — the mechanism behind its mid-table FID in Table I.
#[derive(Debug)]
pub struct VersatileDiffusionLike {
    core: LatentCore,
}

impl VersatileDiffusionLike {
    /// Creates an unfitted baseline.
    pub fn new(config: BaselineConfig) -> Self {
        VersatileDiffusionLike { core: LatentCore::new(config, 0) }
    }

    fn ensure_dim(&mut self, bundle: &SubstrateBundle) {
        if self.core.cond_dim() == 0 {
            let d = clip_text_condition(bundle, "probe").shape()[1];
            let cfg = *self.core.config();
            self.core = LatentCore::new(cfg, d);
        }
    }

    fn condition(&self, item: &DatasetItem, bundle: &SubstrateBundle, caption_seed: u64) -> Tensor {
        let size = self.core.config().image_size;
        let img_c = clip_image_condition(bundle, &item.rendered.image, size);
        let txt_c = clip_text_condition(bundle, &naive_caption(item, caption_seed));
        img_c.add(&txt_c).mul_scalar(0.5)
    }
}

impl GenerativeModel for VersatileDiffusionLike {
    fn name(&self) -> &'static str {
        "Versatile Diffusion"
    }

    fn fit(&mut self, train: &AerialDataset, bundle: &SubstrateBundle, seed: u64) {
        self.ensure_dim(bundle);
        let conds: Vec<Tensor> = train
            .iter()
            .enumerate()
            .map(|(i, item)| self.condition(item, bundle, seed ^ i as u64))
            .collect();
        self.core.fit(train, bundle, &conds, seed);
    }

    fn generate(&self, item: &DatasetItem, bundle: &SubstrateBundle, rng: &mut StdRng) -> Image {
        let cond = self.condition(item, bundle, 0);
        self.core.generate(bundle, &cond, rng)
    }
}
