//! Baseline generative models benchmarked against AeroDiffusion in the
//! paper's Table I.
//!
//! Each baseline is a faithful miniature of the cited system's
//! *conditioning mechanism* — the axis the paper's comparison isolates —
//! built on the same substrates (VAE, CLIP, detector) as AeroDiffusion so
//! that quality differences come from conditioning, not capacity:
//!
//! * [`DdpmBaseline`] — unconditional **pixel-space** DDPM (Dhariwal &
//!   Nichol): ancestral sampling directly in RGB.
//! * [`StableDiffusionLike`] — latent diffusion conditioned on CLIP text
//!   from plain one-line captions (Rombach et al.).
//! * [`ArldmLike`] — auto-regressive latent diffusion (Pan et al.):
//!   conditions on the CLIP embedding of the previous "story frame"
//!   (here: the reference image) plus text.
//! * [`VersatileDiffusionLike`] — multi-flow conditioning (Xu et al.):
//!   an averaged image/text context vector.
//! * [`MakeASceneLike`] — scene-layout conditioning (Gafni et al.): a
//!   rasterized object-layout grid concatenated with text.
//!
//! All baselines implement [`GenerativeModel`], the uniform train/generate
//! interface the Table I harness drives.

mod arldm;
mod ddpm;
mod latent;
mod make_a_scene;
mod model;
mod stable_diffusion;
mod versatile;

pub use arldm::ArldmLike;
pub use ddpm::DdpmBaseline;
pub use make_a_scene::MakeASceneLike;
pub use model::{BaselineConfig, GenerativeModel};
pub use stable_diffusion::StableDiffusionLike;
pub use versatile::VersatileDiffusionLike;

/// All five baselines, boxed, in the paper's Table I row order.
pub fn all_baselines(config: BaselineConfig) -> Vec<Box<dyn GenerativeModel>> {
    vec![
        Box::new(DdpmBaseline::new(config)),
        Box::new(StableDiffusionLike::new(config)),
        Box::new(ArldmLike::new(config)),
        Box::new(VersatileDiffusionLike::new(config)),
        Box::new(MakeASceneLike::new(config)),
    ]
}
