//! The ARLDM-like baseline: auto-regressive latent diffusion.

use crate::latent::LatentCore;
use crate::model::{
    clip_image_condition, clip_text_condition, naive_caption, BaselineConfig, GenerativeModel,
};
use aero_scene::{AerialDataset, DatasetItem, Image};
use aero_tensor::Tensor;
use aerodiffusion::SubstrateBundle;
use rand::rngs::StdRng;

/// Auto-Regressive Latent Diffusion (story visualization): each frame is
/// conditioned on the *previous frame's* image embedding plus the caption.
/// At evaluation time the reference image plays the previous frame, which
/// makes this the strongest conditional baseline in Table I — it sees
/// real image content, just without region augmentation or keypoint text.
#[derive(Debug)]
pub struct ArldmLike {
    core: LatentCore,
}

impl ArldmLike {
    /// Creates an unfitted baseline.
    pub fn new(config: BaselineConfig) -> Self {
        ArldmLike { core: LatentCore::new(config, 0) }
    }

    fn ensure_dim(&mut self, bundle: &SubstrateBundle) {
        if self.core.cond_dim() == 0 {
            let d = clip_text_condition(bundle, "probe").shape()[1];
            let cfg = *self.core.config();
            self.core = LatentCore::new(cfg, 2 * d);
        }
    }

    fn condition(&self, item: &DatasetItem, bundle: &SubstrateBundle, caption_seed: u64) -> Tensor {
        let size = self.core.config().image_size;
        let img_c = clip_image_condition(bundle, &item.rendered.image, size);
        let txt_c = clip_text_condition(bundle, &naive_caption(item, caption_seed));
        Tensor::concat(&[&img_c, &txt_c], 1)
    }
}

impl GenerativeModel for ArldmLike {
    fn name(&self) -> &'static str {
        "ARLDM"
    }

    fn fit(&mut self, train: &AerialDataset, bundle: &SubstrateBundle, seed: u64) {
        self.ensure_dim(bundle);
        let conds: Vec<Tensor> = train
            .iter()
            .enumerate()
            .map(|(i, item)| self.condition(item, bundle, seed ^ i as u64))
            .collect();
        self.core.fit(train, bundle, &conds, seed);
    }

    fn generate(&self, item: &DatasetItem, bundle: &SubstrateBundle, rng: &mut StdRng) -> Image {
        let cond = self.condition(item, bundle, 0);
        self.core.generate(bundle, &cond, rng)
    }
}
