//! Shared latent-diffusion machinery for the conditional baselines.

use crate::model::BaselineConfig;
use aero_diffusion::{
    CondUnet, DdimSampler, DiffusionTrainer, SampleOptions, Sampler, TrainBatch, UnetConfig,
};
use aero_scene::{AerialDataset, Image};
use aero_tensor::Tensor;
use aero_vision::vae::LATENT_CHANNELS;
use aerodiffusion::SubstrateBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A conditional latent-diffusion core: UNet + trainer + sampler over the
/// bundle's frozen VAE latent space. Baselines differ only in how they
/// build their condition vectors.
#[derive(Debug)]
pub(crate) struct LatentCore {
    config: BaselineConfig,
    cond_dim: usize,
    unet: Option<CondUnet>,
    trainer: DiffusionTrainer,
}

impl LatentCore {
    pub(crate) fn new(config: BaselineConfig, cond_dim: usize) -> Self {
        LatentCore {
            config,
            cond_dim,
            unet: None,
            trainer: DiffusionTrainer::new(config.diffusion),
        }
    }

    /// Trains the UNet on (latent, condition) pairs. `conds[i]` must be
    /// `[1, cond_dim]` and aligned with `train.items[i]`.
    pub(crate) fn fit(
        &mut self,
        train: &AerialDataset,
        bundle: &SubstrateBundle,
        conds: &[Tensor],
        seed: u64,
    ) {
        assert_eq!(train.len(), conds.len(), "one condition per item");
        let mut rng = StdRng::seed_from_u64(seed);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: LATENT_CHANNELS,
                base_channels: self.config.unet_channels,
                cond_dim: self.cond_dim,
                time_embed_dim: 32,
                cond_tokens: 1,
                spatial_cond_cells: (self.config.image_size / 8) * (self.config.image_size / 8),
            },
            &mut rng,
        );
        let s = self.config.image_size;
        let latents: Vec<Tensor> = train
            .iter()
            .map(|i| {
                let img = i.rendered.image.to_tensor().reshape(&[1, 3, s, s]);
                let z = bundle.vae.encode_tensor(&img);
                let sh = z.shape().to_vec();
                z.reshape(&[sh[1], sh[2], sh[3]])
            })
            .collect();
        let batches: Vec<TrainBatch> = (0..train.len())
            .collect::<Vec<_>>()
            .chunks(self.config.batch_size.max(1))
            .map(|chunk| {
                let zs: Vec<&Tensor> = chunk.iter().map(|&i| &latents[i]).collect();
                let cs: Vec<Tensor> =
                    chunk.iter().map(|&i| conds[i].reshape(&[self.cond_dim])).collect();
                let c_refs: Vec<&Tensor> = cs.iter().collect();
                TrainBatch { z0: Tensor::stack(&zs), cond: Some(Tensor::stack(&c_refs)) }
            })
            .collect();
        self.trainer.train(&unet, &batches, self.config.epochs, self.config.lr, &mut rng);
        self.unet = Some(unet);
    }

    /// Generates one image from a `[1, cond_dim]` condition.
    ///
    /// # Panics
    ///
    /// Panics if called before [`LatentCore::fit`].
    pub(crate) fn generate(
        &self,
        bundle: &SubstrateBundle,
        cond: &Tensor,
        rng: &mut StdRng,
    ) -> Image {
        let unet = self.unet.as_ref().expect("fit() must be called before generate()");
        let s = self.config.image_size;
        let latent_side = s / 4;
        let sampler = DdimSampler::new(
            self.config.diffusion.ddim_steps,
            self.config.diffusion.guidance_scale,
        );
        let z = Sampler::Ddim(sampler).run(
            unet,
            self.trainer.schedule(),
            SampleOptions::from_rng(&[1, LATENT_CHANNELS, latent_side, latent_side], rng)
                .with_cond(cond),
        );
        let decoded = bundle.vae.decode_tensor(&z);
        Image::from_tensor(&decoded.reshape(&[3, s, s]))
    }

    pub(crate) fn cond_dim(&self) -> usize {
        self.cond_dim
    }

    pub(crate) fn config(&self) -> &BaselineConfig {
        &self.config
    }
}
