//! The uniform baseline interface and shared helpers.

use aero_diffusion::DiffusionConfig;
use aero_scene::{AerialDataset, DatasetItem, Image};
use aero_tensor::Tensor;
use aero_text::llm::{LlmProvider, SimulatedLlm};
use aero_text::prompt::PromptTemplate;
use aerodiffusion::SubstrateBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyperparameters shared by all baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Square image size (must match the substrate bundle).
    pub image_size: usize,
    /// Diffusion settings.
    pub diffusion: DiffusionConfig,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// UNet base channels.
    pub unet_channels: usize,
}

impl BaselineConfig {
    /// CI-scale preset aligned with `PipelineConfig::small`.
    pub fn small(image_size: usize) -> Self {
        BaselineConfig {
            image_size,
            diffusion: DiffusionConfig::small(),
            epochs: 8,
            batch_size: 6,
            lr: 2e-3,
            unet_channels: 8,
        }
    }

    /// Minimal preset for unit tests.
    pub fn smoke(image_size: usize) -> Self {
        BaselineConfig {
            image_size,
            diffusion: DiffusionConfig::small(),
            epochs: 2,
            batch_size: 4,
            lr: 3e-3,
            unet_channels: 4,
        }
    }
}

/// The uniform train/generate interface driven by the Table I harness.
pub trait GenerativeModel {
    /// Table I row label.
    fn name(&self) -> &'static str;

    /// Trains the model on the training split, using the shared
    /// substrates where the original system used pretrained components.
    fn fit(&mut self, train: &AerialDataset, bundle: &SubstrateBundle, seed: u64);

    /// Generates one image conditioned per the model's own mechanism.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called before [`GenerativeModel::fit`].
    fn generate(&self, item: &DatasetItem, bundle: &SubstrateBundle, rng: &mut StdRng) -> Image;
}

/// The plain one-line caption the non-keypoint baselines condition on.
pub fn naive_caption(item: &DatasetItem, seed: u64) -> String {
    let llm = SimulatedLlm::new(LlmProvider::BlipCaption);
    let mut rng = StdRng::seed_from_u64(seed);
    llm.describe(&item.spec, &PromptTemplate::traditional(), &mut rng)
}

/// Encodes a caption with the bundle's frozen CLIP text tower: `[1, d]`.
pub fn clip_text_condition(bundle: &SubstrateBundle, caption: &str) -> Tensor {
    let tokens = bundle.tokenizer.encode(caption);
    bundle.clip.encode_text(&[tokens])
}

/// Encodes a reference image with the bundle's frozen CLIP image tower:
/// `[1, d]`.
pub fn clip_image_condition(bundle: &SubstrateBundle, image: &Image, size: usize) -> Tensor {
    let t = image.resize(size, size).to_tensor().reshape(&[1, 3, size, size]);
    bundle.clip.encode_image(&t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let c = BaselineConfig::small(32);
        assert_eq!(c.image_size, 32);
        assert!(c.epochs > BaselineConfig::smoke(32).epochs);
    }
}
