//! The Stable-Diffusion-like baseline: latent diffusion + CLIP text.

use crate::latent::LatentCore;
use crate::model::{clip_text_condition, naive_caption, BaselineConfig, GenerativeModel};
use aero_scene::{AerialDataset, DatasetItem, Image};
use aero_tensor::Tensor;
use aerodiffusion::SubstrateBundle;
use rand::rngs::StdRng;

/// Latent diffusion conditioned only on the CLIP embedding of a plain
/// one-line caption — the conditioning design of Stable Diffusion when
/// applied naively to aerial data (Table I row 2 / Table IV row 2).
#[derive(Debug)]
pub struct StableDiffusionLike {
    core: LatentCore,
}

impl StableDiffusionLike {
    /// Creates an unfitted baseline.
    pub fn new(config: BaselineConfig) -> Self {
        // cond dim is fixed once the bundle exists; use the CLIP embed dim
        // lazily by deferring until fit. We size at fit time via a probe;
        // store config now.
        StableDiffusionLike { core: LatentCore::new(config, 0) }
    }

    fn ensure_dim(&mut self, bundle: &SubstrateBundle) {
        if self.core.cond_dim() == 0 {
            let d = clip_text_condition(bundle, "probe").shape()[1];
            let cfg = *self.config();
            self.core = LatentCore::new(cfg, d);
        }
    }

    fn config(&self) -> &BaselineConfig {
        // LatentCore owns the config; expose through a helper.
        self.core.config()
    }
}

impl GenerativeModel for StableDiffusionLike {
    fn name(&self) -> &'static str {
        "Stable Diffusion"
    }

    fn fit(&mut self, train: &AerialDataset, bundle: &SubstrateBundle, seed: u64) {
        self.ensure_dim(bundle);
        let conds: Vec<Tensor> = train
            .iter()
            .enumerate()
            .map(|(i, item)| clip_text_condition(bundle, &naive_caption(item, seed ^ i as u64)))
            .collect();
        self.core.fit(train, bundle, &conds, seed);
    }

    fn generate(&self, item: &DatasetItem, bundle: &SubstrateBundle, rng: &mut StdRng) -> Image {
        let cond = clip_text_condition(bundle, &naive_caption(item, 0));
        self.core.generate(bundle, &cond, rng)
    }
}
