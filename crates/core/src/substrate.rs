//! Substrate training: captions, tokenizer, CLIP, VAE, detector.
//!
//! These are the stages the paper obtains from pretrained checkpoints or
//! separate training runs (CLIP, the SD VAE, YOLO-on-VisDrone); here they
//! are trained on the synthetic paired dataset before the joint diffusion
//! stage.

use crate::config::PipelineConfig;
use aero_scene::AerialDataset;
use aero_tensor::Tensor;
use aero_text::llm::{LlmProvider, SimulatedLlm};
use aero_text::prompt::PromptTemplate;
use aero_text::tokenizer::{Tokenizer, Vocabulary};
use aero_vision::clip::{ClipModel, ClipPair};
use aero_vision::detector::YoloLite;
use aero_vision::vae::Vae;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Captions every dataset item with a provider under a prompt template.
///
/// Per-item RNG streams are derived from `seed` so the corpus is stable
/// regardless of iteration order.
pub fn caption_dataset(
    dataset: &AerialDataset,
    provider: LlmProvider,
    prompt: &PromptTemplate,
    seed: u64,
) -> Vec<String> {
    let llm = SimulatedLlm::new(provider);
    dataset
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            llm.describe(&item.spec, prompt, &mut rng)
        })
        .collect()
}

/// The trained substrate models shared by AeroDiffusion and the baselines.
#[derive(Debug)]
pub struct SubstrateBundle {
    /// Tokenizer over the caption corpus.
    pub tokenizer: Tokenizer,
    /// Contrastively trained CLIP-lite.
    pub clip: ClipModel,
    /// Latent autoencoder with a fitted latent scale.
    pub vae: Vae,
    /// Trained ROI detector.
    pub detector: YoloLite,
}

impl SubstrateBundle {
    /// Builds an untrained bundle around an existing tokenizer (used when
    /// loading saved weights, which overwrite the fresh initialization).
    pub fn new_untrained(tokenizer: Tokenizer, config: &PipelineConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab = tokenizer.vocab().len();
        SubstrateBundle {
            tokenizer,
            clip: ClipModel::new(vocab, config.vision, &mut rng),
            vae: Vae::new(config.vision, &mut rng),
            detector: YoloLite::new(config.vision, &mut rng),
        }
    }

    /// Trains every substrate on the dataset + captions.
    ///
    /// Evaluating all baselines against a single substrate bundle (one
    /// VAE, one CLIP, one detector) isolates the *conditioning*
    /// differences the paper's Table I attributes the gains to.
    ///
    /// # Panics
    ///
    /// Panics if `dataset` and `captions` lengths differ or are empty.
    pub fn train(
        dataset: &AerialDataset,
        captions: &[String],
        config: &PipelineConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(dataset.len(), captions.len(), "one caption per item");
        assert!(!dataset.is_empty(), "cannot train substrates on an empty dataset");
        let mut rng = StdRng::seed_from_u64(seed);

        let vocab = Vocabulary::build(captions.iter().map(String::as_str), 1);
        let tokenizer = Tokenizer::new(vocab, config.vision.max_text_len);

        let pairs: Vec<ClipPair> = dataset
            .iter()
            .zip(captions)
            .map(|(item, cap)| ClipPair {
                image: item.rendered.image.to_tensor(),
                tokens: tokenizer.encode(cap),
            })
            .collect();
        let mut clip = ClipModel::new(tokenizer.vocab().len(), config.vision, &mut rng);
        clip.train_contrastive(
            &pairs,
            config.clip_epochs,
            config.batch_size,
            config.substrate_lr,
            &mut rng,
        );

        let images: Vec<Tensor> = dataset.iter().map(|i| i.rendered.image.to_tensor()).collect();
        let mut vae = Vae::new(config.vision, &mut rng);
        vae.train(
            &images,
            config.vae_epochs,
            config.batch_size,
            config.substrate_lr,
            1e-4,
            &mut rng,
        );
        vae.fit_latent_scale(&images);

        let det_samples: Vec<(Tensor, Vec<aero_scene::Annotation>)> = dataset
            .iter()
            .map(|i| (i.rendered.image.to_tensor(), i.rendered.boxes.clone()))
            .collect();
        let mut detector = YoloLite::new(config.vision, &mut rng);
        detector.train(
            &det_samples,
            config.detector_epochs,
            config.batch_size,
            config.substrate_lr,
            &mut rng,
        );

        SubstrateBundle { tokenizer, clip, vae, detector }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};

    fn tiny_dataset() -> AerialDataset {
        build_dataset(&DatasetConfig {
            n_scenes: 6,
            image_size: 16,
            seed: 11,
            generator: SceneGeneratorConfig {
                min_objects: 4,
                max_objects: 8,
                night_probability: 0.2,
            },
        })
    }

    #[test]
    fn captions_are_deterministic_and_per_item() {
        let ds = tiny_dataset();
        let a =
            caption_dataset(&ds, LlmProvider::KeypointAware, &PromptTemplate::keypoint_aware(), 5);
        let b =
            caption_dataset(&ds, LlmProvider::KeypointAware, &PromptTemplate::keypoint_aware(), 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), ds.len());
        assert!(a.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn bundle_trains_end_to_end() {
        let ds = tiny_dataset();
        let captions =
            caption_dataset(&ds, LlmProvider::KeypointAware, &PromptTemplate::keypoint_aware(), 5);
        let cfg = PipelineConfig::smoke();
        let bundle = SubstrateBundle::train(&ds, &captions, &cfg, 1);
        // tokenizer knows corpus words
        assert!(bundle.tokenizer.vocab().len() > 10);
        // vae round-trips shapes
        let img = ds.items[0].rendered.image.to_tensor().reshape(&[1, 3, 16, 16]);
        let z = bundle.vae.encode_tensor(&img);
        assert_eq!(z.shape(), &[1, 4, 4, 4]);
        // detector runs
        let dets = bundle.detector.detect(&ds.items[0].rendered.image.to_tensor(), 0.01, 0.5);
        let _ = dets; // may be empty at smoke scale; must not panic
    }
}
