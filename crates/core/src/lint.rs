//! Pre-flight static validation of a [`PipelineConfig`].
//!
//! [`lint_config`] builds the [`aero_analysis::PipelineShapeDesc`] the
//! pipeline constructor would realise — the same vision geometry, the
//! same `C = [C_xg; C_g; f̂_X]` condition concatenation, and the exact
//! [`UnetConfig`] that [`crate::pipeline::AeroDiffusionPipeline::fit`]
//! instantiates — and replays every matmul, convolution, reshape, and
//! broadcast symbolically. A misconfigured stack is reported with stable
//! `ADxxxx` diagnostics in seconds instead of panicking minutes into
//! training.

use crate::config::PipelineConfig;
use aero_analysis::{PipelineShapeDesc, Report, ShapeCtx};
use aero_diffusion::UnetConfig;
use aero_vision::vae::LATENT_CHANNELS;

/// The UNet configuration [`crate::pipeline::AeroDiffusionPipeline::fit`]
/// builds for `config` (kept in one place so the linter can never drift
/// from the constructor).
#[must_use]
pub fn unet_config(config: &PipelineConfig) -> UnetConfig {
    UnetConfig {
        in_channels: LATENT_CHANNELS,
        base_channels: config.unet_channels,
        cond_dim: config.cond_dim(),
        time_embed_dim: 32,
        cond_tokens: 3,
        spatial_cond_cells: (config.vision.image_size / 8) * (config.vision.image_size / 8),
    }
}

/// The shape description of the full pipeline `config` would realise.
#[must_use]
pub fn pipeline_desc(config: &PipelineConfig) -> PipelineShapeDesc {
    let latent_side = config.vision.image_size / 4;
    PipelineShapeDesc::new(&config.vision, &unet_config(config), latent_side)
}

/// Statically validates `config`, returning the full diagnostic report.
#[must_use]
pub fn lint_config(config: &PipelineConfig) -> Report {
    let mut ctx = ShapeCtx::new();
    pipeline_desc(config).check(&mut ctx);
    ctx.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_presets_lint_clean() {
        for (name, config) in [
            ("paper", PipelineConfig::paper()),
            ("small", PipelineConfig::small()),
            ("smoke", PipelineConfig::smoke()),
        ] {
            let report = lint_config(&config);
            assert!(report.is_clean(), "{name} preset:\n{}", report.render());
        }
    }

    #[test]
    fn broken_vision_geometry_is_rejected() {
        let mut config = PipelineConfig::smoke();
        config.vision.image_size = 30; // not divisible by 4
        let report = lint_config(&config);
        assert!(!report.is_clean(), "expected diagnostics:\n{}", report.render());
    }
}
