//! Pre-flight static validation of a [`PipelineConfig`].
//!
//! [`lint_config`] builds the [`aero_analysis::PipelineShapeDesc`] the
//! pipeline constructor would realise — the same vision geometry, the
//! same `C = [C_xg; C_g; f̂_X]` condition concatenation, and the exact
//! [`UnetConfig`] that [`crate::pipeline::AeroDiffusionPipeline::fit`]
//! instantiates — and replays every matmul, convolution, reshape, and
//! broadcast symbolically. A misconfigured stack is reported with stable
//! `ADxxxx` diagnostics in seconds instead of panicking minutes into
//! training.

use crate::config::PipelineConfig;
use aero_analysis::{PipelineShapeDesc, Report, ShapeCtx};

pub use aero_analysis::{
    lint_backend_callsites, lint_deprecated_condition_api, lint_kernel_callsites,
    lint_panicking_callsites, lint_source_all, Baseline, BaselineDiff,
};
use aero_diffusion::UnetConfig;
use aero_vision::vae::LATENT_CHANNELS;

/// The UNet configuration [`crate::pipeline::AeroDiffusionPipeline::fit`]
/// builds for `config` (kept in one place so the linter can never drift
/// from the constructor).
#[must_use]
pub fn unet_config(config: &PipelineConfig) -> UnetConfig {
    UnetConfig {
        in_channels: LATENT_CHANNELS,
        base_channels: config.unet_channels,
        cond_dim: config.cond_dim(),
        time_embed_dim: 32,
        cond_tokens: 3,
        spatial_cond_cells: (config.vision.image_size / 8) * (config.vision.image_size / 8),
    }
}

/// The shape description of the full pipeline `config` would realise.
#[must_use]
pub fn pipeline_desc(config: &PipelineConfig) -> PipelineShapeDesc {
    let latent_side = config.vision.image_size / 4;
    PipelineShapeDesc::new(&config.vision, &unet_config(config), latent_side)
}

/// Statically validates `config`, returning the full diagnostic report.
#[must_use]
pub fn lint_config(config: &PipelineConfig) -> Report {
    let mut ctx = ShapeCtx::new();
    pipeline_desc(config).check(&mut ctx);
    ctx.into_report()
}

/// Self-checks the checkpoint/persistence integrity machinery: the CRC32
/// implementation against the IEEE 802.3 check vector, the manifest text
/// round-trip, and rejection of unsupported manifest versions. A build
/// whose integrity primitives are broken would silently accept corrupt
/// checkpoints, so `lint --all` verifies them up front.
#[must_use]
pub fn lint_checkpoint() -> Report {
    use aero_analysis::DiagCode;
    use aero_nn::integrity::{crc32, IntegrityError, Manifest, ManifestEntry, MANIFEST_VERSION};
    let mut ctx = ShapeCtx::new();
    ctx.scoped("checkpoint", |ctx| {
        ctx.require(
            crc32(b"123456789") == 0xCBF4_3926,
            DiagCode::InvalidConfig,
            "crc32 must match the IEEE 802.3 check vector 0xCBF43926",
        );
        ctx.require(crc32(b"") == 0, DiagCode::InvalidConfig, "crc32 of empty input must be 0");
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            entries: vec![ManifestEntry { name: "unet.aero".into(), crc32: 0xDEAD_BEEF, len: 42 }],
        };
        ctx.require(
            matches!(Manifest::parse(&manifest.render()), Ok(m) if m == manifest),
            DiagCode::InvalidConfig,
            "manifest text form must round-trip losslessly",
        );
        ctx.require(
            matches!(
                Manifest::parse("version=999\n"),
                Err(IntegrityError::VersionMismatch { found: 999, .. })
            ),
            DiagCode::InvalidConfig,
            "unsupported manifest versions must be rejected as VersionMismatch",
        );
        ctx.require(
            matches!(Manifest::parse("version=1\nbadline"), Err(IntegrityError::Malformed(_))),
            DiagCode::InvalidConfig,
            "truncated manifest entries must be rejected as Malformed",
        );
    });
    ctx.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_presets_lint_clean() {
        for (name, config) in [
            ("paper", PipelineConfig::paper()),
            ("small", PipelineConfig::small()),
            ("smoke", PipelineConfig::smoke()),
        ] {
            let report = lint_config(&config);
            assert!(report.is_clean(), "{name} preset:\n{}", report.render());
        }
    }

    #[test]
    fn checkpoint_integrity_machinery_lints_clean() {
        let report = lint_checkpoint();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn broken_vision_geometry_is_rejected() {
        let mut config = PipelineConfig::smoke();
        config.vision.image_size = 30; // not divisible by 4
        let report = lint_config(&config);
        assert!(!report.is_clean(), "expected diagnostics:\n{}", report.render());
    }
}
