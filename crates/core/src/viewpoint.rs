//! Viewpoint-transition and nighttime synthesis (Table III / Fig. 5).

use crate::pipeline::AeroDiffusionPipeline;
use aero_scene::{DatasetItem, Image, TimeOfDay, Viewpoint};
use rand::Rng;

/// The result of one viewpoint-transition synthesis.
#[derive(Debug, Clone)]
pub struct ViewpointTransition {
    /// The reference description `G_i`.
    pub reference_description: String,
    /// The requirement / target description `G'_i`.
    pub target_description: String,
    /// The requested camera.
    pub target_viewpoint: Viewpoint,
    /// The generated image.
    pub image: Image,
}

/// Synthesizes the scene of `item` from a new viewpoint, following the
/// Table III protocol: the target description `G'` re-narrates the scene
/// from the requested camera, and the diffusion model is conditioned on
/// `[BLIP(X, G); CLIP(G'); f̂_X]`.
pub fn viewpoint_transition<R: Rng + ?Sized>(
    pipeline: &AeroDiffusionPipeline,
    item: &DatasetItem,
    target: Viewpoint,
    rng: &mut R,
) -> ViewpointTransition {
    let llm = pipeline.llm();
    let reference_description = llm.describe(&item.spec, &pipeline.prompt(), rng);
    let target_description = llm.describe_with_viewpoint(&item.spec, target, rng);
    let image = pipeline.generate_with_description(item, &target_description, rng);
    ViewpointTransition {
        reference_description,
        target_description,
        target_viewpoint: target,
        image,
    }
}

/// The result of one nighttime synthesis (Fig. 5).
#[derive(Debug, Clone)]
pub struct NightSynthesis {
    /// The lighting-detailed night description.
    pub description: String,
    /// The generated image.
    pub image: Image,
    /// Mean luminance of the generated image (diagnostic).
    pub luminance: f32,
}

/// Generates a nighttime rendition of `item`'s scene with explicit
/// lighting detail in the target description.
pub fn night_synthesis<R: Rng + ?Sized>(
    pipeline: &AeroDiffusionPipeline,
    item: &DatasetItem,
    rng: &mut R,
) -> NightSynthesis {
    let llm = pipeline.llm();
    let description = llm.describe_at_night(&item.spec, rng);
    let image = pipeline.generate_with_description(item, &description, rng);
    let luminance = image.mean_luminance();
    NightSynthesis { description, image, luminance }
}

/// Ground-truth night render of the same scene (for comparison rows).
pub fn night_reference(item: &DatasetItem, image_size: usize) -> Image {
    let spec = item.spec.with_time(TimeOfDay::Night);
    aero_scene::Rasterizer::new(image_size, image_size).render(&spec).image
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fitted() -> (AeroDiffusionPipeline, aero_scene::AerialDataset) {
        let cfg = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 4,
            image_size: cfg.vision.image_size,
            seed: 31,
            generator: SceneGeneratorConfig {
                min_objects: 4,
                max_objects: 8,
                night_probability: 0.0,
            },
        });
        (AeroDiffusionPipeline::fit(&ds, cfg, 32), ds)
    }

    #[test]
    fn transition_produces_distinct_descriptions() {
        let (pipeline, ds) = fitted();
        let mut rng = StdRng::seed_from_u64(1);
        let target = Viewpoint { altitude: 0.4, pitch_deg: 45.0, heading_deg: 15.0 };
        let result = viewpoint_transition(&pipeline, &ds.items[0], target, &mut rng);
        assert_ne!(result.reference_description, result.target_description);
        assert!(result.target_description.contains("low altitude"));
        assert_eq!(result.image.width(), pipeline.config().vision.image_size);
    }

    #[test]
    fn night_synthesis_mentions_night() {
        let (pipeline, ds) = fitted();
        let mut rng = StdRng::seed_from_u64(2);
        let result = night_synthesis(&pipeline, &ds.items[0], &mut rng);
        assert!(result.description.contains("nighttime"));
        assert!(result.luminance.is_finite());
    }

    #[test]
    fn night_reference_darker_than_day_render() {
        let (_, ds) = fitted();
        let item = &ds.items[0];
        let day = item.rendered.image.mean_luminance();
        let night = night_reference(item, item.rendered.image.width()).mean_luminance();
        assert!(night < day, "night {night} vs day {day}");
    }
}
