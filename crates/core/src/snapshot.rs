//! In-memory snapshots of trained pipelines.
//!
//! [`AeroDiffusionPipeline`] weights live in `aero-nn` autograd handles
//! (`Rc<RefCell<…>>`), which cannot cross threads. A [`PipelineSnapshot`]
//! captures everything a replica needs — configuration, metadata, the
//! vocabulary, and every module's weights in the `aero-nn` binary codec —
//! as plain owned data that *is* `Send + Sync`. The serving worker pool
//! shares one snapshot behind an `Arc` and each worker hydrates its own
//! thread-local replica, the standard immutable-weights/many-replicas
//! deployment shape.

use crate::ablation::AblationVariant;
use crate::condition::ConditionNetwork;
use crate::config::PipelineConfig;
use crate::persist::{vocab_from_words, PersistError, PipelineMeta};
use crate::pipeline::AeroDiffusionPipeline;
use crate::substrate::SubstrateBundle;
use aero_diffusion::{CondUnet, DiffusionTrainer};
use aero_nn::serialize::{decode_tensors, encode_params, load_into_params, LoadWeightsError};
use aero_nn::{Module, Var};
use aero_tensor::parallel::{self, ParallelConfig};
use aero_text::llm::LlmProvider;
use aero_text::tokenizer::Tokenizer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dependency-free, thread-safe copy of a trained pipeline's state.
///
/// Besides weights and configuration, a snapshot carries the
/// [`ParallelConfig`] that was active when it was captured, so serving
/// workers hydrating replicas run the tensor kernels under the same
/// thread policy and compute backend as the training process. The
/// policy is purely a performance knob — kernel outputs are
/// bit-identical at any thread count and under either backend — so
/// replicas stay byte-identical either way; carrying it just keeps the
/// deployment's performance behaviour uniform.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSnapshot {
    config: PipelineConfig,
    meta: PipelineMeta,
    parallel: ParallelConfig,
    vocab: Vec<String>,
    clip: Vec<u8>,
    vae: Vec<u8>,
    detector: Vec<u8>,
    condition: Vec<u8>,
    unet: Vec<u8>,
}

fn params_bytes(params: &[Var]) -> Vec<u8> {
    encode_params(params).to_vec()
}

fn restore(params: &[Var], blob: &[u8]) -> Result<(), LoadWeightsError> {
    load_into_params(params, decode_tensors(blob)?)
}

/// The five weight-carrying modules of a snapshot, in the order
/// [`PipelineSnapshot::module_blobs`] yields them and
/// [`PipelineSnapshot::from_parts`] expects them.
pub const MODULE_NAMES: [&str; 5] = ["clip", "vae", "detector", "condition", "unet"];

impl PipelineSnapshot {
    /// The configuration the snapshot was trained with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The dataset-independent metadata the snapshot carries.
    pub fn meta(&self) -> &PipelineMeta {
        &self.meta
    }

    /// The vocabulary words in id order.
    pub fn vocab_words(&self) -> &[String] {
        &self.vocab
    }

    /// Every module's serialized weight blob, named, in
    /// [`MODULE_NAMES`] order. This is the model-artifact export path.
    pub fn module_blobs(&self) -> [(&'static str, &[u8]); 5] {
        [
            ("clip", self.clip.as_slice()),
            ("vae", self.vae.as_slice()),
            ("detector", self.detector.as_slice()),
            ("condition", self.condition.as_slice()),
            ("unet", self.unet.as_slice()),
        ]
    }

    /// Reassembles a snapshot from its parts — the model-artifact
    /// hydration path. `modules` must be the weight blobs in
    /// [`MODULE_NAMES`] order; nothing is decoded here, so a corrupted
    /// blob surfaces later, from [`PipelineSnapshot::hydrate`], as a
    /// typed error.
    #[must_use]
    pub fn from_parts(
        config: PipelineConfig,
        meta: PipelineMeta,
        parallel: ParallelConfig,
        vocab: Vec<String>,
        modules: [Vec<u8>; 5],
    ) -> PipelineSnapshot {
        let [clip, vae, detector, condition, unet] = modules;
        PipelineSnapshot { config, meta, parallel, vocab, clip, vae, detector, condition, unet }
    }

    /// The ablation variant the snapshot was trained as.
    pub fn variant(&self) -> AblationVariant {
        self.meta.variant
    }

    /// The caption provider the snapshot was trained with.
    pub fn provider(&self) -> LlmProvider {
        self.meta.provider
    }

    /// The kernel thread policy and compute backend carried by the
    /// snapshot.
    pub fn parallel(&self) -> ParallelConfig {
        self.parallel
    }

    /// A copy carrying a different kernel thread policy or compute
    /// backend. Replicas hydrated from it generate byte-identical
    /// output regardless — this changes wall-clock behaviour only.
    #[must_use]
    pub fn with_parallel(&self, parallel: ParallelConfig) -> PipelineSnapshot {
        let mut copy = self.clone();
        copy.parallel = parallel;
        copy
    }

    /// Total size of the serialized weight blobs in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.clip.len()
            + self.vae.len()
            + self.detector.len()
            + self.condition.len()
            + self.unet.len()
    }

    /// Reconstructs a working pipeline replica from the snapshot. The
    /// replica generates byte-identical output to the pipeline that was
    /// snapshotted.
    ///
    /// # Errors
    ///
    /// Fails if the stored vocabulary or a weight blob does not decode
    /// against the snapshot's own configuration (possible only if the
    /// snapshot bytes were corrupted in transit).
    pub fn hydrate(&self) -> Result<AeroDiffusionPipeline, PersistError> {
        // Adopt the snapshot's kernel thread policy and compute backend
        // on the hydrating thread: serving workers call hydrate() on
        // their own thread, so every replica runs under the policy the
        // snapshot carries.
        parallel::adopt_thread_policy(self.parallel);
        let tokenizer = Tokenizer::new(vocab_from_words(&self.vocab)?, self.meta.max_len);
        let mut bundle = SubstrateBundle::new_untrained(tokenizer, &self.config, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let vocab = bundle.tokenizer.vocab().len();
        let condition = ConditionNetwork::with_components(
            vocab,
            &self.config,
            self.meta.variant.uses_blip(),
            self.meta.variant.uses_object_detection(),
            &mut rng,
        );
        let unet = CondUnet::new(crate::lint::unet_config(&self.config), &mut rng);
        restore(&bundle.clip.params(), &self.clip)?;
        restore(&bundle.vae.params(), &self.vae)?;
        restore(&bundle.detector.params(), &self.detector)?;
        restore(&condition.params(), &self.condition)?;
        restore(&unet.params(), &self.unet)?;
        bundle.vae.set_latent_scale(self.meta.latent_scale);
        Ok(AeroDiffusionPipeline {
            config: self.config,
            bundle,
            condition,
            unet,
            trainer: DiffusionTrainer::new(self.config.diffusion),
            provider: self.meta.provider,
            variant: self.meta.variant,
        })
    }

    /// A copy whose UNet weight blob is truncated mid-stream — a snapshot
    /// guaranteed to fail [`PipelineSnapshot::hydrate`]. Exists for the
    /// serving fault-injection harness: worker-hydration failure paths
    /// need a realistic corrupt snapshot to exercise.
    #[must_use]
    pub fn with_truncated_unet(&self) -> PipelineSnapshot {
        let mut copy = self.clone();
        copy.unet.truncate(copy.unet.len() / 2);
        copy
    }
}

impl AeroDiffusionPipeline {
    /// Captures the trained pipeline as an owned, `Send + Sync` snapshot
    /// (see [`PipelineSnapshot`]).
    pub fn snapshot(&self) -> PipelineSnapshot {
        let vocab = self.bundle.tokenizer.vocab();
        PipelineSnapshot {
            config: self.config,
            parallel: ParallelConfig::with_threads(parallel::active_threads()),
            meta: PipelineMeta {
                max_len: self.bundle.tokenizer.max_len(),
                latent_scale: self.bundle.vae.latent_scale(),
                provider: self.provider,
                variant: self.variant,
            },
            vocab: (0..vocab.len()).map(|id| vocab.word(id).to_string()).collect(),
            clip: params_bytes(&self.bundle.clip.params()),
            vae: params_bytes(&self.bundle.vae.params()),
            detector: params_bytes(&self.bundle.detector.params()),
            condition: params_bytes(&self.condition.params()),
            unet: params_bytes(&self.unet.params()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshot_is_thread_safe() {
        assert_send_sync::<PipelineSnapshot>();
    }

    #[test]
    fn hydrated_replica_generates_identically() {
        let config = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 3,
            image_size: config.vision.image_size,
            seed: 31,
            generator: SceneGeneratorConfig {
                min_objects: 4,
                max_objects: 6,
                night_probability: 0.0,
            },
        });
        let pipeline = AeroDiffusionPipeline::fit(&ds, config, 17);
        let snapshot = pipeline.snapshot();
        assert!(snapshot.weight_bytes() > 0);

        // Hydrate under a *different* kernel thread policy and compute
        // backend than the one the pipeline trained with: the sharded
        // kernels are bit-exact at any width and under either backend,
        // so the replica must still match byte-for-byte.
        let swapped =
            ParallelConfig::with_threads(2).with_backend(aero_tensor::BackendKind::Reference);
        let widened = snapshot.with_parallel(swapped);
        assert_eq!(widened.parallel().threads(), 2);
        assert_eq!(widened.parallel().backend(), aero_tensor::BackendKind::Reference);
        let replica = widened.hydrate().expect("snapshot must hydrate");
        let a = pipeline.generate(&ds.items[0], &mut StdRng::seed_from_u64(5));
        let b = replica.generate(&ds.items[0], &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b, "replica must generate byte-identical output");
    }

    #[test]
    fn truncated_unet_snapshot_fails_hydration_typed() {
        let config = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 2,
            image_size: config.vision.image_size,
            seed: 33,
            generator: SceneGeneratorConfig::default(),
        });
        let pipeline = AeroDiffusionPipeline::fit(&ds, config, 19);
        let bad = pipeline.snapshot().with_truncated_unet();
        match bad.hydrate() {
            Err(PersistError::Weights(_)) => {}
            other => panic!("expected a typed weight failure, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_survives_a_thread_hop() {
        let config = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 2,
            image_size: config.vision.image_size,
            seed: 32,
            generator: SceneGeneratorConfig::default(),
        });
        let pipeline = AeroDiffusionPipeline::fit(&ds, config, 18);
        let snapshot = pipeline.snapshot();
        let expect = pipeline.generate(&ds.items[0], &mut StdRng::seed_from_u64(9));
        let item = ds.items[0].clone();
        let got = std::thread::spawn(move || {
            let replica = snapshot.hydrate().expect("hydrate on worker thread");
            replica.generate(&item, &mut StdRng::seed_from_u64(9))
        })
        .join()
        .expect("worker thread");
        assert_eq!(expect, got);
    }
}
