//! Persistence of trained pipelines.
//!
//! A trained [`AeroDiffusionPipeline`](crate::pipeline::AeroDiffusionPipeline)
//! is written as a directory:
//!
//! ```text
//! <dir>/
//!   vocab.txt        one vocabulary word per line (ids are line order)
//!   meta.txt         key=value lines: max_len, latent_scale, provider, variant
//!   clip.aero        CLIP weights        (aero-nn binary weight format)
//!   vae.aero         VAE weights
//!   detector.aero    YOLO-lite weights
//!   condition.aero   condition-network weights
//!   unet.aero        UNet weights
//! ```
//!
//! Loading reconstructs the models from a [`PipelineConfig`] and the
//! stored vocabulary, then restores every weight tensor; the config must
//! match the one the pipeline was trained with.
//!
//! Every file is written atomically (tmp + rename) and the directory
//! carries a `manifest.txt` recording a format version plus the CRC32
//! and length of each blob. Loads verify the manifest *before* decoding
//! anything, so a bit flip surfaces as [`PersistError::Corrupt`] naming
//! the damaged file rather than as a garbage model. Directories written
//! before manifests existed (no `manifest.txt`) still load.

use crate::ablation::AblationVariant;
use crate::config::PipelineConfig;
use aero_nn::integrity::{write_atomic, IntegrityError, Manifest};
use aero_nn::serialize::{encode_params, load_params, LoadWeightsError};
use aero_text::llm::LlmProvider;
use aero_text::tokenizer::{Tokenizer, Vocabulary};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// The on-disk pipeline format version, shared by every persistence
/// layer: the directory manifest (`manifest.txt`), and the single-file
/// model artifact header in `aero-model`. Keeping one typed constant
/// means the two layers cannot silently diverge — bump it here and both
/// readers reject the other's future files with a typed
/// [`PersistError::VersionMismatch`].
pub const PIPELINE_FORMAT_VERSION: u32 = aero_nn::integrity::MANIFEST_VERSION;

/// Every file a pipeline directory contains, in manifest order.
pub(crate) const PIPELINE_FILES: [&str; 8] = [
    "vocab.txt",
    "meta.txt",
    "config.txt",
    "clip.aero",
    "vae.aero",
    "detector.aero",
    "condition.aero",
    "unet.aero",
];

/// Error loading or saving a pipeline directory.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A weight blob failed to decode or mismatch the models.
    Weights(LoadWeightsError),
    /// The metadata file is malformed.
    Meta(String),
    /// A stored blob fails its manifest checksum or length.
    Corrupt {
        /// The file that failed verification.
        file: String,
        /// What exactly mismatched.
        detail: String,
    },
    /// The directory was written by an unsupported format version.
    VersionMismatch {
        /// The version recorded on disk.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o failure: {e}"),
            PersistError::Weights(e) => write!(f, "weight failure: {e}"),
            PersistError::Meta(d) => write!(f, "malformed metadata: {d}"),
            PersistError::Corrupt { file, detail } => {
                write!(f, "corrupt pipeline file {file}: {detail}")
            }
            PersistError::VersionMismatch { found, supported } => {
                write!(
                    f,
                    "pipeline format version {found} unsupported (this build reads {supported})"
                )
            }
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Weights(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<LoadWeightsError> for PersistError {
    fn from(e: LoadWeightsError) -> Self {
        PersistError::Weights(e)
    }
}

impl From<aero_diffusion::CheckpointError> for PersistError {
    fn from(e: aero_diffusion::CheckpointError) -> Self {
        use aero_diffusion::CheckpointError;
        match e {
            CheckpointError::Io(io) => PersistError::Io(io),
            CheckpointError::Integrity(i) => i.into(),
            CheckpointError::Weights(w) => PersistError::Weights(w),
            CheckpointError::Meta(d) => PersistError::Meta(d),
        }
    }
}

impl From<IntegrityError> for PersistError {
    fn from(e: IntegrityError) -> Self {
        match e {
            IntegrityError::Io(io) => PersistError::Io(io),
            IntegrityError::Malformed(d) => PersistError::Meta(format!("manifest: {d}")),
            IntegrityError::VersionMismatch { found, supported } => {
                PersistError::VersionMismatch { found, supported }
            }
            IntegrityError::Corrupt { file, detail } => PersistError::Corrupt { file, detail },
        }
    }
}

/// Writes `dir/manifest.txt` covering every pipeline file. Called last in
/// a save, after all blobs are on disk.
pub(crate) fn write_manifest(dir: &Path) -> Result<(), PersistError> {
    Manifest::for_files(dir, &PIPELINE_FILES)?.write(dir)?;
    Ok(())
}

/// Verifies the directory against its manifest before anything is
/// decoded. A directory without a manifest predates this format and is
/// accepted as-is (legacy load path).
pub(crate) fn verify_manifest(dir: &Path) -> Result<(), PersistError> {
    if !dir.join("manifest.txt").exists() {
        return Ok(());
    }
    let manifest = Manifest::read(dir)?;
    manifest.verify_dir(dir)?;
    Ok(())
}

/// The dataset-independent state restored on load.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineMeta {
    /// Token sequence length.
    pub max_len: usize,
    /// VAE latent scale.
    pub latent_scale: f32,
    /// Caption provider.
    pub provider: LlmProvider,
    /// Ablation variant.
    pub variant: AblationVariant,
}

pub(crate) fn write_vocab(vocab: &Vocabulary, path: &Path) -> Result<(), PersistError> {
    let mut out = String::new();
    for id in 0..vocab.len() {
        out.push_str(vocab.word(id));
        out.push('\n');
    }
    write_atomic(path, out.as_bytes())?;
    Ok(())
}

/// Rebuilds a [`Vocabulary`] with identical ids from its word list: the
/// non-special words are fed with descending artificial frequency so
/// `Vocabulary::build` preserves order. Shared by the on-disk loader and
/// the in-memory [`crate::snapshot::PipelineSnapshot`] replica path.
pub(crate) fn vocab_from_words<S: AsRef<str>>(words: &[S]) -> Result<Vocabulary, PersistError> {
    if words.len() < 4 {
        return Err(PersistError::Meta("vocabulary too short".into()));
    }
    let mut corpus = String::new();
    let content = &words[4..];
    for (i, w) in content.iter().enumerate() {
        for _ in 0..(content.len() - i) {
            corpus.push_str(w.as_ref());
            corpus.push(' ');
        }
    }
    let vocab = Vocabulary::build([corpus.as_str()], 1);
    // sanity: ids must round-trip
    for (i, w) in words.iter().enumerate() {
        if vocab.word(i) != w.as_ref() {
            return Err(PersistError::Meta(format!(
                "vocabulary order not reproducible at id {i}: {:?} vs {:?}",
                w.as_ref(),
                vocab.word(i)
            )));
        }
    }
    Ok(vocab)
}

pub(crate) fn read_tokenizer(dir: &Path, max_len: usize) -> Result<Tokenizer, PersistError> {
    let text = fs::read_to_string(dir.join("vocab.txt"))?;
    let words: Vec<&str> = text.lines().collect();
    Ok(Tokenizer::new(vocab_from_words(&words)?, max_len))
}

/// The stable on-disk tag for a caption provider, shared by `meta.txt`
/// and the model-artifact metadata section.
#[must_use]
pub fn provider_tag(provider: LlmProvider) -> &'static str {
    match provider {
        LlmProvider::KeypointAware => "keypoint",
        LlmProvider::GeminiLike => "gemini",
        LlmProvider::Gpt4oLike => "gpt4o",
        LlmProvider::BlipCaption => "blip",
    }
}

/// Parses a [`provider_tag`] back to its provider.
///
/// # Errors
///
/// Returns [`PersistError::Meta`] on an unknown tag.
pub fn parse_provider_tag(tag: &str) -> Result<LlmProvider, PersistError> {
    match tag {
        "keypoint" => Ok(LlmProvider::KeypointAware),
        "gemini" => Ok(LlmProvider::GeminiLike),
        "gpt4o" => Ok(LlmProvider::Gpt4oLike),
        "blip" => Ok(LlmProvider::BlipCaption),
        other => Err(PersistError::Meta(format!("unknown provider {other}"))),
    }
}

/// The stable on-disk tag for an ablation variant, shared by `meta.txt`
/// and the model-artifact metadata section.
#[must_use]
pub fn variant_tag(variant: AblationVariant) -> &'static str {
    match variant {
        AblationVariant::BaseSd => "base_sd",
        AblationVariant::WithBlip => "with_blip",
        AblationVariant::WithKeypointText => "with_keypoint_text",
        AblationVariant::Full => "full",
    }
}

/// Parses a [`variant_tag`] back to its variant.
///
/// # Errors
///
/// Returns [`PersistError::Meta`] on an unknown tag.
pub fn parse_variant_tag(tag: &str) -> Result<AblationVariant, PersistError> {
    match tag {
        "base_sd" => Ok(AblationVariant::BaseSd),
        "with_blip" => Ok(AblationVariant::WithBlip),
        "with_keypoint_text" => Ok(AblationVariant::WithKeypointText),
        "full" => Ok(AblationVariant::Full),
        other => Err(PersistError::Meta(format!("unknown variant {other}"))),
    }
}

pub(crate) fn write_meta(meta: &PipelineMeta, path: &Path) -> Result<(), PersistError> {
    let provider = provider_tag(meta.provider);
    let variant = variant_tag(meta.variant);
    write_atomic(
        path,
        format!(
            "max_len={}\nlatent_scale={}\nprovider={provider}\nvariant={variant}\n",
            meta.max_len, meta.latent_scale
        )
        .as_bytes(),
    )?;
    Ok(())
}

pub(crate) fn read_meta(path: &Path) -> Result<PipelineMeta, PersistError> {
    let text = fs::read_to_string(path)?;
    let mut max_len = None;
    let mut latent_scale = None;
    let mut provider = None;
    let mut variant = None;
    for line in text.lines() {
        let Some((k, v)) = line.split_once('=') else { continue };
        match k {
            "max_len" => max_len = v.parse().ok(),
            "latent_scale" => latent_scale = v.parse().ok(),
            "provider" => provider = Some(parse_provider_tag(v)?),
            "variant" => variant = Some(parse_variant_tag(v)?),
            _ => {}
        }
    }
    Ok(PipelineMeta {
        max_len: max_len.ok_or_else(|| PersistError::Meta("missing max_len".into()))?,
        latent_scale: latent_scale
            .ok_or_else(|| PersistError::Meta("missing latent_scale".into()))?,
        provider: provider.ok_or_else(|| PersistError::Meta("missing provider".into()))?,
        variant: variant.ok_or_else(|| PersistError::Meta("missing variant".into()))?,
    })
}

pub(crate) fn save_module(params: &[aero_nn::Var], path: &Path) -> Result<(), PersistError> {
    write_atomic(path, &encode_params(params))?;
    Ok(())
}

pub(crate) fn load_module(params: &[aero_nn::Var], path: &Path) -> Result<(), PersistError> {
    load_params(params, path)?;
    Ok(())
}

/// A convenience: config hash so loads against a different geometry fail
/// fast with a clear message instead of a shape mismatch deep inside.
pub(crate) fn config_fingerprint(config: &PipelineConfig) -> String {
    format!(
        "s{}d{}c{}t{}u{}",
        config.vision.image_size,
        config.vision.embed_dim,
        config.vision.base_channels,
        config.vision.max_text_len,
        config.unet_channels
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trip() {
        let dir = std::env::temp_dir().join("aero_persist_meta");
        fs::create_dir_all(&dir).unwrap();
        let meta = PipelineMeta {
            max_len: 24,
            latent_scale: 1.25,
            provider: LlmProvider::GeminiLike,
            variant: AblationVariant::WithKeypointText,
        };
        let path = dir.join("meta.txt");
        write_meta(&meta, &path).unwrap();
        assert_eq!(read_meta(&path).unwrap(), meta);
    }

    #[test]
    fn vocab_round_trip() {
        let dir = std::env::temp_dir().join("aero_persist_vocab");
        fs::create_dir_all(&dir).unwrap();
        let vocab = Vocabulary::build(["the car drives past the tree on the road"], 1);
        write_vocab(&vocab, &dir.join("vocab.txt")).unwrap();
        let tok = read_tokenizer(&dir, 10).unwrap();
        for id in 0..vocab.len() {
            assert_eq!(tok.vocab().word(id), vocab.word(id), "id {id}");
        }
    }

    #[test]
    fn meta_rejects_garbage() {
        let dir = std::env::temp_dir().join("aero_persist_bad");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("meta.txt");
        fs::write(&path, "provider=alien\n").unwrap();
        assert!(read_meta(&path).is_err());
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = config_fingerprint(&PipelineConfig::smoke());
        let b = config_fingerprint(&PipelineConfig::small());
        assert_ne!(a, b);
    }

    /// Builds a synthetic pipeline directory with every manifest-covered
    /// file present (contents are arbitrary; only integrity is under test).
    fn synthetic_pipeline_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("aero_persist_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for (i, file) in PIPELINE_FILES.iter().enumerate() {
            fs::write(dir.join(file), format!("blob-{i}-{file}")).unwrap();
        }
        write_manifest(&dir).unwrap();
        dir
    }

    #[test]
    fn single_bit_flip_in_unet_weights_is_corrupt() {
        let dir = synthetic_pipeline_dir("bitflip");
        verify_manifest(&dir).unwrap();
        let path = dir.join("unet.aero");
        let mut bytes = fs::read(&path).unwrap();
        bytes[2] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        match verify_manifest(&dir) {
            Err(PersistError::Corrupt { file, .. }) => assert_eq!(file, "unet.aero"),
            other => panic!("expected Corrupt for unet.aero, got {other:?}"),
        }
    }

    #[test]
    fn truncated_manifest_is_a_meta_error() {
        let dir = synthetic_pipeline_dir("truncated");
        let manifest = fs::read_to_string(dir.join("manifest.txt")).unwrap();
        // Cut mid-entry: the last line loses its name field.
        let cut = manifest.trim_end().rfind(' ').unwrap();
        fs::write(dir.join("manifest.txt"), &manifest[..cut]).unwrap();
        assert!(
            matches!(verify_manifest(&dir), Err(PersistError::Meta(_))),
            "a truncated manifest must surface as a Meta error"
        );
    }

    #[test]
    fn unsupported_manifest_version_is_typed() {
        let dir = synthetic_pipeline_dir("version");
        let manifest = fs::read_to_string(dir.join("manifest.txt")).unwrap();
        fs::write(dir.join("manifest.txt"), manifest.replacen("version=1", "version=9", 1))
            .unwrap();
        assert!(matches!(
            verify_manifest(&dir),
            Err(PersistError::VersionMismatch { found: 9, .. })
        ));
    }

    #[test]
    fn missing_manifest_is_accepted_as_legacy() {
        let dir = synthetic_pipeline_dir("legacy");
        fs::remove_file(dir.join("manifest.txt")).unwrap();
        verify_manifest(&dir).unwrap();
    }
}
