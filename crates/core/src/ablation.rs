//! The Table IV ablation grid.

use aero_text::prompt::PromptTemplate;

/// One row of the paper's ablation study (Table IV).
///
/// The three axes are: keypoint-aware LLM captions ("Our LLMs"), object
/// detection for feature augmentation ("OD"), and BLIP deep fusion
/// ("BLIP"). The paper's four rows form a cumulative ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AblationVariant {
    /// Row 1: fine-tuned Stable Diffusion base — naive captions, no BLIP,
    /// no object detection.
    BaseSd,
    /// Row 2: + BLIP deep text-visual fusion.
    WithBlip,
    /// Row 3: + keypoint-aware text generation.
    WithKeypointText,
    /// Row 4: + object detection / region augmentation (full model).
    Full,
}

impl AblationVariant {
    /// The paper's four rows in order.
    pub const ALL: [AblationVariant; 4] = [
        AblationVariant::BaseSd,
        AblationVariant::WithBlip,
        AblationVariant::WithKeypointText,
        AblationVariant::Full,
    ];

    /// Whether BLIP fusion is active.
    pub fn uses_blip(self) -> bool {
        !matches!(self, AblationVariant::BaseSd)
    }

    /// Whether keypoint-aware captions are used (vs the traditional
    /// prompt).
    pub fn uses_keypoint_text(self) -> bool {
        matches!(self, AblationVariant::WithKeypointText | AblationVariant::Full)
    }

    /// Whether object detection / region augmentation is active.
    pub fn uses_object_detection(self) -> bool {
        matches!(self, AblationVariant::Full)
    }

    /// The captioning prompt this variant trains with.
    pub fn prompt(self) -> PromptTemplate {
        if self.uses_keypoint_text() {
            PromptTemplate::keypoint_aware()
        } else {
            PromptTemplate::traditional()
        }
    }

    /// Display label matching the Table IV row.
    pub fn label(self) -> &'static str {
        match self {
            AblationVariant::BaseSd => "base SD",
            AblationVariant::WithBlip => "+ BLIP",
            AblationVariant::WithKeypointText => "+ BLIP + LLM text",
            AblationVariant::Full => "+ BLIP + LLM text + OD (full)",
        }
    }
}

/// A named ablation specification (variant + expected paper numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationSpec {
    /// The pipeline variant.
    pub variant: AblationVariant,
    /// FID the paper reports for this row.
    pub paper_fid: f32,
    /// PSNR the paper reports for this row.
    pub paper_psnr: f32,
    /// KID the paper reports for this row.
    pub paper_kid: f32,
}

impl AblationSpec {
    /// The paper's Table IV rows.
    pub const TABLE_IV: [AblationSpec; 4] = [
        AblationSpec {
            variant: AblationVariant::BaseSd,
            paper_fid: 132.60,
            paper_psnr: 4.80,
            paper_kid: 0.09,
        },
        AblationSpec {
            variant: AblationVariant::WithBlip,
            paper_fid: 119.13,
            paper_psnr: 4.85,
            paper_kid: 0.07,
        },
        AblationSpec {
            variant: AblationVariant::WithKeypointText,
            paper_fid: 108.23,
            paper_psnr: 4.92,
            paper_kid: 0.05,
        },
        AblationSpec {
            variant: AblationVariant::Full,
            paper_fid: 78.15,
            paper_psnr: 5.98,
            paper_kid: 0.04,
        },
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        assert!(!AblationVariant::BaseSd.uses_blip());
        assert!(AblationVariant::WithBlip.uses_blip());
        assert!(!AblationVariant::WithBlip.uses_keypoint_text());
        assert!(AblationVariant::WithKeypointText.uses_blip());
        assert!(AblationVariant::WithKeypointText.uses_keypoint_text());
        assert!(!AblationVariant::WithKeypointText.uses_object_detection());
        assert!(AblationVariant::Full.uses_object_detection());
    }

    #[test]
    fn paper_numbers_improve_monotonically() {
        for w in AblationSpec::TABLE_IV.windows(2) {
            assert!(w[1].paper_fid < w[0].paper_fid);
            assert!(w[1].paper_kid <= w[0].paper_kid);
        }
    }

    #[test]
    fn prompts_match_text_axis() {
        assert_eq!(AblationVariant::BaseSd.prompt(), PromptTemplate::traditional());
        assert_eq!(AblationVariant::Full.prompt(), PromptTemplate::keypoint_aware());
    }
}
