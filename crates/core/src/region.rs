//! Region-level feature augmentation (Section IV-B of the paper).
//!
//! Detected regions of interest are cropped and resized "to match the
//! dimensions of the original image", encoded, aligned with the text
//! embeddings of their class labels through cross-attention, concatenated
//! with the whole-image feature into
//! `F = [f_X; f_{X,1}; …; f_{X,R}]`, and fused by multi-head
//! self-attention (Eqs. 2–3) into the augmented representation `f̂_X`.

use crate::config::PipelineConfig;
use aero_nn::layers::{Embedding, MultiHeadAttention};
use aero_nn::{Module, Var};
use aero_scene::{Annotation, Image, ObjectClass};
use aero_vision::encoders::ImageEncoder;
use rand::Rng;

/// The feature-augmentation module.
#[derive(Debug, Clone)]
pub struct RegionAugmenter {
    encoder: ImageEncoder,
    label_embed: Embedding,
    cross_attn: MultiHeadAttention,
    self_attn: MultiHeadAttention,
    max_rois: usize,
    image_size: usize,
}

impl RegionAugmenter {
    /// Creates an untrained augmenter.
    pub fn new<R: Rng + ?Sized>(config: &PipelineConfig, rng: &mut R) -> Self {
        let d = config.vision.embed_dim;
        RegionAugmenter {
            encoder: ImageEncoder::new(config.vision, rng),
            label_embed: Embedding::new(ObjectClass::ALL.len(), d, rng),
            cross_attn: MultiHeadAttention::new(d, 2.min(d / 4).max(1), rng),
            self_attn: MultiHeadAttention::new(d, 2.min(d / 4).max(1), rng),
            max_rois: config.max_rois,
            image_size: config.vision.image_size,
        }
    }

    /// Maximum ROIs consumed per image.
    pub fn max_rois(&self) -> usize {
        self.max_rois
    }

    /// Augmented feature `f̂_X` for one image: `[1, d]`.
    ///
    /// ROIs beyond `max_rois` are ignored (callers should pass them
    /// ordered by confidence). With no ROIs the whole-image feature alone
    /// flows through the self-attention stage, so the module degrades
    /// gracefully when the detector finds nothing.
    pub fn augment(&self, image: &Image, rois: &[Annotation]) -> Var {
        let s = self.image_size;
        let d = self.encoder.config().embed_dim;
        let full = Var::constant(image.resize(s, s).to_tensor().reshape(&[1, 3, s, s]));
        let f_x = self.encoder.embed(&full); // [1, d]

        let used: Vec<&Annotation> = rois.iter().take(self.max_rois).collect();
        let mut tokens: Vec<Var> = vec![f_x.reshape(&[1, 1, d])];
        if !used.is_empty() {
            // Region features f_{X,r}: crop, resize to full resolution,
            // re-encode.
            let mut region_feats: Vec<Var> = Vec::with_capacity(used.len());
            let mut label_ids: Vec<usize> = Vec::with_capacity(used.len());
            for ann in &used {
                let crop = image.crop_resize(&ann.bbox, s, s);
                let cv = Var::constant(crop.to_tensor().reshape(&[1, 3, s, s]));
                region_feats.push(self.encoder.embed(&cv).reshape(&[1, 1, d]));
                label_ids.push(ann.class.id());
            }
            let refs: Vec<&Var> = region_feats.iter().collect();
            let regions = Var::concat(&refs, 1); // [1, R, d]
            let labels = self.label_embed.forward(&label_ids).reshape(&[1, used.len(), d]);
            // Cross-modal alignment: visual region features attend their
            // label text embeddings.
            let aligned = regions.add(&self.cross_attn.forward(&regions, &labels));
            tokens.push(aligned);
        }
        let refs: Vec<&Var> = tokens.iter().collect();
        let f = Var::concat(&refs, 1); // [1, 1+R, d]
                                       // Multi-head self-attention over the aggregated feature set (Eq. 2).
        let fused = f.add(&self.self_attn.forward(&f, &f));
        // Pool to the augmented image representation.
        fused.mean_axis_keepdim(1).reshape(&[1, d])
    }

    /// Batched augmentation: one `[n, d]` output for `n` images.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn augment_batch(&self, items: &[(&Image, &[Annotation])]) -> Var {
        assert!(!items.is_empty(), "augment_batch needs at least one item");
        let outs: Vec<Var> = items.iter().map(|(img, rois)| self.augment(img, rois)).collect();
        let refs: Vec<&Var> = outs.iter().collect();
        Var::concat(&refs, 0)
    }
}

impl Module for RegionAugmenter {
    fn params(&self) -> Vec<Var> {
        let mut p = self.encoder.params();
        p.extend(self.label_embed.params());
        p.extend(self.cross_attn.params());
        p.extend(self.self_attn.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{build_dataset, BBox, DatasetConfig, SceneGeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (RegionAugmenter, aero_scene::AerialDataset, PipelineConfig) {
        let cfg = PipelineConfig::smoke();
        let mut rng = StdRng::seed_from_u64(1);
        let aug = RegionAugmenter::new(&cfg, &mut rng);
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 3,
            image_size: cfg.vision.image_size,
            seed: 2,
            generator: SceneGeneratorConfig {
                min_objects: 5,
                max_objects: 9,
                night_probability: 0.0,
            },
        });
        (aug, ds, cfg)
    }

    #[test]
    fn output_shape_with_and_without_rois() {
        let (aug, ds, cfg) = setup();
        let item = &ds.items[0];
        let with = aug.augment(&item.rendered.image, &item.rendered.boxes);
        assert_eq!(with.shape(), vec![1, cfg.vision.embed_dim]);
        let without = aug.augment(&item.rendered.image, &[]);
        assert_eq!(without.shape(), vec![1, cfg.vision.embed_dim]);
    }

    #[test]
    fn rois_change_the_representation() {
        let (aug, ds, _) = setup();
        let item = &ds.items[0];
        assert!(!item.rendered.boxes.is_empty());
        let with = aug.augment(&item.rendered.image, &item.rendered.boxes).to_tensor();
        let without = aug.augment(&item.rendered.image, &[]).to_tensor();
        assert!(with.sub(&without).abs().max() > 1e-6, "ROIs must influence f̂");
    }

    #[test]
    fn label_identity_matters() {
        // Same boxes, different labels -> different augmented features
        // (the cross-attention consumes label embeddings).
        let (aug, ds, _) = setup();
        let item = &ds.items[0];
        let boxes =
            vec![Annotation { class: ObjectClass::Car, bbox: BBox::new(2.0, 2.0, 8.0, 8.0) }];
        let relabeled =
            vec![Annotation { class: ObjectClass::Bus, bbox: BBox::new(2.0, 2.0, 8.0, 8.0) }];
        let a = aug.augment(&item.rendered.image, &boxes).to_tensor();
        let b = aug.augment(&item.rendered.image, &relabeled).to_tensor();
        assert!(a.sub(&b).abs().max() > 1e-6);
    }

    #[test]
    fn max_rois_caps_work() {
        let (aug, ds, cfg) = setup();
        let item = &ds.items[0];
        let many: Vec<Annotation> = item.rendered.boxes.iter().cycle().take(20).copied().collect();
        let out = aug.augment(&item.rendered.image, &many);
        assert_eq!(out.shape(), vec![1, cfg.vision.embed_dim]);
    }

    #[test]
    fn batch_matches_individual() {
        let (aug, ds, _) = setup();
        let a = &ds.items[0];
        let b = &ds.items[1];
        let batch = aug
            .augment_batch(&[
                (&a.rendered.image, a.rendered.boxes.as_slice()),
                (&b.rendered.image, b.rendered.boxes.as_slice()),
            ])
            .to_tensor();
        let ia = aug.augment(&a.rendered.image, &a.rendered.boxes).to_tensor();
        assert!(batch.narrow(0, 0, 1).sub(&ia).abs().max() < 1e-6);
    }

    #[test]
    fn gradients_flow_into_augmenter() {
        let (aug, ds, _) = setup();
        let item = &ds.items[0];
        aug.augment(&item.rendered.image, &item.rendered.boxes).sum().backward();
        let with_grad = aug.params().iter().filter(|p| p.grad().is_some()).count();
        // the global-proj path is used; only the patch head may be unused
        assert!(aug.params().len() - with_grad <= 2, "{with_grad}/{}", aug.params().len());
    }
}
