//! The typed task/conditioning API.
//!
//! Every generation workload — plain text-to-image, cross-view
//! translation with a homography prior, keypoint-box inpainting, and the
//! super-resolution cascade — is described by one [`TaskSpec`] value.
//! The pipeline lowers a spec to a [`ConditionSource`] (the image, source
//! caption `G`, target description `G'`, and region set that feed
//! `ConditionNetwork::build_batch`) and encodes it with
//! `AeroDiffusionPipeline::encode_task`; serving derives its cache and
//! router keys from [`TaskSpec::kind`] and [`TaskSpec::source_digest`] so
//! two requests share an encoded condition only when every conditioning
//! input matches.
//!
//! The text-to-image variant carries the same reference item + caption
//! pair the old positional `encode_condition(item, caption_g, g_prime)`
//! took, so routing it through the task API is bit-identical to the old
//! path — pinned by tests and the serve byte-compare smoke.

use aero_scene::{Annotation, DatasetItem, Homography, Image};

/// Discriminant of a [`TaskSpec`], used in cache/router keys and the
/// serve/CLI `task` vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Plain text-to-image generation.
    Text,
    /// Cross-view translation of a source image.
    View,
    /// Keypoint-box inpainting of a source image.
    Inpaint,
    /// Super-resolution of a low-resolution base image.
    SuperRes,
}

impl TaskKind {
    /// All kinds, in canonical order.
    pub const ALL: [TaskKind; 4] =
        [TaskKind::Text, TaskKind::View, TaskKind::Inpaint, TaskKind::SuperRes];

    /// Stable wire name (`task` field of serve requests, CLI `--task`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TaskKind::Text => "text",
            TaskKind::View => "view",
            TaskKind::Inpaint => "inpaint",
            TaskKind::SuperRes => "superres",
        }
    }

    /// Parses a wire name back to a kind.
    #[must_use]
    pub fn parse(s: &str) -> Option<TaskKind> {
        TaskKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// One fully specified generation task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskSpec {
    /// Text-to-image: condition on a reference item, its source caption
    /// `G`, and a target description `G'` (the pre-task positional
    /// triple, now typed).
    TextToImage {
        /// Reference dataset item supplying the conditioning image.
        reference: Box<DatasetItem>,
        /// Source caption `G` describing the reference.
        caption_g: String,
        /// Target description `G'` steering generation.
        prompt: String,
    },
    /// Cross-view translation: the source image is warped by the
    /// homography (derived from the parametric drone cameras) before
    /// encoding, HawkI-style.
    ViewTranslation {
        /// Source-view image.
        source: Image,
        /// Source→target re-projection prior.
        homography: Homography,
        /// Target-view description.
        prompt: String,
    },
    /// Keypoint-box inpainting: only latent cells under the region boxes
    /// are re-denoised; everything else is pinned to the source latent.
    Inpaint {
        /// Image to edit.
        source: Image,
        /// Keypoint boxes (with class labels) to re-draw.
        regions: Vec<Annotation>,
        /// Description of the desired content.
        prompt: String,
    },
    /// Super-resolution: a low-resolution base image conditions a
    /// full-resolution denoise (the second stage of the RSDiff-style
    /// cascade; `AeroDiffusionPipeline::super_res_cascade` chains a
    /// text-to-image draft into this variant).
    SuperResolve {
        /// Low-resolution base image (any size; resized for encoding).
        base: Image,
        /// Description of the scene.
        prompt: String,
    },
}

impl TaskSpec {
    /// Text-to-image task from the old positional triple.
    #[must_use]
    pub fn text(reference: &DatasetItem, caption_g: &str, prompt: &str) -> TaskSpec {
        TaskSpec::TextToImage {
            reference: Box::new(reference.clone()),
            caption_g: caption_g.to_string(),
            prompt: prompt.to_string(),
        }
    }

    /// Cross-view translation task.
    #[must_use]
    pub fn view(source: Image, homography: Homography, prompt: &str) -> TaskSpec {
        TaskSpec::ViewTranslation { source, homography, prompt: prompt.to_string() }
    }

    /// Keypoint-box inpainting task.
    #[must_use]
    pub fn inpaint(source: Image, regions: Vec<Annotation>, prompt: &str) -> TaskSpec {
        TaskSpec::Inpaint { source, regions, prompt: prompt.to_string() }
    }

    /// Super-resolution task.
    #[must_use]
    pub fn superres(base: Image, prompt: &str) -> TaskSpec {
        TaskSpec::SuperResolve { base, prompt: prompt.to_string() }
    }

    /// The task discriminant.
    #[must_use]
    pub fn kind(&self) -> TaskKind {
        match self {
            TaskSpec::TextToImage { .. } => TaskKind::Text,
            TaskSpec::ViewTranslation { .. } => TaskKind::View,
            TaskSpec::Inpaint { .. } => TaskKind::Inpaint,
            TaskSpec::SuperResolve { .. } => TaskKind::SuperRes,
        }
    }

    /// The target description `G'` of the task.
    #[must_use]
    pub fn prompt(&self) -> &str {
        match self {
            TaskSpec::TextToImage { prompt, .. }
            | TaskSpec::ViewTranslation { prompt, .. }
            | TaskSpec::Inpaint { prompt, .. }
            | TaskSpec::SuperResolve { prompt, .. } => prompt,
        }
    }

    /// FNV-1a digest of the task's image-side conditioning inputs (the
    /// source pixels plus any geometry/region metadata). Text-to-image
    /// returns 0 — its conditioning is fully captured by the prompt
    /// fields the cache key already carries, so pre-task text keys are
    /// unchanged. Two tasks with equal kind, prompt, and digest encode
    /// the same condition vector.
    #[must_use]
    pub fn source_digest(&self) -> u64 {
        let mut d = Fnv::new();
        match self {
            TaskSpec::TextToImage { .. } => return 0,
            TaskSpec::ViewTranslation { source, homography, .. } => {
                d.image(source);
                d.u64(homography.digest());
            }
            TaskSpec::Inpaint { source, regions, .. } => {
                d.image(source);
                for r in regions {
                    d.u64(r.class.id() as u64);
                    for v in [r.bbox.x0, r.bbox.y0, r.bbox.x1, r.bbox.y1] {
                        d.f32(v);
                    }
                }
            }
            TaskSpec::SuperResolve { base, .. } => d.image(base),
        }
        d.finish()
    }
}

/// The lowered conditioning inputs of a task: what actually feeds
/// `ConditionNetwork::build_batch`. Produced by
/// `AeroDiffusionPipeline::condition_source`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionSource {
    /// Conditioning image (reference render, warped source view,
    /// inpainting source, or resized super-res base).
    pub image: Image,
    /// Source caption `G`.
    pub caption_g: String,
    /// Target description `G'`.
    pub g_prime: String,
    /// Region set for the feature-augmentation branch.
    pub rois: Vec<Annotation>,
}

/// Incremental FNV-1a over the little-endian bytes of the fed values
/// (the same basis/prime as `Homography::digest`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.bytes(&v.to_bits().to_le_bytes());
    }

    fn image(&mut self, img: &Image) {
        self.u64(img.width() as u64);
        self.u64(img.height() as u64);
        for &v in img.to_tensor().as_slice() {
            self.f32(v);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{BBox, ObjectClass, Viewpoint};

    fn gradient_image(size: usize, bias: f32) -> Image {
        let mut img = Image::new(size, size);
        for y in 0..size {
            for x in 0..size {
                let v = (x + y) as f32 / (2 * size) as f32;
                img.set_pixel(x, y, [v, (v + bias).fract(), 1.0 - v]);
            }
        }
        img
    }

    #[test]
    fn kind_wire_names_round_trip() {
        for kind in TaskKind::ALL {
            assert_eq!(TaskKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(TaskKind::parse("nope"), None);
    }

    #[test]
    fn text_task_digest_is_zero() {
        let item = aero_scene::build_dataset(&aero_scene::DatasetConfig {
            n_scenes: 1,
            image_size: 16,
            seed: 3,
            generator: aero_scene::SceneGeneratorConfig::default(),
        })
        .items[0]
            .clone();
        let task = TaskSpec::text(&item, "a caption", "a prompt");
        assert_eq!(task.kind(), TaskKind::Text);
        assert_eq!(task.source_digest(), 0);
        assert_eq!(task.prompt(), "a prompt");
    }

    #[test]
    fn digest_tracks_every_conditioning_input() {
        let img = gradient_image(16, 0.2);
        let vp_a = Viewpoint::default();
        let vp_b = Viewpoint { altitude: 0.5, pitch_deg: 60.0, heading_deg: 15.0 };
        let h_ab = Homography::between(16, 16, &vp_a, &vp_b);
        let view = TaskSpec::view(img.clone(), h_ab, "p");
        assert_eq!(view.source_digest(), TaskSpec::view(img.clone(), h_ab, "p").source_digest());
        // Different homography → different digest.
        let h_id = Homography::identity();
        assert_ne!(view.source_digest(), TaskSpec::view(img.clone(), h_id, "p").source_digest());
        // Different pixels → different digest.
        let other = gradient_image(16, 0.7);
        assert_ne!(view.source_digest(), TaskSpec::view(other, h_ab, "p").source_digest());
        // Region boxes and labels both feed the inpaint digest.
        let region =
            |class: ObjectClass, x0: f32| Annotation { class, bbox: BBox::new(x0, 2.0, 8.0, 9.0) };
        let a = TaskSpec::inpaint(img.clone(), vec![region(ObjectClass::Car, 1.0)], "p");
        let b = TaskSpec::inpaint(img.clone(), vec![region(ObjectClass::Van, 1.0)], "p");
        let c = TaskSpec::inpaint(img.clone(), vec![region(ObjectClass::Car, 3.0)], "p");
        assert_ne!(a.source_digest(), b.source_digest());
        assert_ne!(a.source_digest(), c.source_digest());
        // Kinds with identical inputs still differ via `kind()` (the
        // cache key carries both), but the raw digests may collide only
        // across kinds, never within one.
        let sr = TaskSpec::superres(img, "p");
        assert_eq!(sr.kind(), TaskKind::SuperRes);
    }
}
