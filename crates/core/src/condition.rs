//! The feature-augmented condition network (Section IV-C-2, Eq. 5).
//!
//! Builds `C = [C_xg; C_g; f̂_X]`:
//!
//! * `C_xg = BLIP(X_i, G_i)` — deep image/text fusion (trainable),
//! * `C_g = CLIP(G'_i)` — the frozen CLIP encoding of the *target*
//!   description, the knob that steers viewpoint/night transitions,
//! * `f̂_X` — the region-augmented image feature (trainable).
//!
//! Disabled components (for the Table IV ablations) contribute a zero
//! block so the condition dimensionality — and therefore the UNet — is
//! identical across variants.

use crate::config::PipelineConfig;
use crate::region::RegionAugmenter;
use aero_nn::{Module, Var};
use aero_scene::{Annotation, Image};
use aero_tensor::Tensor;
use aero_vision::blip::BlipFusion;
use aero_vision::clip::ClipModel;
use rand::Rng;

/// Inputs for one conditioned sample.
#[derive(Debug, Clone)]
pub struct ConditionInputs<'a> {
    /// The source/reference image `X_i`.
    pub image: &'a Image,
    /// Token ids of the source caption `G_i`.
    pub tokens_g: Vec<usize>,
    /// Token ids of the target description `G'_i`.
    pub tokens_g_prime: Vec<usize>,
    /// Regions of interest for feature augmentation.
    pub rois: &'a [Annotation],
}

/// The trainable condition network.
#[derive(Debug, Clone)]
pub struct ConditionNetwork {
    blip: BlipFusion,
    augmenter: RegionAugmenter,
    use_blip: bool,
    use_region: bool,
    embed_dim: usize,
    image_size: usize,
}

impl ConditionNetwork {
    /// Creates an untrained condition network with all components active.
    pub fn new<R: Rng + ?Sized>(vocab: usize, config: &PipelineConfig, rng: &mut R) -> Self {
        Self::with_components(vocab, config, true, true, rng)
    }

    /// Creates a network with ablation toggles (Table IV).
    pub fn with_components<R: Rng + ?Sized>(
        vocab: usize,
        config: &PipelineConfig,
        use_blip: bool,
        use_region: bool,
        rng: &mut R,
    ) -> Self {
        ConditionNetwork {
            blip: BlipFusion::new(vocab, config.vision, rng),
            augmenter: RegionAugmenter::new(config, rng),
            use_blip,
            use_region,
            embed_dim: config.vision.embed_dim,
            image_size: config.vision.image_size,
        }
    }

    /// Whether the BLIP fusion branch is active.
    pub fn uses_blip(&self) -> bool {
        self.use_blip
    }

    /// Whether the region-augmentation branch is active.
    pub fn uses_region(&self) -> bool {
        self.use_region
    }

    /// The condition dimensionality (`3 · embed_dim`).
    pub fn cond_dim(&self) -> usize {
        3 * self.embed_dim
    }

    /// Pretrains the trainable branches to align with the frozen CLIP
    /// image space: `C_xg` and `f̂_X` regress the CLIP embedding of their
    /// image. This plays the role of the *pretrained* BLIP/ViT weights
    /// the paper starts from — without it the condition network begins as
    /// noise and the joint diffusion stage has nothing to condition on.
    ///
    /// Returns per-epoch mean losses.
    pub fn pretrain_alignment<R: rand::Rng + ?Sized>(
        &self,
        clip: &ClipModel,
        inputs: &[ConditionInputs<'_>],
        epochs: usize,
        batch_size: usize,
        lr: f32,
        rng: &mut R,
    ) -> Vec<f32> {
        if self.params().is_empty() || inputs.is_empty() {
            return Vec::new();
        }
        let s = self.image_size;
        let d = self.embed_dim;
        let mut opt = aero_nn::optim::Adam::new(self.params(), lr);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut total = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size.max(1)) {
                let sel: Vec<ConditionInputs<'_>> =
                    chunk.iter().map(|&i| inputs[i].clone()).collect();
                let imgs: Vec<Tensor> =
                    sel.iter().map(|i| i.image.resize(s, s).to_tensor()).collect();
                let refs: Vec<&Tensor> = imgs.iter().collect();
                let target = clip.encode_image(&Tensor::stack(&refs));
                opt.zero_grad();
                let c = self.build_batch(clip, &sel);
                let n = sel.len();
                let mut loss_terms = Vec::new();
                if self.use_blip {
                    loss_terms.push(c.narrow(1, 0, d).mse_loss(&target));
                }
                if self.use_region {
                    loss_terms.push(c.narrow(1, 2 * d, d).mse_loss(&target));
                }
                let _ = n;
                let Some(mut loss) = loss_terms.pop() else { continue };
                for t in loss_terms {
                    loss = loss.add(&t);
                }
                total += loss.value().item();
                batches += 1;
                loss.backward();
                opt.step();
            }
            history.push(if batches > 0 { total / batches as f32 } else { 0.0 });
        }
        history
    }

    /// Builds the differentiable condition batch `[n, 3d]`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn build_batch(&self, clip: &ClipModel, inputs: &[ConditionInputs<'_>]) -> Var {
        assert!(!inputs.is_empty(), "condition batch cannot be empty");
        let n = inputs.len();
        let s = self.image_size;
        let d = self.embed_dim;

        // C_xg: BLIP fusion of source image and caption (trainable).
        let c_xg = if self.use_blip {
            let imgs: Vec<Tensor> =
                inputs.iter().map(|i| i.image.resize(s, s).to_tensor()).collect();
            let refs: Vec<&Tensor> = imgs.iter().collect();
            let image_batch = Tensor::stack(&refs);
            let tokens: Vec<Vec<usize>> = inputs.iter().map(|i| i.tokens_g.clone()).collect();
            self.blip.fuse_tensors(&image_batch, &tokens)
        } else {
            Var::constant(Tensor::zeros(&[n, d]))
        };

        // C_g: frozen CLIP encoding of the target description G'.
        let g_prime: Vec<Vec<usize>> = inputs.iter().map(|i| i.tokens_g_prime.clone()).collect();
        let c_g = Var::constant(clip.encode_text(&g_prime));

        // f̂_X: region-augmented image feature (trainable).
        let f_hat = if self.use_region {
            let items: Vec<(&Image, &[Annotation])> =
                inputs.iter().map(|i| (i.image, i.rois)).collect();
            self.augmenter.augment_batch(&items)
        } else {
            Var::constant(Tensor::zeros(&[n, d]))
        };

        Var::concat(&[&c_xg, &c_g, &f_hat], 1)
    }
}

impl Module for ConditionNetwork {
    fn params(&self) -> Vec<Var> {
        let mut p = Vec::new();
        if self.use_blip {
            p.extend(self.blip.params());
        }
        if self.use_region {
            p.extend(self.augmenter.params());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ConditionNetwork, ClipModel, aero_scene::AerialDataset, PipelineConfig) {
        let cfg = PipelineConfig::smoke();
        let mut rng = StdRng::seed_from_u64(3);
        let net = ConditionNetwork::new(40, &cfg, &mut rng);
        let clip = ClipModel::new(40, cfg.vision, &mut rng);
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 2,
            image_size: cfg.vision.image_size,
            seed: 4,
            generator: SceneGeneratorConfig {
                min_objects: 4,
                max_objects: 7,
                night_probability: 0.0,
            },
        });
        (net, clip, ds, cfg)
    }

    fn inputs<'a>(
        ds: &'a aero_scene::AerialDataset,
        cfg: &PipelineConfig,
    ) -> Vec<ConditionInputs<'a>> {
        ds.iter()
            .map(|item| ConditionInputs {
                image: &item.rendered.image,
                tokens_g: vec![1; cfg.vision.max_text_len],
                tokens_g_prime: vec![2; cfg.vision.max_text_len],
                rois: &item.rendered.boxes,
            })
            .collect()
    }

    #[test]
    fn condition_shape_is_three_blocks() {
        let (net, clip, ds, cfg) = setup();
        let c = net.build_batch(&clip, &inputs(&ds, &cfg));
        assert_eq!(c.shape(), vec![2, 3 * cfg.vision.embed_dim]);
    }

    #[test]
    fn disabled_blocks_are_zero() {
        let cfg = PipelineConfig::smoke();
        let mut rng = StdRng::seed_from_u64(5);
        let net = ConditionNetwork::with_components(40, &cfg, false, false, &mut rng);
        let clip = ClipModel::new(40, cfg.vision, &mut rng);
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 1,
            image_size: cfg.vision.image_size,
            seed: 6,
            generator: SceneGeneratorConfig::default(),
        });
        let c = net.build_batch(&clip, &inputs(&ds, &cfg)).to_tensor();
        let d = cfg.vision.embed_dim;
        // first block (BLIP) zero
        assert_eq!(c.narrow(1, 0, d).abs().max(), 0.0);
        // last block (region) zero
        assert_eq!(c.narrow(1, 2 * d, d).abs().max(), 0.0);
        // CLIP block alive
        assert!(c.narrow(1, d, d).abs().max() > 0.0);
    }

    #[test]
    fn g_prime_steers_the_condition() {
        let (net, clip, ds, cfg) = setup();
        let mut a = inputs(&ds, &cfg);
        let base = net.build_batch(&clip, &a).to_tensor();
        for i in &mut a {
            i.tokens_g_prime = vec![9; cfg.vision.max_text_len];
        }
        let steered = net.build_batch(&clip, &a).to_tensor();
        assert!(base.sub(&steered).abs().max() > 1e-6);
    }

    #[test]
    fn trainable_params_respect_ablation() {
        let cfg = PipelineConfig::smoke();
        let mut rng = StdRng::seed_from_u64(7);
        let full = ConditionNetwork::with_components(40, &cfg, true, true, &mut rng);
        let none = ConditionNetwork::with_components(40, &cfg, false, false, &mut rng);
        assert!(full.param_count() > 0);
        assert_eq!(none.param_count(), 0);
    }

    #[test]
    fn gradients_reach_condition_params() {
        let (net, clip, ds, cfg) = setup();
        net.build_batch(&clip, &inputs(&ds, &cfg)).sum().backward();
        let with_grad = net.params().iter().filter(|p| p.grad().is_some()).count();
        // unused pooled/patch heads may be exempt
        assert!(
            with_grad * 10 >= net.params().len() * 8,
            "most params should receive grads: {with_grad}/{}",
            net.params().len()
        );
    }
}
