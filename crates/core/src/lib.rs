//! **AeroDiffusion** — the paper's primary contribution, assembled from
//! the workspace substrates.
//!
//! The pipeline (Fig. 2 of the paper) has two key components:
//!
//! 1. **Keypoint-aware text description generation** (Section IV-A):
//!    captions `G_i = LLM(X_i, O_i, P_i)` produced by prompting a
//!    (simulated) LLM with the scene's ground-truth object list and a
//!    structured template — see [`aero_text`].
//! 2. **Feature-augmented diffusion** (Sections IV-B/IV-C): YOLO-detected
//!    regions of interest are cropped, re-encoded, cross-attended with
//!    their label embeddings, and fused with the whole-image feature via
//!    multi-head self-attention ([`region::RegionAugmenter`]); the
//!    resulting `f̂_X` joins BLIP image-text fusion `C_xg` and the CLIP
//!    encoding of the target description `C_g` in the condition vector
//!    `C = [C_xg; C_g; f̂_X]` ([`condition::ConditionNetwork`], Eq. 5),
//!    which guides a latent-diffusion UNet trained with Eq. 6.
//!
//! [`pipeline::AeroDiffusionPipeline`] wires the full system:
//! caption → tokenize → train CLIP/VAE/YOLO substrates → jointly train
//! the UNet and condition network → DDIM sampling with classifier-free
//! guidance, plus the paper's viewpoint-transition (Table III) and
//! nighttime (Fig. 5) synthesis modes and the Table IV ablations.

pub mod ablation;
pub mod condition;
pub mod config;
pub mod lint;
pub mod persist;
pub mod pipeline;
pub mod region;
pub mod snapshot;
pub mod substrate;
pub mod task;
pub mod viewpoint;

pub use ablation::{AblationSpec, AblationVariant};
pub use condition::ConditionNetwork;
pub use config::PipelineConfig;
pub use lint::{
    lint_backend_callsites, lint_checkpoint, lint_config, lint_deprecated_condition_api,
    lint_kernel_callsites, lint_panicking_callsites, lint_source_all, Baseline, BaselineDiff,
};
pub use persist::{
    parse_provider_tag, parse_variant_tag, provider_tag, variant_tag, PersistError, PipelineMeta,
    PIPELINE_FORMAT_VERSION,
};
pub use pipeline::{AeroDiffusionPipeline, FitReport};
pub use region::RegionAugmenter;
pub use snapshot::{PipelineSnapshot, MODULE_NAMES};
pub use substrate::SubstrateBundle;
pub use task::{ConditionSource, TaskKind, TaskSpec};
