//! The end-to-end AeroDiffusion pipeline.

use crate::ablation::AblationVariant;
use crate::condition::{ConditionInputs, ConditionNetwork};
use crate::config::PipelineConfig;
use crate::substrate::{caption_dataset, SubstrateBundle};
use crate::task::{ConditionSource, TaskSpec};
use aero_diffusion::{
    CancelSignal, CheckpointConfig, CondUnet, DdimSampler, DiffusionTrainer, LatentPin,
    SampleOptions, Sampler, StepSink, TrainCursor,
};
use aero_nn::optim::Adam;
use aero_nn::Module;
use aero_obs::span;
use aero_scene::{AerialDataset, Annotation, DatasetItem, Image, ObjectClass};
use aero_tensor::Tensor;
use aero_text::llm::{LlmProvider, SimulatedLlm};
use aero_text::prompt::PromptTemplate;
use aero_text::task::{task_caption, TaskCaption};
use aero_vision::vae::LATENT_CHANNELS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a checkpointed [`AeroDiffusionPipeline::fit_with_checkpoints`]
/// run did: how far it got and how it got there.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Joint-training optimizer steps completed (including steps from a
    /// resumed earlier run).
    pub steps: u64,
    /// Whether all epochs finished (`false` when `max_steps` hit first).
    pub completed: bool,
    /// The checkpoint step training resumed from, if any.
    pub resumed_from: Option<u64>,
    /// Corrupt checkpoints skipped while searching for the resume point.
    pub skipped_corrupt: usize,
    /// Loss of the last executed step, if any step ran.
    pub last_loss: Option<f32>,
}

/// A fully trained AeroDiffusion system.
#[derive(Debug)]
pub struct AeroDiffusionPipeline {
    pub(crate) config: PipelineConfig,
    pub(crate) bundle: SubstrateBundle,
    pub(crate) condition: ConditionNetwork,
    pub(crate) unet: CondUnet,
    pub(crate) trainer: DiffusionTrainer,
    pub(crate) provider: LlmProvider,
    pub(crate) variant: AblationVariant,
}

impl AeroDiffusionPipeline {
    /// Trains the full pipeline on a dataset with the paper's default
    /// keypoint-aware captioning.
    pub fn fit(dataset: &AerialDataset, config: PipelineConfig, seed: u64) -> Self {
        Self::fit_with_options(
            dataset,
            config,
            LlmProvider::KeypointAware,
            AblationVariant::Full,
            seed,
        )
    }

    /// Trains with an explicit caption provider (Table II) and ablation
    /// variant (Table IV).
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit_with_options(
        dataset: &AerialDataset,
        config: PipelineConfig,
        provider: LlmProvider,
        variant: AblationVariant,
        seed: u64,
    ) -> Self {
        assert!(!dataset.is_empty(), "cannot fit on an empty dataset");
        let mut rng = StdRng::seed_from_u64(seed);
        let prompt = variant.prompt();
        let captions = caption_dataset(dataset, provider, &prompt, seed);
        let bundle = SubstrateBundle::train(dataset, &captions, &config, seed);

        let vocab = bundle.tokenizer.vocab().len();
        let condition = ConditionNetwork::with_components(
            vocab,
            &config,
            variant.uses_blip(),
            variant.uses_object_detection(),
            &mut rng,
        );
        let unet = CondUnet::new(crate::lint::unet_config(&config), &mut rng);
        let trainer = DiffusionTrainer::new(config.diffusion);

        let mut pipeline =
            AeroDiffusionPipeline { config, bundle, condition, unet, trainer, provider, variant };
        pipeline.train_joint(dataset, &captions, &mut rng);
        pipeline
    }

    /// Trains like [`AeroDiffusionPipeline::fit_with_options`] but with
    /// crash-safe checkpoints of the joint diffusion stage: the run can be
    /// killed at an arbitrary step and re-invoked with the same arguments,
    /// and it continues from the newest valid checkpoint on a
    /// bit-identical trajectory (optimizer moments, RNG state, and the
    /// in-epoch batch order are all restored). Corrupt checkpoints are
    /// skipped, not trusted.
    ///
    /// `max_steps` bounds the joint-training steps (used to simulate a
    /// mid-run kill in tests and to bound CI smoke runs).
    ///
    /// # Errors
    ///
    /// Propagates checkpoint save/scan failures.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit_with_checkpoints(
        dataset: &AerialDataset,
        config: PipelineConfig,
        provider: LlmProvider,
        variant: AblationVariant,
        seed: u64,
        checkpoint: &CheckpointConfig,
        max_steps: Option<u64>,
    ) -> Result<(Self, FitReport), crate::persist::PersistError> {
        assert!(!dataset.is_empty(), "cannot fit on an empty dataset");
        let mut rng = StdRng::seed_from_u64(seed);
        let prompt = variant.prompt();
        let captions = caption_dataset(dataset, provider, &prompt, seed);
        let bundle = SubstrateBundle::train(dataset, &captions, &config, seed);

        let vocab = bundle.tokenizer.vocab().len();
        let condition = ConditionNetwork::with_components(
            vocab,
            &config,
            variant.uses_blip(),
            variant.uses_object_detection(),
            &mut rng,
        );
        let unet = CondUnet::new(crate::lint::unet_config(&config), &mut rng);
        let trainer = DiffusionTrainer::new(config.diffusion);

        let mut pipeline =
            AeroDiffusionPipeline { config, bundle, condition, unet, trainer, provider, variant };
        let report = pipeline.train_joint_checkpointed(
            dataset,
            &captions,
            &mut rng,
            Some(checkpoint),
            max_steps,
        )?;
        Ok((pipeline, report))
    }

    /// The joint diffusion + condition-network training stage (Eq. 6:
    /// "both the parameters θ of the denoising network and those involved
    /// in generating the condition vector C are jointly updated").
    fn train_joint(&mut self, dataset: &AerialDataset, captions: &[String], rng: &mut StdRng) {
        self.train_joint_checkpointed(dataset, captions, rng, None, None)
            .expect("uncheckpointed joint training performs no fallible i/o");
    }

    /// [`Self::train_joint`] with optional checkpointing: resumes from the
    /// newest valid checkpoint in `checkpoint.dir` when one exists, and
    /// saves every `checkpoint.every` steps plus once at completion.
    fn train_joint_checkpointed(
        &mut self,
        dataset: &AerialDataset,
        captions: &[String],
        rng: &mut StdRng,
        checkpoint: Option<&CheckpointConfig>,
        max_steps: Option<u64>,
    ) -> Result<FitReport, crate::persist::PersistError> {
        // Precompute frozen quantities: latents, tokens, ROIs.
        let latents: Vec<Tensor> = dataset
            .iter()
            .map(|item| {
                let s = self.config.vision.image_size;
                let img = item.rendered.image.to_tensor().reshape(&[1, 3, s, s]);
                self.bundle.vae.encode_tensor(&img)
            })
            .collect();
        let tokens: Vec<Vec<usize>> =
            captions.iter().map(|c| self.bundle.tokenizer.encode(c)).collect();
        let rois: Vec<Vec<Annotation>> =
            dataset.iter().map(|item| self.propose_rois(&item.rendered.image)).collect();

        // Alignment pretraining: stands in for the pretrained BLIP/ViT
        // checkpoints the paper's condition network starts from.
        let pretrain_inputs: Vec<ConditionInputs<'_>> = (0..dataset.len())
            .map(|i| ConditionInputs {
                image: &dataset.items[i].rendered.image,
                tokens_g: tokens[i].clone(),
                tokens_g_prime: tokens[i].clone(),
                rois: &rois[i],
            })
            .collect();
        self.condition.pretrain_alignment(
            &self.bundle.clip,
            &pretrain_inputs,
            self.config.clip_epochs,
            self.config.batch_size,
            self.config.substrate_lr,
            rng,
        );

        let joint = self.config.joint_condition_training;
        let mut params = self.unet.params();
        if joint {
            params.extend(self.condition.params());
        }
        // Vars are shared handles; keep a second list of the optimized
        // parameters for checkpoint save/restore alongside the optimizer.
        let ckpt_params = params.clone();
        let mut opt = Adam::new(params, self.config.diffusion_lr).with_weight_decay(1e-5);

        // Frozen-condition fast path: precompute every condition vector
        // once (the alignment-pretrained network is treated like the
        // frozen pretrained encoders the baselines use).
        let frozen_conds: Vec<Tensor> = if joint {
            Vec::new()
        } else {
            (0..dataset.len())
                .map(|i| {
                    let inputs = [ConditionInputs {
                        image: &dataset.items[i].rendered.image,
                        tokens_g: tokens[i].clone(),
                        tokens_g_prime: tokens[i].clone(),
                        rois: &rois[i],
                    }];
                    let c = self.condition.build_batch(&self.bundle.clip, &inputs).to_tensor();
                    let d = c.shape()[1];
                    c.reshape(&[d])
                })
                .collect()
        };

        // Resume: restore weights, moments, RNG and the in-epoch cursor
        // from the newest valid checkpoint; corrupt ones are skipped.
        let mut resumed_from = None;
        let mut skipped_corrupt = 0;
        let mut start_epoch = 0;
        let mut chunk_start = 0;
        let mut pending_order: Option<Vec<usize>> = None;
        let mut step: u64 = 0;
        if let Some(ckpt) = checkpoint {
            let resume = aero_diffusion::resume_latest(&ckpt.dir, &ckpt_params, &mut opt)?;
            skipped_corrupt = resume.skipped_corrupt;
            if let Some(cursor) = resume.cursor {
                *rng = StdRng::from_state(cursor.rng);
                resumed_from = Some(cursor.step);
                step = cursor.step;
                start_epoch = cursor.epoch;
                chunk_start = cursor.batch;
                pending_order = Some(cursor.order);
            }
        }

        let batch_size = self.config.diffusion_batch_size.max(1);
        let mut last_loss = None;
        let mut completed = true;
        let mut last_saved = resumed_from;
        'epochs: for epoch in start_epoch..self.config.diffusion_epochs {
            let order: Vec<usize> = match pending_order.take() {
                Some(order) => order,
                None => {
                    let mut order: Vec<usize> = (0..dataset.len()).collect();
                    for i in (1..order.len()).rev() {
                        order.swap(i, rng.gen_range(0..=i));
                    }
                    order
                }
            };
            let chunks: Vec<&[usize]> = order.chunks(batch_size).collect();
            for (ci, &chunk) in chunks.iter().enumerate().skip(chunk_start) {
                let cond = if joint {
                    let inputs: Vec<ConditionInputs<'_>> = chunk
                        .iter()
                        .map(|&i| ConditionInputs {
                            image: &dataset.items[i].rendered.image,
                            tokens_g: tokens[i].clone(),
                            // during training the target description equals
                            // the source description
                            tokens_g_prime: tokens[i].clone(),
                            rois: &rois[i],
                        })
                        .collect();
                    self.condition.build_batch(&self.bundle.clip, &inputs)
                } else {
                    let c_refs: Vec<&Tensor> = chunk.iter().map(|&i| &frozen_conds[i]).collect();
                    aero_nn::Var::constant(Tensor::stack(&c_refs))
                };
                let z_refs: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| {
                        let sh = latents[i].shape();
                        latents[i].reshape(&[sh[1], sh[2], sh[3]])
                    })
                    .collect();
                let refs: Vec<&Tensor> = z_refs.iter().collect();
                let z0 = Tensor::stack(&refs);
                // lint: nondet-ok(wall-clock feeds the step-duration metric only, never tensors)
                let step_start = std::time::Instant::now();
                let _step_span = span!("train.step");
                opt.zero_grad();
                let loss = self.trainer.loss(&self.unet, &z0, Some(&cond), rng);
                let value = loss.value().item();
                loss.backward();
                opt.step();
                drop(_step_span);
                step += 1;
                last_loss = Some(value);
                aero_obs::counter!("train.steps").inc();
                aero_obs::gauge!("train.last_loss").set(f64::from(value));
                aero_obs::histogram!("train.step_time_us", aero_obs::Histogram::exponential_us())
                    .observe(u64::try_from(step_start.elapsed().as_micros()).unwrap_or(u64::MAX));
                if let Some(ckpt) = checkpoint {
                    if ckpt.every > 0 && step.is_multiple_of(ckpt.every) {
                        let cursor = TrainCursor {
                            step,
                            epoch,
                            batch: ci + 1,
                            order: order.clone(),
                            rng: rng.state(),
                        };
                        aero_diffusion::save_checkpoint(ckpt, &cursor, &ckpt_params, &opt)?;
                        last_saved = Some(step);
                    }
                }
                if max_steps.is_some_and(|max| step >= max) {
                    completed = false;
                    break 'epochs;
                }
            }
            chunk_start = 0;
        }
        if let Some(ckpt) = checkpoint {
            // A final checkpoint marks the run complete so a re-invocation
            // resumes past the loop instead of repeating work.
            if completed && step > 0 && last_saved != Some(step) {
                let cursor = TrainCursor {
                    step,
                    epoch: self.config.diffusion_epochs,
                    batch: 0,
                    order: Vec::new(),
                    rng: rng.state(),
                };
                aero_diffusion::save_checkpoint(ckpt, &cursor, &ckpt_params, &opt)?;
            }
        }
        Ok(FitReport { steps: step, completed, resumed_from, skipped_corrupt, last_loss })
    }

    /// ROIs for an image: detector output ordered by confidence. When the
    /// detector abstains entirely at the configured threshold, the
    /// threshold is relaxed once (mirroring the paper's object-retrieval
    /// step, which always extracts the highest-importance regions).
    pub fn propose_rois(&self, image: &Image) -> Vec<Annotation> {
        let tensor = image.to_tensor();
        let mut dets = self.bundle.detector.detect(&tensor, self.config.roi_confidence, 0.4);
        if dets.is_empty() {
            dets = self.bundle.detector.detect(&tensor, self.config.roi_confidence * 0.25, 0.4);
        }
        dets.into_iter().map(|d| d.to_annotation()).collect()
    }

    /// Generates an image conditioned on a reference item, using the
    /// item's own description as the target `G'` (the Table I protocol).
    pub fn generate<R: Rng + ?Sized>(&self, item: &DatasetItem, rng: &mut R) -> Image {
        let caption = self.caption_for(item, rng);
        self.generate_with_description(item, &caption, rng)
    }

    /// Generates an image conditioned on a reference item and an explicit
    /// target description `G'` (viewpoint transition / night synthesis).
    pub fn generate_with_description<R: Rng + ?Sized>(
        &self,
        item: &DatasetItem,
        g_prime: &str,
        rng: &mut R,
    ) -> Image {
        let sampler = DdimSampler::new(
            self.config.diffusion.ddim_steps,
            self.config.diffusion.guidance_scale,
        );
        self.generate_with_description_and_sampler(item, g_prime, &sampler, rng)
    }

    /// Generates with an explicit DDIM sampler (guidance/step sweeps).
    pub fn generate_with_sampler<R: Rng + ?Sized>(
        &self,
        item: &DatasetItem,
        sampler: &DdimSampler,
        rng: &mut R,
    ) -> Image {
        let caption = self.caption_for(item, rng);
        self.generate_with_description_and_sampler(item, &caption, sampler, rng)
    }

    /// The fully explicit generation entry point: encode → sample →
    /// decode, each stage also callable on its own (the serving runtime
    /// drives them separately so it can cache conditions and coalesce
    /// sampler calls).
    pub fn generate_with_description_and_sampler<R: Rng + ?Sized>(
        &self,
        item: &DatasetItem,
        g_prime: &str,
        sampler: &DdimSampler,
        rng: &mut R,
    ) -> Image {
        let caption_g = self.caption_for(item, rng);
        let cond = self.encode_task(&TaskSpec::text(item, &caption_g, g_prime));
        let [c, h, w] = self.latent_shape();
        let z_init = Tensor::randn(&[1, c, h, w], rng);
        let z = self.sample_latents(sampler, z_init, &cond);
        self.decode_latent(&z.reshape(&[c, h, w]))
    }

    /// The per-sample latent geometry `[channels, side, side]`.
    pub fn latent_shape(&self) -> [usize; 3] {
        let latent_side = self.config.vision.image_size / 4;
        [LATENT_CHANNELS, latent_side, latent_side]
    }

    /// Lowers a task to its conditioning inputs: the image the condition
    /// network sees, the source caption `G`, the target description `G'`,
    /// and the region set for the feature-augmentation branch.
    ///
    /// Text-to-image reproduces the pre-task conditioning exactly
    /// (reference render + detector ROIs). View translation warps the
    /// source through the homography prior before region proposal;
    /// inpainting passes the request's keypoint boxes as the regions
    /// directly; super-resolution resizes the base up to the pipeline's
    /// native resolution. The image-conditioned captions come from
    /// [`aero_text::task::task_caption`] and are pure functions of the
    /// task, keeping the encode stage cacheable.
    pub fn condition_source(&self, task: &TaskSpec) -> ConditionSource {
        match task {
            TaskSpec::TextToImage { reference, caption_g, prompt } => ConditionSource {
                image: reference.rendered.image.clone(),
                caption_g: caption_g.clone(),
                g_prime: prompt.clone(),
                rois: self.propose_rois(&reference.rendered.image),
            },
            TaskSpec::ViewTranslation { source, homography, prompt } => {
                let warped = source.warp(homography);
                let rois = self.propose_rois(&warped);
                ConditionSource {
                    caption_g: task_caption(&TaskCaption::ViewTranslation, prompt),
                    g_prime: prompt.clone(),
                    image: warped,
                    rois,
                }
            }
            TaskSpec::Inpaint { source, regions, prompt } => {
                let labels: Vec<ObjectClass> = regions.iter().map(|r| r.class).collect();
                ConditionSource {
                    image: source.clone(),
                    caption_g: task_caption(&TaskCaption::Inpaint { labels: &labels }, prompt),
                    g_prime: prompt.clone(),
                    rois: regions.clone(),
                }
            }
            TaskSpec::SuperResolve { base, prompt } => {
                let s = self.config.vision.image_size;
                let resized = if (base.width(), base.height()) == (s, s) {
                    base.clone()
                } else {
                    base.resize(s, s)
                };
                let rois = self.propose_rois(&resized);
                ConditionSource {
                    caption_g: task_caption(&TaskCaption::SuperResolve, prompt),
                    g_prime: prompt.clone(),
                    image: resized,
                    rois,
                }
            }
        }
    }

    /// Encode stage: the `[1, cond_dim]` condition vector for a task.
    /// Deterministic in the task's inputs — the serving runtime caches
    /// the result per (kind, prompt, source digest).
    pub fn encode_task(&self, task: &TaskSpec) -> Tensor {
        let _span = span!("pipeline.encode_task");
        let source = self.condition_source(task);
        let inputs = [ConditionInputs {
            image: &source.image,
            tokens_g: self.bundle.tokenizer.encode(&source.caption_g),
            tokens_g_prime: self.bundle.tokenizer.encode(&source.g_prime),
            rois: &source.rois,
        }];
        self.condition.build_batch(&self.bundle.clip, &inputs).to_tensor()
    }

    /// The pre-task positional encode stage.
    #[deprecated(
        note = "build a `TaskSpec` (e.g. `TaskSpec::text`) and call `encode_task` instead"
    )]
    pub fn encode_condition(&self, item: &DatasetItem, caption_g: &str, g_prime: &str) -> Tensor {
        self.encode_task(&TaskSpec::text(item, caption_g, g_prime))
    }

    /// The `[1, c, h, w]` diffusion-space latent of one native-resolution
    /// image (the inpainting reference the sampler pins to).
    ///
    /// # Panics
    ///
    /// Panics when the image is not at the pipeline's native resolution.
    pub fn encode_image_latent(&self, image: &Image) -> Tensor {
        let s = self.config.vision.image_size;
        assert_eq!(
            (image.width(), image.height()),
            (s, s),
            "latent encoding expects a {s}x{s} image"
        );
        self.bundle.vae.encode_tensor(&image.to_tensor().reshape(&[1, 3, s, s]))
    }

    /// The `[1, c, h, w]` re-denoise mask for a set of keypoint boxes:
    /// `1.0` on latent cells whose decoded pixel block intersects any
    /// box (free to change), `0.0` elsewhere (pinned to the source).
    pub fn latent_mask(&self, regions: &[Annotation]) -> Tensor {
        let [c, h, w] = self.latent_shape();
        let cell = (self.config.vision.image_size / w) as f32;
        let mut mask = vec![0.0f32; c * h * w];
        for ly in 0..h {
            for lx in 0..w {
                let (px0, py0) = (lx as f32 * cell, ly as f32 * cell);
                let (px1, py1) = (px0 + cell, py0 + cell);
                let hit = regions.iter().any(|r| {
                    r.bbox.x0 < px1 && r.bbox.x1 > px0 && r.bbox.y0 < py1 && r.bbox.y1 > py0
                });
                if hit {
                    for ch in 0..c {
                        mask[ch * h * w + ly * w + lx] = 1.0;
                    }
                }
            }
        }
        Tensor::from_vec(mask, &[1, c, h, w])
    }

    /// The inpainting pin for a task, drawing the pin noise from `rng`.
    /// Non-inpainting tasks need no pin. Callers must draw the initial
    /// latent noise from the same `rng` *before* calling this, so that a
    /// batched run and a batch-1 run consume the stream identically.
    pub fn task_pin<R: Rng + ?Sized>(&self, task: &TaskSpec, rng: &mut R) -> Option<LatentPin> {
        match task {
            TaskSpec::Inpaint { source, regions, .. } => {
                let [c, h, w] = self.latent_shape();
                let mask = self.latent_mask(regions);
                let reference = self.encode_image_latent(source);
                let noise = Tensor::randn(&[1, c, h, w], rng);
                Some(LatentPin::new(mask, reference, noise))
            }
            _ => None,
        }
    }

    /// Runs one task end to end — encode, sample (with the inpainting
    /// pin when the task calls for one), decode — deterministically in
    /// `(task, sampler, seed)`. The per-task RNG draws the initial
    /// latent first and the pin noise second; the serving batcher uses
    /// the same order per job, which is what makes a coalesced
    /// heterogeneous batch row-identical to batch-1 runs.
    pub fn run_task(
        &self,
        task: &TaskSpec,
        sampler: &DdimSampler,
        seed: u64,
        mut sink: StepSink<'_>,
    ) -> Image {
        let cond = self.encode_task(task);
        let [c, h, w] = self.latent_shape();
        let mut rng = StdRng::seed_from_u64(seed);
        let z_init = Tensor::randn(&[1, c, h, w], &mut rng);
        let pin = self.task_pin(task, &mut rng);
        // Reborrow the sink so its lifetime shrinks to this call: the
        // locally owned `cond`/`pin` must outlive the options struct.
        let z = self.sample_latents_controlled(
            sampler,
            z_init,
            &cond,
            pin.as_ref(),
            None,
            sink.stage(),
        );
        self.decode_latent(&z.reshape(&[c, h, w]))
    }

    /// Two-stage super-resolution cascade (RSDiff-style): a
    /// text-to-image draft at half the DDIM budget is downscaled to half
    /// resolution, then that base conditions a full-budget
    /// [`TaskSpec::SuperResolve`] denoise at native resolution. Both
    /// stages report into the same `sink` — the observer handle reborrows
    /// per stage, so one streaming callback sees the whole cascade.
    pub fn super_res_cascade(
        &self,
        reference: &DatasetItem,
        prompt: &str,
        sampler: &DdimSampler,
        seed: u64,
        mut sink: StepSink<'_>,
    ) -> Image {
        let caption_g = self.caption_for(reference, &mut StdRng::seed_from_u64(0));
        let draft_sampler = DdimSampler::new((sampler.steps / 2).max(1), sampler.guidance_scale);
        let draft_task = TaskSpec::text(reference, &caption_g, prompt);
        let draft = self.run_task(&draft_task, &draft_sampler, seed, sink.stage());
        let s = self.config.vision.image_size;
        let base = draft.resize((s / 2).max(1), (s / 2).max(1));
        let task = TaskSpec::superres(base, prompt);
        self.run_task(&task, sampler, seed.wrapping_add(1), sink.stage())
    }

    /// Sample stage: the deterministic DDIM reverse process from explicit
    /// initial noise `z_init` of shape `[n, c, h, w]` with conditions
    /// `[n, cond_dim]`. Row `i` of the output depends only on row `i` of
    /// the inputs, so callers may batch freely without changing results.
    pub fn sample_latents(&self, sampler: &DdimSampler, z_init: Tensor, cond: &Tensor) -> Tensor {
        self.sample_latents_controlled(sampler, z_init, cond, None, None, StepSink::none())
    }

    /// [`sample_latents`](Self::sample_latents) with serving-layer
    /// control: an optional inpainting pin applied around every DDIM
    /// step, an optional cancel flag checked between steps (the partial
    /// latent of the last completed step is returned once it trips), and
    /// a [`StepSink`] observer for streamed previews. All are
    /// pass-through to [`SampleOptions`]; the cancel flag and sink never
    /// perturb the sampled tensor.
    pub fn sample_latents_controlled<'a>(
        &self,
        sampler: &DdimSampler,
        z_init: Tensor,
        cond: &'a Tensor,
        pin: Option<&'a LatentPin>,
        cancel: Option<&'a dyn CancelSignal>,
        sink: StepSink<'a>,
    ) -> Tensor {
        let _span = span!("pipeline.sample_latents");
        let mut opts = SampleOptions::from_latent(z_init).with_cond(cond);
        opts.cancel = cancel;
        opts.on_step = sink.into_on_step();
        opts.pin = pin;
        Sampler::Ddim(*sampler).run(&self.unet, self.trainer.schedule(), opts)
    }

    /// Decode stage: one latent `[c, h, w]` through the VAE to an image.
    pub fn decode_latent(&self, z: &Tensor) -> Image {
        let _span = span!("pipeline.decode_latent");
        let [c, h, w] = self.latent_shape();
        let decoded = self.bundle.vae.decode_tensor(&z.reshape(&[1, c, h, w]));
        let s = self.config.vision.image_size;
        Image::from_tensor(&decoded.reshape(&[3, s, s]))
    }

    /// Generates one image per evaluation item.
    pub fn generate_eval<R: Rng + ?Sized>(&self, eval: &AerialDataset, rng: &mut R) -> Vec<Image> {
        eval.iter().map(|item| self.generate(item, rng)).collect()
    }

    /// The caption this pipeline's provider/prompt produces for an item.
    pub fn caption_for<R: Rng + ?Sized>(&self, item: &DatasetItem, rng: &mut R) -> String {
        let llm = SimulatedLlm::new(self.provider);
        llm.describe(&item.spec, &self.variant.prompt(), rng)
    }

    /// CLIP score of generated images against their target captions.
    pub fn clip_score(&self, images: &[Image], captions: &[String]) -> f32 {
        let tensors: Vec<Tensor> = images.iter().map(Image::to_tensor).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let batch = Tensor::stack(&refs);
        let tokens: Vec<Vec<usize>> =
            captions.iter().map(|c| self.bundle.tokenizer.encode(c)).collect();
        self.bundle.clip.clip_score(&batch, &tokens)
    }

    /// The trained substrate bundle.
    pub fn bundle(&self) -> &SubstrateBundle {
        &self.bundle
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The caption provider the pipeline was trained with.
    pub fn provider(&self) -> LlmProvider {
        self.provider
    }

    /// The ablation variant the pipeline was trained as.
    pub fn variant(&self) -> AblationVariant {
        self.variant
    }

    /// The simulated LLM used for target descriptions.
    pub fn llm(&self) -> SimulatedLlm {
        SimulatedLlm::new(self.provider)
    }

    /// The raw condition vector the pipeline would use for an item (with
    /// `G' = G`) — exposed for diagnostics and analysis.
    pub fn condition_vector(&self, item: &DatasetItem) -> Tensor {
        let caption = self.caption_for(item, &mut StdRng::seed_from_u64(0));
        self.encode_task(&TaskSpec::text(item, &caption, &caption))
    }

    /// Saves the trained pipeline to a directory (see [`crate::persist`]
    /// for the layout).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<P: AsRef<std::path::Path>>(
        &self,
        dir: P,
    ) -> Result<(), crate::persist::PersistError> {
        use crate::persist;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        persist::write_vocab(self.bundle.tokenizer.vocab(), &dir.join("vocab.txt"))?;
        persist::write_meta(
            &crate::persist::PipelineMeta {
                max_len: self.bundle.tokenizer.max_len(),
                latent_scale: self.bundle.vae.latent_scale(),
                provider: self.provider,
                variant: self.variant,
            },
            &dir.join("meta.txt"),
        )?;
        aero_nn::integrity::write_atomic(
            &dir.join("config.txt"),
            persist::config_fingerprint(&self.config).as_bytes(),
        )?;
        persist::save_module(&self.bundle.clip.params(), &dir.join("clip.aero"))?;
        persist::save_module(&self.bundle.vae.params(), &dir.join("vae.aero"))?;
        persist::save_module(&self.bundle.detector.params(), &dir.join("detector.aero"))?;
        persist::save_module(&self.condition.params(), &dir.join("condition.aero"))?;
        persist::save_module(&self.unet.params(), &dir.join("unet.aero"))?;
        // Written last: the manifest only ever describes a complete save.
        persist::write_manifest(dir)?;
        Ok(())
    }

    /// Loads a pipeline saved by [`AeroDiffusionPipeline::save`]. The
    /// provided `config` must match the training configuration.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed metadata, a configuration
    /// fingerprint mismatch, or weight/shape mismatches.
    pub fn load<P: AsRef<std::path::Path>>(
        dir: P,
        config: PipelineConfig,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist;
        let dir = dir.as_ref();
        // Integrity first: a bit flip anywhere fails typed before any
        // blob is decoded. Directories without a manifest are legacy
        // saves and load unchecked.
        persist::verify_manifest(dir)?;
        let fingerprint = std::fs::read_to_string(dir.join("config.txt"))?;
        if fingerprint != persist::config_fingerprint(&config) {
            return Err(crate::persist::PersistError::Meta(format!(
                "config fingerprint mismatch: saved {fingerprint}, requested {}",
                persist::config_fingerprint(&config)
            )));
        }
        let meta = persist::read_meta(&dir.join("meta.txt"))?;
        let tokenizer = persist::read_tokenizer(dir, meta.max_len)?;
        let mut bundle = SubstrateBundle::new_untrained(tokenizer, &config, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let vocab = bundle.tokenizer.vocab().len();
        let condition = ConditionNetwork::with_components(
            vocab,
            &config,
            meta.variant.uses_blip(),
            meta.variant.uses_object_detection(),
            &mut rng,
        );
        let unet = CondUnet::new(crate::lint::unet_config(&config), &mut rng);
        persist::load_module(&bundle.clip.params(), &dir.join("clip.aero"))?;
        persist::load_module(&bundle.vae.params(), &dir.join("vae.aero"))?;
        persist::load_module(&bundle.detector.params(), &dir.join("detector.aero"))?;
        persist::load_module(&condition.params(), &dir.join("condition.aero"))?;
        persist::load_module(&unet.params(), &dir.join("unet.aero"))?;
        bundle.vae.set_latent_scale(meta.latent_scale);
        Ok(AeroDiffusionPipeline {
            config,
            bundle,
            condition,
            unet,
            trainer: DiffusionTrainer::new(config.diffusion),
            provider: meta.provider,
            variant: meta.variant,
        })
    }

    /// The prompt template in use.
    pub fn prompt(&self) -> PromptTemplate {
        self.variant.prompt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};

    fn tiny_dataset(n: usize) -> AerialDataset {
        build_dataset(&DatasetConfig {
            n_scenes: n,
            image_size: PipelineConfig::smoke().vision.image_size,
            seed: 21,
            generator: SceneGeneratorConfig {
                min_objects: 4,
                max_objects: 8,
                night_probability: 0.2,
            },
        })
    }

    #[test]
    fn fit_and_generate_smoke() {
        let ds = tiny_dataset(5);
        let pipeline = AeroDiffusionPipeline::fit(&ds, PipelineConfig::smoke(), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let img = pipeline.generate(&ds.items[0], &mut rng);
        let s = pipeline.config().vision.image_size;
        assert_eq!((img.width(), img.height()), (s, s));
        let t = img.to_tensor();
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
        assert!(t.min() >= 0.0 && t.max() <= 1.0);
    }

    #[test]
    fn generation_responds_to_g_prime() {
        let ds = tiny_dataset(5);
        let pipeline = AeroDiffusionPipeline::fit(&ds, PipelineConfig::smoke(), 5);
        let item = &ds.items[0];
        let a = pipeline.generate_with_description(
            item,
            "a daytime aerial image of a busy highway",
            &mut StdRng::seed_from_u64(9),
        );
        let b = pipeline.generate_with_description(
            item,
            "a nighttime aerial image of a tranquil park",
            &mut StdRng::seed_from_u64(9),
        );
        let diff = a.to_tensor().sub(&b.to_tensor()).abs().max();
        assert!(diff > 1e-6, "target description must steer generation");
    }

    #[test]
    fn save_writes_manifest_and_load_rejects_bit_flips() {
        let ds = tiny_dataset(4);
        let pipeline = AeroDiffusionPipeline::fit(&ds, PipelineConfig::smoke(), 8);
        let dir = std::env::temp_dir().join("aero_pipeline_manifest_e2e");
        let _ = std::fs::remove_dir_all(&dir);
        pipeline.save(&dir).unwrap();
        assert!(dir.join("manifest.txt").exists());
        AeroDiffusionPipeline::load(&dir, PipelineConfig::smoke()).unwrap();

        let path = dir.join("unet.aero");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        match AeroDiffusionPipeline::load(&dir, PipelineConfig::smoke()) {
            Err(crate::persist::PersistError::Corrupt { file, .. }) => {
                assert_eq!(file, "unet.aero");
            }
            other => panic!("expected Corrupt for flipped unet.aero, got {other:?}"),
        }
    }

    #[test]
    fn checkpointed_fit_resumes_bit_identically_after_a_kill() {
        use aero_nn::Module;
        let ds = tiny_dataset(4);
        // Smoke defaults yield 2 joint steps; widen to 8 (4 epochs × 2
        // chunks) so a kill can land mid-epoch between checkpoints.
        let mut config = PipelineConfig::smoke();
        config.diffusion_epochs = 4;
        config.diffusion_batch_size = 2;
        let params_of = |p: &AeroDiffusionPipeline| -> Vec<Vec<f32>> {
            p.unet.params().iter().map(|v| v.to_tensor().as_slice().to_vec()).collect()
        };
        let fresh = |name: &str| {
            let dir = std::env::temp_dir().join(format!("aero_fit_ckpt_{name}"));
            let _ = std::fs::remove_dir_all(&dir);
            CheckpointConfig::new(dir, 2)
        };

        let reference_ckpt = fresh("reference");
        let (reference, ref_report) = AeroDiffusionPipeline::fit_with_checkpoints(
            &ds,
            config,
            LlmProvider::KeypointAware,
            AblationVariant::Full,
            13,
            &reference_ckpt,
            None,
        )
        .unwrap();
        assert!(ref_report.completed);
        assert!(ref_report.steps > 3, "need enough steps to kill mid-run");

        let ckpt = fresh("killed");
        let (_, killed) = AeroDiffusionPipeline::fit_with_checkpoints(
            &ds,
            config,
            LlmProvider::KeypointAware,
            AblationVariant::Full,
            13,
            &ckpt,
            Some(3),
        )
        .unwrap();
        assert!(!killed.completed);

        let (resumed, report) = AeroDiffusionPipeline::fit_with_checkpoints(
            &ds,
            config,
            LlmProvider::KeypointAware,
            AblationVariant::Full,
            13,
            &ckpt,
            None,
        )
        .unwrap();
        assert_eq!(report.resumed_from, Some(2), "newest checkpoint before the kill");
        assert!(report.completed);
        assert_eq!(report.steps, ref_report.steps);
        assert_eq!(
            params_of(&resumed),
            params_of(&reference),
            "resumed fit must land on the uninterrupted trajectory"
        );
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_across_thread_count_change() {
        // A worker killed on a 1-thread host and resumed on a wider one
        // must land on the uninterrupted trajectory exactly: the sharded
        // kernels are bit-identical at any width, so checkpoint resume
        // composes with thread-policy changes for free.
        use aero_nn::Module;
        use aero_tensor::parallel::with_threads;
        let ds = tiny_dataset(4);
        let config = PipelineConfig::smoke();
        let bits_of = |p: &AeroDiffusionPipeline| -> Vec<Vec<u32>> {
            p.unet
                .params()
                .iter()
                .map(|v| v.to_tensor().as_slice().iter().map(|x| x.to_bits()).collect())
                .collect()
        };
        let fresh = |name: &str| {
            let dir = std::env::temp_dir().join(format!("aero_fit_ckpt_{name}"));
            let _ = std::fs::remove_dir_all(&dir);
            CheckpointConfig::new(dir, 1)
        };

        let (reference, ref_report) = with_threads(1, || {
            AeroDiffusionPipeline::fit_with_checkpoints(
                &ds,
                config,
                LlmProvider::KeypointAware,
                AblationVariant::Full,
                23,
                &fresh("threads_ref"),
                None,
            )
        })
        .unwrap();
        assert!(ref_report.completed);
        assert!(ref_report.steps > 1, "need at least two steps to kill between");

        let ckpt = fresh("threads_kill");
        let (_, killed) = with_threads(1, || {
            AeroDiffusionPipeline::fit_with_checkpoints(
                &ds,
                config,
                LlmProvider::KeypointAware,
                AblationVariant::Full,
                23,
                &ckpt,
                Some(1),
            )
        })
        .unwrap();
        assert!(!killed.completed);

        let (resumed, report) = with_threads(4, || {
            AeroDiffusionPipeline::fit_with_checkpoints(
                &ds,
                config,
                LlmProvider::KeypointAware,
                AblationVariant::Full,
                23,
                &ckpt,
                None,
            )
        })
        .unwrap();
        assert_eq!(report.resumed_from, Some(1));
        assert!(report.completed);
        assert_eq!(report.steps, ref_report.steps);
        assert_eq!(
            bits_of(&resumed),
            bits_of(&reference),
            "resume under a different thread count must stay bit-identical"
        );
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_across_backend_change() {
        // The compute backend is a per-process performance knob, not part
        // of a run's identity: checkpoints persist weights, optimizer
        // state, the RNG, and the batch cursor — never the backend. A run
        // checkpointed under the `Reference` oracle and resumed under the
        // `Blocked` microkernels (and vice versa) must land on the exact
        // uninterrupted trajectory, because both backends are bitwise
        // identical and nothing backend-specific is persisted.
        use aero_nn::Module;
        use aero_tensor::backend::{with_backend, BackendKind};
        let ds = tiny_dataset(4);
        let config = PipelineConfig::smoke();
        let bits_of = |p: &AeroDiffusionPipeline| -> Vec<Vec<u32>> {
            p.unet
                .params()
                .iter()
                .map(|v| v.to_tensor().as_slice().iter().map(|x| x.to_bits()).collect())
                .collect()
        };
        let fresh = |name: &str| {
            let dir = std::env::temp_dir().join(format!("aero_fit_ckpt_{name}"));
            let _ = std::fs::remove_dir_all(&dir);
            CheckpointConfig::new(dir, 1)
        };
        let fit = |ckpt: &CheckpointConfig, kill: Option<u64>| {
            AeroDiffusionPipeline::fit_with_checkpoints(
                &ds,
                config,
                LlmProvider::KeypointAware,
                AblationVariant::Full,
                29,
                ckpt,
                kill,
            )
            .unwrap()
        };

        let (reference, ref_report) =
            with_backend(BackendKind::Reference, || fit(&fresh("backend_ref"), None));
        assert!(ref_report.completed);
        assert!(ref_report.steps > 1, "need at least two steps to kill between");
        let expect = bits_of(&reference);

        // Reference → Blocked.
        let ckpt = fresh("backend_r2b");
        let (_, killed) = with_backend(BackendKind::Reference, || fit(&ckpt, Some(1)));
        assert!(!killed.completed);
        let (resumed, report) = with_backend(BackendKind::Blocked, || fit(&ckpt, None));
        assert_eq!(report.resumed_from, Some(1));
        assert!(report.completed);
        assert_eq!(report.steps, ref_report.steps);
        assert_eq!(
            bits_of(&resumed),
            expect,
            "Reference-checkpointed run resumed under Blocked must stay bit-identical"
        );

        // Blocked → Reference.
        let ckpt = fresh("backend_b2r");
        let (_, killed) = with_backend(BackendKind::Blocked, || fit(&ckpt, Some(1)));
        assert!(!killed.completed);
        let (resumed, report) = with_backend(BackendKind::Reference, || fit(&ckpt, None));
        assert_eq!(report.resumed_from, Some(1));
        assert!(report.completed);
        assert_eq!(report.steps, ref_report.steps);
        assert_eq!(
            bits_of(&resumed),
            expect,
            "Blocked-checkpointed run resumed under Reference must stay bit-identical"
        );
    }

    #[test]
    fn clip_score_runs_on_generated_batch() {
        let ds = tiny_dataset(4);
        let pipeline = AeroDiffusionPipeline::fit(&ds, PipelineConfig::smoke(), 6);
        let mut rng = StdRng::seed_from_u64(7);
        let images = pipeline.generate_eval(&ds, &mut rng);
        let captions: Vec<String> =
            ds.iter().map(|i| pipeline.caption_for(i, &mut StdRng::seed_from_u64(0))).collect();
        let score = pipeline.clip_score(&images, &captions);
        assert!(score.is_finite());
    }
}
