//! Pipeline configuration presets.

use aero_diffusion::{BetaSchedule, DiffusionConfig};
use aero_vision::VisionConfig;

/// All hyperparameters of the end-to-end pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Shared vision geometry (image size, embedding dim, widths).
    pub vision: VisionConfig,
    /// Diffusion schedule/sampler settings.
    pub diffusion: DiffusionConfig,
    /// CLIP contrastive pretraining epochs.
    pub clip_epochs: usize,
    /// VAE pretraining epochs.
    pub vae_epochs: usize,
    /// Detector training epochs.
    pub detector_epochs: usize,
    /// Joint UNet + condition-network training epochs (paper: 50).
    pub diffusion_epochs: usize,
    /// Mini-batch size for substrate pretraining.
    pub batch_size: usize,
    /// Mini-batch size for the diffusion stage. Smaller batches buy more
    /// optimizer steps per unit compute, which is what conditioning needs
    /// at reduced scale (see `diag_overfit`).
    pub diffusion_batch_size: usize,
    /// Learning rate for substrate pretraining.
    pub substrate_lr: f32,
    /// Learning rate for the joint diffusion stage (paper: 1e-5; scaled up
    /// for the miniature models trained here).
    pub diffusion_lr: f32,
    /// Maximum regions of interest fed to the augmenter per image.
    pub max_rois: usize,
    /// Detector confidence threshold when proposing ROIs.
    pub roi_confidence: f32,
    /// UNet base channel width.
    pub unet_channels: usize,
    /// Whether the condition network keeps training jointly with the UNet
    /// (Eq. 6). The paper updates both; at reduced scale freezing the
    /// condition network after alignment pretraining makes the UNet's
    /// target stationary and an order of magnitude cheaper per step.
    pub joint_condition_training: bool,
}

impl PipelineConfig {
    /// The paper-faithful configuration (512×512 is reduced to the
    /// simulator's native resolution, everything else matches Section V).
    pub fn paper() -> Self {
        PipelineConfig {
            vision: VisionConfig {
                image_size: 32,
                embed_dim: 32,
                base_channels: 8,
                max_text_len: 48,
            },
            diffusion: DiffusionConfig::paper(),
            clip_epochs: 30,
            vae_epochs: 40,
            detector_epochs: 30,
            diffusion_epochs: 50,
            batch_size: 8,
            diffusion_batch_size: 8,
            substrate_lr: 2e-3,
            diffusion_lr: 1e-3,
            max_rois: 8,
            roi_confidence: 0.1,
            unet_channels: 16,
            joint_condition_training: true,
        }
    }

    /// A CI/bench-scale preset: same code paths, minutes not hours.
    pub fn small() -> Self {
        PipelineConfig {
            vision: VisionConfig {
                image_size: 32,
                embed_dim: 24,
                base_channels: 6,
                max_text_len: 32,
            },
            diffusion: DiffusionConfig::small(),
            clip_epochs: 10,
            vae_epochs: 14,
            detector_epochs: 12,
            // conditioning needs ~10k optimizer steps to be exploited
            // (see the diag_overfit binary); 600 epochs over the 32-image
            // small split at diffusion batch 2 is ~9,600 steps
            diffusion_epochs: 600,
            batch_size: 6,
            diffusion_batch_size: 2,
            substrate_lr: 3e-3,
            diffusion_lr: 3e-3,
            max_rois: 4,
            roi_confidence: 0.08,
            unet_channels: 8,
            joint_condition_training: false,
        }
    }

    /// A minimal preset for unit tests (seconds).
    pub fn smoke() -> Self {
        PipelineConfig {
            vision: VisionConfig::tiny(),
            diffusion: DiffusionConfig::small(),
            clip_epochs: 2,
            vae_epochs: 2,
            detector_epochs: 2,
            diffusion_epochs: 2,
            batch_size: 4,
            diffusion_batch_size: 4,
            substrate_lr: 3e-3,
            diffusion_lr: 3e-3,
            max_rois: 2,
            roi_confidence: 0.05,
            unet_channels: 4,
            joint_condition_training: true,
        }
    }

    /// The dimensionality of the condition vector
    /// `C = [C_xg; C_g; f̂_X]` (three embedding-sized blocks, Eq. 5).
    pub fn cond_dim(&self) -> usize {
        3 * self.vision.embed_dim
    }

    /// Serializes every field as sorted `key=value` lines. Floats are
    /// stored as hexadecimal bit patterns, so the round trip through
    /// [`PipelineConfig::parse_kv`] is exact and the rendering is
    /// byte-stable — the model-artifact metadata section depends on both.
    #[must_use]
    pub fn render_kv(&self) -> String {
        let (schedule, beta_start, beta_end) = match self.diffusion.schedule {
            BetaSchedule::Linear { beta_start, beta_end } => ("linear", beta_start, beta_end),
            BetaSchedule::Cosine => ("cosine", 0.0, 0.0),
            BetaSchedule::ScaledLinear { beta_start, beta_end } => {
                ("scaled_linear", beta_start, beta_end)
            }
        };
        let mut lines = vec![
            format!("batch_size={}", self.batch_size),
            format!("clip_epochs={}", self.clip_epochs),
            format!("detector_epochs={}", self.detector_epochs),
            format!("diffusion.beta_end=0x{:08x}", beta_end.to_bits()),
            format!("diffusion.beta_start=0x{:08x}", beta_start.to_bits()),
            format!("diffusion.cond_dropout=0x{:016x}", self.diffusion.cond_dropout.to_bits()),
            format!("diffusion.ddim_steps={}", self.diffusion.ddim_steps),
            format!("diffusion.guidance_scale=0x{:08x}", self.diffusion.guidance_scale.to_bits()),
            format!("diffusion.schedule={schedule}"),
            format!("diffusion.timesteps={}", self.diffusion.timesteps),
            format!("diffusion_batch_size={}", self.diffusion_batch_size),
            format!("diffusion_epochs={}", self.diffusion_epochs),
            format!("diffusion_lr=0x{:08x}", self.diffusion_lr.to_bits()),
            format!("joint_condition_training={}", self.joint_condition_training),
            format!("max_rois={}", self.max_rois),
            format!("roi_confidence=0x{:08x}", self.roi_confidence.to_bits()),
            format!("substrate_lr=0x{:08x}", self.substrate_lr.to_bits()),
            format!("unet_channels={}", self.unet_channels),
            format!("vae_epochs={}", self.vae_epochs),
            format!("vision.base_channels={}", self.vision.base_channels),
            format!("vision.embed_dim={}", self.vision.embed_dim),
            format!("vision.image_size={}", self.vision.image_size),
            format!("vision.max_text_len={}", self.vision.max_text_len),
        ];
        lines.sort_unstable();
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Parses the `key=value` rendering produced by
    /// [`PipelineConfig::render_kv`] back into a config.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first missing or
    /// malformed field.
    pub fn parse_kv(text: &str) -> Result<PipelineConfig, String> {
        let mut kv = std::collections::BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once('=').ok_or_else(|| format!("not key=value: {line}"))?;
            kv.insert(k.to_string(), v.to_string());
        }
        let usize_field = |k: &str| -> Result<usize, String> {
            kv.get(k)
                .ok_or_else(|| format!("missing {k}"))?
                .parse()
                .map_err(|e| format!("bad {k}: {e}"))
        };
        let f32_field = |k: &str| -> Result<f32, String> {
            let v = kv.get(k).ok_or_else(|| format!("missing {k}"))?;
            let hex = v.strip_prefix("0x").ok_or_else(|| format!("{k} not a bit pattern: {v}"))?;
            u32::from_str_radix(hex, 16).map(f32::from_bits).map_err(|e| format!("bad {k}: {e}"))
        };
        let f64_field = |k: &str| -> Result<f64, String> {
            let v = kv.get(k).ok_or_else(|| format!("missing {k}"))?;
            let hex = v.strip_prefix("0x").ok_or_else(|| format!("{k} not a bit pattern: {v}"))?;
            u64::from_str_radix(hex, 16).map(f64::from_bits).map_err(|e| format!("bad {k}: {e}"))
        };
        let schedule = match kv.get("diffusion.schedule").map(String::as_str) {
            Some("linear") => BetaSchedule::Linear {
                beta_start: f32_field("diffusion.beta_start")?,
                beta_end: f32_field("diffusion.beta_end")?,
            },
            Some("cosine") => BetaSchedule::Cosine,
            Some("scaled_linear") => BetaSchedule::ScaledLinear {
                beta_start: f32_field("diffusion.beta_start")?,
                beta_end: f32_field("diffusion.beta_end")?,
            },
            Some(other) => return Err(format!("unknown diffusion.schedule {other}")),
            None => return Err("missing diffusion.schedule".into()),
        };
        let joint = kv
            .get("joint_condition_training")
            .ok_or("missing joint_condition_training")?
            .parse()
            .map_err(|e| format!("bad joint_condition_training: {e}"))?;
        Ok(PipelineConfig {
            vision: VisionConfig {
                image_size: usize_field("vision.image_size")?,
                embed_dim: usize_field("vision.embed_dim")?,
                base_channels: usize_field("vision.base_channels")?,
                max_text_len: usize_field("vision.max_text_len")?,
            },
            diffusion: DiffusionConfig {
                timesteps: usize_field("diffusion.timesteps")?,
                schedule,
                ddim_steps: usize_field("diffusion.ddim_steps")?,
                guidance_scale: f32_field("diffusion.guidance_scale")?,
                cond_dropout: f64_field("diffusion.cond_dropout")?,
            },
            clip_epochs: usize_field("clip_epochs")?,
            vae_epochs: usize_field("vae_epochs")?,
            detector_epochs: usize_field("detector_epochs")?,
            diffusion_epochs: usize_field("diffusion_epochs")?,
            batch_size: usize_field("batch_size")?,
            diffusion_batch_size: usize_field("diffusion_batch_size")?,
            substrate_lr: f32_field("substrate_lr")?,
            diffusion_lr: f32_field("diffusion_lr")?,
            max_rois: usize_field("max_rois")?,
            roi_confidence: f32_field("roi_confidence")?,
            unet_channels: usize_field("unet_channels")?,
            joint_condition_training: joint,
        })
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_dim_is_three_blocks() {
        let c = PipelineConfig::smoke();
        assert_eq!(c.cond_dim(), 3 * c.vision.embed_dim);
    }

    #[test]
    fn kv_codec_round_trips_every_preset() {
        for config in [PipelineConfig::paper(), PipelineConfig::small(), PipelineConfig::smoke()] {
            let text = config.render_kv();
            let back = PipelineConfig::parse_kv(&text).unwrap();
            assert_eq!(back, config);
            // byte-stable: rendering the parse result reproduces the text
            assert_eq!(back.render_kv(), text);
        }
    }

    #[test]
    fn kv_codec_rejects_missing_and_malformed_fields() {
        let text = PipelineConfig::smoke().render_kv();
        let without = text.lines().filter(|l| !l.starts_with("unet_channels")).fold(
            String::new(),
            |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            },
        );
        assert!(PipelineConfig::parse_kv(&without).unwrap_err().contains("unet_channels"));
        assert!(PipelineConfig::parse_kv("not-a-kv-line\n").is_err());
        let bad_float = text.replace("substrate_lr=0x", "substrate_lr=");
        assert!(PipelineConfig::parse_kv(&bad_float).unwrap_err().contains("substrate_lr"));
    }

    #[test]
    fn paper_preset_matches_section_v() {
        let c = PipelineConfig::paper();
        assert_eq!(c.diffusion.timesteps, 1000);
        assert_eq!(c.diffusion.ddim_steps, 250);
        assert_eq!(c.diffusion.guidance_scale, 7.0);
        assert_eq!(c.diffusion_epochs, 50);
    }
}
