//! Pipeline configuration presets.

use aero_diffusion::DiffusionConfig;
use aero_vision::VisionConfig;

/// All hyperparameters of the end-to-end pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Shared vision geometry (image size, embedding dim, widths).
    pub vision: VisionConfig,
    /// Diffusion schedule/sampler settings.
    pub diffusion: DiffusionConfig,
    /// CLIP contrastive pretraining epochs.
    pub clip_epochs: usize,
    /// VAE pretraining epochs.
    pub vae_epochs: usize,
    /// Detector training epochs.
    pub detector_epochs: usize,
    /// Joint UNet + condition-network training epochs (paper: 50).
    pub diffusion_epochs: usize,
    /// Mini-batch size for substrate pretraining.
    pub batch_size: usize,
    /// Mini-batch size for the diffusion stage. Smaller batches buy more
    /// optimizer steps per unit compute, which is what conditioning needs
    /// at reduced scale (see `diag_overfit`).
    pub diffusion_batch_size: usize,
    /// Learning rate for substrate pretraining.
    pub substrate_lr: f32,
    /// Learning rate for the joint diffusion stage (paper: 1e-5; scaled up
    /// for the miniature models trained here).
    pub diffusion_lr: f32,
    /// Maximum regions of interest fed to the augmenter per image.
    pub max_rois: usize,
    /// Detector confidence threshold when proposing ROIs.
    pub roi_confidence: f32,
    /// UNet base channel width.
    pub unet_channels: usize,
    /// Whether the condition network keeps training jointly with the UNet
    /// (Eq. 6). The paper updates both; at reduced scale freezing the
    /// condition network after alignment pretraining makes the UNet's
    /// target stationary and an order of magnitude cheaper per step.
    pub joint_condition_training: bool,
}

impl PipelineConfig {
    /// The paper-faithful configuration (512×512 is reduced to the
    /// simulator's native resolution, everything else matches Section V).
    pub fn paper() -> Self {
        PipelineConfig {
            vision: VisionConfig {
                image_size: 32,
                embed_dim: 32,
                base_channels: 8,
                max_text_len: 48,
            },
            diffusion: DiffusionConfig::paper(),
            clip_epochs: 30,
            vae_epochs: 40,
            detector_epochs: 30,
            diffusion_epochs: 50,
            batch_size: 8,
            diffusion_batch_size: 8,
            substrate_lr: 2e-3,
            diffusion_lr: 1e-3,
            max_rois: 8,
            roi_confidence: 0.1,
            unet_channels: 16,
            joint_condition_training: true,
        }
    }

    /// A CI/bench-scale preset: same code paths, minutes not hours.
    pub fn small() -> Self {
        PipelineConfig {
            vision: VisionConfig {
                image_size: 32,
                embed_dim: 24,
                base_channels: 6,
                max_text_len: 32,
            },
            diffusion: DiffusionConfig::small(),
            clip_epochs: 10,
            vae_epochs: 14,
            detector_epochs: 12,
            // conditioning needs ~10k optimizer steps to be exploited
            // (see the diag_overfit binary); 600 epochs over the 32-image
            // small split at diffusion batch 2 is ~9,600 steps
            diffusion_epochs: 600,
            batch_size: 6,
            diffusion_batch_size: 2,
            substrate_lr: 3e-3,
            diffusion_lr: 3e-3,
            max_rois: 4,
            roi_confidence: 0.08,
            unet_channels: 8,
            joint_condition_training: false,
        }
    }

    /// A minimal preset for unit tests (seconds).
    pub fn smoke() -> Self {
        PipelineConfig {
            vision: VisionConfig::tiny(),
            diffusion: DiffusionConfig::small(),
            clip_epochs: 2,
            vae_epochs: 2,
            detector_epochs: 2,
            diffusion_epochs: 2,
            batch_size: 4,
            diffusion_batch_size: 4,
            substrate_lr: 3e-3,
            diffusion_lr: 3e-3,
            max_rois: 2,
            roi_confidence: 0.05,
            unet_channels: 4,
            joint_condition_training: true,
        }
    }

    /// The dimensionality of the condition vector
    /// `C = [C_xg; C_g; f̂_X]` (three embedding-sized blocks, Eq. 5).
    pub fn cond_dim(&self) -> usize {
        3 * self.vision.embed_dim
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_dim_is_three_blocks() {
        let c = PipelineConfig::smoke();
        assert_eq!(c.cond_dim(), 3 * c.vision.embed_dim);
    }

    #[test]
    fn paper_preset_matches_section_v() {
        let c = PipelineConfig::paper();
        assert_eq!(c.diffusion.timesteps, 1000);
        assert_eq!(c.diffusion.ddim_steps, 250);
        assert_eq!(c.diffusion.guidance_scale, 7.0);
        assert_eq!(c.diffusion_epochs, 50);
    }
}
