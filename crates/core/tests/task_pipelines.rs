//! Integration tests for the typed [`TaskSpec`] conditioning API: the
//! deprecated shim's bitwise equivalence, the inpainting no-touch
//! guarantee outside the masked footprint, cascade observer reuse, and
//! the heterogeneous-batch mixing contract the serving runtime relies
//! on. One smoke-scale pipeline is trained once and shared.

use aero_diffusion::{DdimSampler, LatentPin, StepEvent, StepSink};
use aero_scene::{
    build_dataset, AerialDataset, Annotation, BBox, DatasetConfig, Homography, Image, ObjectClass,
    SceneGeneratorConfig, Viewpoint,
};
use aero_tensor::Tensor;
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot, TaskSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// The pipeline itself is intentionally `!Sync` (shared autograd nodes),
/// so the shared fixture is its `Send + Sync` snapshot; each test
/// hydrates a private copy — bit-identical to the trained original.
fn fixture() -> &'static (PipelineSnapshot, AerialDataset) {
    static FIX: OnceLock<(PipelineSnapshot, AerialDataset)> = OnceLock::new();
    FIX.get_or_init(|| {
        let config = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 3,
            image_size: config.vision.image_size,
            seed: 11,
            generator: SceneGeneratorConfig::default(),
        });
        let snapshot = AeroDiffusionPipeline::fit(&ds, config, 7).snapshot();
        (snapshot, ds)
    })
}

fn sampler(pipeline: &AeroDiffusionPipeline) -> DdimSampler {
    // 4 steps keeps sampling cheap; the contracts under test are exact
    // (bitwise), not quality-dependent.
    DdimSampler::new(4, pipeline.config().diffusion.guidance_scale)
}

fn image_bits(image: &Image) -> Vec<u32> {
    image.to_tensor().as_slice().iter().map(|v| v.to_bits()).collect()
}

/// The one-release migration shim must stay a pure alias for the task
/// API, or external callers would silently change outputs mid-migration.
#[test]
fn deprecated_shim_is_bitwise_identical_to_the_task_api() {
    let (snapshot, ds) = fixture();
    let pipeline = snapshot.hydrate().expect("snapshot hydrates");
    let item = &ds.items[0];
    let caption = pipeline.caption_for(item, &mut StdRng::seed_from_u64(3));
    let prompt = "an aerial view with more trucks";
    #[allow(deprecated)]
    let old = pipeline.encode_condition(item, &caption, prompt);
    let new = pipeline.encode_task(&TaskSpec::text(item, &caption, prompt));
    assert_eq!(old.shape(), new.shape());
    let (old, new) = (old.as_slice(), new.as_slice());
    assert!(
        old.iter().zip(new).all(|(a, b)| a.to_bits() == b.to_bits()),
        "shim output diverged from encode_task"
    );
}

/// The inpainting acceptance bar: pixels outside the keypoint boxes'
/// latent footprint are unchanged up to the VAE round-trip. The decoder
/// upsamples with non-overlapping 2×2 transposed convolutions and one
/// 3×3 output convolution, so a writable latent cell's influence is its
/// 4×4 pixel block dilated by exactly one pixel — everything beyond
/// that must decode bit-identically to `decode(encode(source))`.
#[test]
fn inpaint_preserves_pixels_outside_the_masked_footprint() {
    let (snapshot, ds) = fixture();
    let pipeline = snapshot.hydrate().expect("snapshot hydrates");
    let source = ds.items[1].rendered.image.clone();
    let s = pipeline.config().vision.image_size;
    let regions =
        vec![Annotation { class: ObjectClass::ALL[0], bbox: BBox::new(5.0, 5.0, 9.0, 9.0) }];
    let task = TaskSpec::inpaint(source.clone(), regions.clone(), "a truck parked on the lot");
    let out = pipeline.run_task(&task, &sampler(&pipeline), 21, StepSink::none());

    let [c, h, w] = pipeline.latent_shape();
    let baseline =
        pipeline.decode_latent(&pipeline.encode_image_latent(&source).reshape(&[c, h, w]));
    let mask = pipeline.latent_mask(&regions);
    let mask = mask.as_slice();
    let cell = s / w;
    let (out_t, base_t) = (out.to_tensor(), baseline.to_tensor());
    let (out_t, base_t) = (out_t.as_slice(), base_t.as_slice());
    let mut outside = 0usize;
    for py in 0..s {
        for px in 0..s {
            // Inside any writable cell's dilated pixel block?
            let writable = (0..h).any(|ly| {
                (0..w).any(|lx| {
                    mask[ly * w + lx] != 0.0
                        && px + 1 >= lx * cell
                        && px <= lx * cell + cell
                        && py + 1 >= ly * cell
                        && py <= ly * cell + cell
                })
            });
            if writable {
                continue;
            }
            outside += 1;
            for chan in 0..3 {
                let i = chan * s * s + py * s + px;
                assert_eq!(
                    out_t[i].to_bits(),
                    base_t[i].to_bits(),
                    "pixel ({px},{py}) channel {chan} outside the mask footprint changed"
                );
            }
        }
    }
    assert!(outside > 0, "mask footprint covered the whole image; test is vacuous");
    assert_ne!(
        image_bits(&out),
        image_bits(&baseline),
        "inpainting changed nothing inside the mask"
    );
}

/// View translation and the super-resolution cascade are deterministic
/// in `(task, sampler, seed)` and produce native-resolution images; the
/// cascade reports both stages through one reborrowed step sink.
#[test]
fn view_and_superres_tasks_are_deterministic_end_to_end() {
    let (snapshot, ds) = fixture();
    let pipeline = snapshot.hydrate().expect("snapshot hydrates");
    let s = pipeline.config().vision.image_size;
    let sampler = sampler(&pipeline);
    let source = ds.items[2].rendered.image.clone();
    let homography = Homography::between(
        source.width(),
        source.height(),
        &Viewpoint::default(),
        &Viewpoint { altitude: 0.7, pitch_deg: 65.0, heading_deg: 40.0 },
    );
    let view = TaskSpec::view(source, homography, "the same block from the south east");
    let a = pipeline.run_task(&view, &sampler, 9, StepSink::none());
    let b = pipeline.run_task(&view, &sampler, 9, StepSink::none());
    assert_eq!((a.width(), a.height()), (s, s));
    assert_eq!(image_bits(&a), image_bits(&b), "view translation must be seed-deterministic");

    let item = &ds.items[0];
    let mut steps_seen = 0usize;
    let cascade = {
        let mut on_step = |_: StepEvent<'_>| steps_seen += 1;
        pipeline.super_res_cascade(
            item,
            "a sharper aerial photo",
            &sampler,
            5,
            StepSink::new(&mut on_step),
        )
    };
    let again =
        pipeline.super_res_cascade(item, "a sharper aerial photo", &sampler, 5, StepSink::none());
    assert_eq!((cascade.width(), cascade.height()), (s, s));
    assert_eq!(image_bits(&cascade), image_bits(&again), "cascade must be seed-deterministic");
    // Half-budget draft (4/2 = 2 steps) + full-budget super-resolve (4)
    // both report into the same sink.
    assert_eq!(steps_seen, 6, "one sink must observe every step of both cascade stages");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The serving batcher's mixing contract, pipeline-side: a
    /// heterogeneous batch (text + view + inpaint) coalesced into one
    /// sampler call — per-row RNG drawing `z_init` first and pin noise
    /// second, neutral pin rows for non-inpaint tasks — is byte-identical
    /// per row to three solo `run_task` calls, in any row order.
    #[test]
    fn heterogeneous_batches_match_solo_runs_bitwise(
        s0 in 0u64..1000,
        s1 in 0u64..1000,
        s2 in 0u64..1000,
        rot in 0usize..3,
    ) {
        let seeds = [s0, s1, s2];
        let (snapshot, ds) = fixture();
        let pipeline = snapshot.hydrate().expect("snapshot hydrates");
        let item = &ds.items[0];
        let caption = pipeline.caption_for(item, &mut StdRng::seed_from_u64(0));
        let source = ds.items[1].rendered.image.clone();
        let homography = Homography::between(
            source.width(),
            source.height(),
            &Viewpoint::default(),
            &Viewpoint { altitude: 0.6, pitch_deg: 60.0, heading_deg: 30.0 },
        );
        let mut specs = [
            TaskSpec::text(item, &caption, "an aerial view of a park"),
            TaskSpec::view(source.clone(), homography, "the park from the north"),
            TaskSpec::inpaint(
                source,
                vec![Annotation { class: ObjectClass::ALL[1], bbox: BBox::new(4.0, 4.0, 11.0, 10.0) }],
                "a bus at the center",
            ),
        ];
        specs.rotate_left(rot);

        let sampler = sampler(&pipeline);
        let [c, h, w] = pipeline.latent_shape();
        // Mirror the serving batcher exactly: per-row seeded RNG draws
        // the initial latent, then (for inpaint rows) the pin noise;
        // non-pin rows get a neutral all-writable pin row.
        let conds: Vec<Tensor> = specs.iter().map(|t| pipeline.encode_task(t)).collect();
        let cond_batch = Tensor::concat(&conds.iter().collect::<Vec<_>>(), 0);
        let (mut z_rows, mut masks, mut refs, mut noises) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let mut any_pin = false;
        for (spec, &seed) in specs.iter().zip(&seeds) {
            let mut rng = StdRng::seed_from_u64(seed);
            z_rows.push(Tensor::randn(&[1, c, h, w], &mut rng));
            match spec {
                TaskSpec::Inpaint { source, regions, .. } => {
                    masks.push(pipeline.latent_mask(regions));
                    refs.push(pipeline.encode_image_latent(source));
                    noises.push(Tensor::randn(&[1, c, h, w], &mut rng));
                    any_pin = true;
                }
                _ => {
                    masks.push(Tensor::full(&[1, c, h, w], 1.0));
                    refs.push(Tensor::full(&[1, c, h, w], 0.0));
                    noises.push(Tensor::full(&[1, c, h, w], 0.0));
                }
            }
        }
        let z_init = Tensor::concat(&z_rows.iter().collect::<Vec<_>>(), 0);
        let pin = any_pin.then(|| {
            LatentPin::new(
                Tensor::concat(&masks.iter().collect::<Vec<_>>(), 0),
                Tensor::concat(&refs.iter().collect::<Vec<_>>(), 0),
                Tensor::concat(&noises.iter().collect::<Vec<_>>(), 0),
            )
        });
        let z = pipeline.sample_latents_controlled(
            &sampler,
            z_init,
            &cond_batch,
            pin.as_ref(),
            None,
            StepSink::none(),
        );
        for (row, (spec, &seed)) in specs.iter().zip(&seeds).enumerate() {
            let batched = pipeline.decode_latent(&z.narrow(0, row, 1).reshape(&[c, h, w]));
            let solo = pipeline.run_task(spec, &sampler, seed, StepSink::none());
            prop_assert_eq!(
                image_bits(&batched),
                image_bits(&solo),
                "row {} ({:?}) diverged from its solo run", row, spec.kind()
            );
        }
    }
}
