//! Pluggable destinations for finished traces.
//!
//! A [`TraceSink`] receives each finished [`Trace`] and decides how to
//! persist or render it. The three built-ins cover the workspace's
//! needs: [`NoopSink`] (an empty inline method the compiler erases),
//! [`NdjsonTraceSink`] (one JSON object per aggregated span path — the
//! serve server's wire format), and [`TableTraceSink`] (the indented
//! human-readable tree the `profile` CLI subcommand prints).

use crate::span::Trace;

/// A destination for finished traces.
pub trait TraceSink {
    /// Consumes one finished trace.
    fn consume(&mut self, trace: &Trace);
}

/// Discards every trace. `consume` is an empty inline method, so a
/// generic caller monomorphised over `NoopSink` compiles the sink call
/// away entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn consume(&mut self, _trace: &Trace) {}
}

/// Buffers each trace as NDJSON lines — one JSON object per aggregated
/// span path. Drain with [`take_lines`](NdjsonTraceSink::take_lines).
#[derive(Debug, Default)]
pub struct NdjsonTraceSink {
    lines: Vec<String>,
}

impl NdjsonTraceSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        NdjsonTraceSink::default()
    }

    /// Returns and clears the buffered NDJSON lines.
    pub fn take_lines(&mut self) -> Vec<String> {
        std::mem::take(&mut self.lines)
    }
}

impl TraceSink for NdjsonTraceSink {
    fn consume(&mut self, trace: &Trace) {
        self.lines.extend(trace.render_ndjson_objects());
    }
}

/// Buffers each trace as the indented tree [`Trace::render_tree`]
/// produces. Drain with [`take_rendered`](TableTraceSink::take_rendered).
#[derive(Debug, Default)]
pub struct TableTraceSink {
    rendered: String,
}

impl TableTraceSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        TableTraceSink::default()
    }

    /// Returns and clears the accumulated rendered text.
    pub fn take_rendered(&mut self) -> String {
        std::mem::take(&mut self.rendered)
    }
}

impl TraceSink for TableTraceSink {
    fn consume(&mut self, trace: &Trace) {
        self.rendered.push_str(&trace.render_tree());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{collect, enter};

    fn sample_trace() -> Trace {
        let (_, trace) = collect(|| {
            let _root = enter("root");
            let _leaf = enter("leaf");
        });
        trace
    }

    #[test]
    fn noop_sink_accepts_traces() {
        let mut sink = NoopSink;
        sink.consume(&sample_trace());
    }

    #[test]
    fn ndjson_sink_buffers_and_drains() {
        let mut sink = NdjsonTraceSink::new();
        sink.consume(&sample_trace());
        let lines = sink.take_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"span\":\"root\""), "{}", lines[0]);
        assert!(sink.take_lines().is_empty());
    }

    #[test]
    fn table_sink_renders_tree() {
        let mut sink = TableTraceSink::new();
        sink.consume(&sample_trace());
        let text = sink.take_rendered();
        assert!(text.contains("root"), "{text}");
        assert!(text.contains("  leaf"), "{text}");
        assert!(sink.take_rendered().is_empty());
    }
}
