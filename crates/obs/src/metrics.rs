//! Typed counters, gauges and histograms in a thread-safe registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are shared `Arc`s
//! resolved from a [`Registry`] by name once; every subsequent
//! observation is a relaxed atomic operation with no locking, so
//! instrumented hot paths (tensor kernels, per-request serving code)
//! pay nanoseconds, not mutexes. Snapshots are point-in-time copies
//! ordered by metric name, rendered either as an aligned text table or
//! as NDJSON objects.
//!
//! Metric names are `&'static str` identifiers (`"tensor.matmul.calls"`);
//! they are emitted verbatim into NDJSON, so they must not contain
//! quotes or backslashes — which identifier-style dotted names never do.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // lint: relaxed-ok(monotonic counter; readers only ever see a stale total)
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point value (queue depth, last loss).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value (0.0 before the first `set`).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Gauge {
    fn new() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }
}

/// A fixed-bucket histogram of `u64` observations (latencies in
/// microseconds, batch sizes).
///
/// Bucket `i` counts observations `<=` `bounds[i]`; one implicit
/// overflow bucket counts everything above the last bound. `sum` and
/// `count` are tracked exactly, so means are exact even though
/// percentiles are bucket-resolution approximations.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds (plus
    /// the implicit overflow bucket).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly ascending");
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, buckets, sum: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    /// Exponential microsecond bounds `1, 2, 4, … ~67s`: the default
    /// latency scale.
    #[must_use]
    pub fn exponential_us() -> Vec<u64> {
        (0..27).map(|i| 1u64 << i).collect()
    }

    /// Linear bounds `0, 1, …, max`: the batch-occupancy scale, where
    /// each bucket is one exact size.
    #[must_use]
    pub fn linear(max: u64) -> Vec<u64> {
        (0..=max).collect()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        // lint: relaxed-ok(histogram fields are independently monotonic; snapshots tolerate tearing)
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // lint: relaxed-ok(histogram fields are independently monotonic; snapshots tolerate tearing)
        self.sum.fetch_add(value, Ordering::Relaxed);
        // lint: relaxed-ok(histogram fields are independently monotonic; snapshots tolerate tearing)
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of bounds and bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending upper bounds; `buckets` has one extra overflow entry.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Exact sum of observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The upper bound of the bucket containing quantile `q` (0..=1) —
    /// a bucket-resolution approximation. Returns 0 when empty; the
    /// overflow bucket reports the last finite bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(*self.bounds.last().expect("bounds"));
            }
        }
        *self.bounds.last().expect("bounds")
    }

    /// Mean of observed values (exact, from `sum`/`count`).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named family of metrics. Instantiable — the serving runtime owns a
/// private registry per runtime so concurrent runtimes (and tests)
/// never share counters — with one process-global instance ([`global`])
/// for ambient instrumentation.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Metric maps hold only atomics; a panic mid-insert cannot leave
    // them in a state worth poisoning every other thread over.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(lock(&self.counters).entry(name).or_default())
    }

    /// The gauge registered under `name`, creating it on first use.
    #[must_use]
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(lock(&self.gauges).entry(name).or_insert_with(|| Arc::new(Gauge::new())))
    }

    /// The histogram registered under `name`, creating it with `bounds`
    /// on first use (later calls ignore `bounds` and return the
    /// existing instance).
    ///
    /// # Panics
    ///
    /// Panics if a first-use `bounds` is empty or not ascending.
    #[must_use]
    pub fn histogram(&self, name: &'static str, bounds: &[u64]) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.histograms)
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(bounds.to_vec()))),
        )
    }

    /// A consistent point-in-time copy of every registered metric,
    /// ordered by name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters).iter().map(|(&n, c)| (n.into(), c.get())).collect(),
            gauges: lock(&self.gauges).iter().map(|(&n, g)| (n.into(), g.get())).collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(&n, h)| (n.into(), h.snapshot()))
                .collect(),
        }
    }
}

/// The process-global registry for ambient instrumentation (tensor
/// kernels, diffusion training, pipeline stages).
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Resolves a process-global [`Counter`] once per call site and caches
/// the `Arc` handle in a static, so the per-call cost after the first
/// hit is one relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().counter($name)).as_ref()
    }};
}

/// Resolves a process-global [`Gauge`] once per call site and caches
/// the `Arc` handle in a static.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().gauge($name)).as_ref()
    }};
}

/// Resolves a process-global [`Histogram`] once per call site and
/// caches the `Arc` handle in a static. The bounds expression is
/// evaluated only on the first hit.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().histogram($name, &$bounds)).as_ref()
    }};
}

/// A point-in-time copy of a registry, ordered by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Appends another snapshot's metrics (used to merge a subsystem
    /// registry with the global one into a single report).
    pub fn merge(&mut self, other: MetricsSnapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self.counters.sort();
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// The counter total under `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// An aligned human-readable table of every metric.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:<width$}  {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name:<width$}  {v:.3}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name:<width$}  count {}  mean {:.1}  p50 {}  p99 {}\n",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
            ));
        }
        out
    }

    /// One NDJSON line per metric (`{"metric":…,"type":…,…}`). Names
    /// are emitted verbatim; see the module docs for the identifier
    /// constraint that makes this safe without an escaper.
    #[must_use]
    pub fn render_ndjson(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, v) in &self.counters {
            lines.push(format!("{{\"metric\":\"{name}\",\"type\":\"counter\",\"value\":{v}}}"));
        }
        for (name, v) in &self.gauges {
            lines.push(format!("{{\"metric\":\"{name}\",\"type\":\"gauge\",\"value\":{v}}}"));
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h
                .bounds
                .iter()
                .map(ToString::to_string)
                .chain(std::iter::once("null".to_string()))
                .zip(&h.buckets)
                .map(|(le, c)| format!("[{le},{c}]"))
                .collect();
            lines.push(format!(
                "{{\"metric\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                 \"buckets\":[{}]}}",
                h.count,
                h.sum,
                buckets.join(",")
            ));
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("test.events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same instance.
        assert_eq!(r.counter("test.events").get(), 5);
        let g = r.gauge("test.depth");
        g.set(3.5);
        assert_eq!(r.gauge("test.depth").get(), 3.5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(vec![1, 2, 4, 8]);
        for v in [0, 1, 2, 3, 5, 9, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 120);
        // <=1: {0,1}, <=2: {2}, <=4: {3}, <=8: {5}, overflow: {9,100}
        assert_eq!(s.buckets, vec![2, 1, 1, 1, 2]);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.quantile(0.5), 4);
        assert_eq!(s.quantile(1.0), 8); // overflow reports the last bound
        assert!((s.mean() - 120.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = Histogram::new(Histogram::exponential_us()).snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_merges() {
        let a = Registry::new();
        a.counter("b.second").inc();
        a.counter("a.first").add(2);
        let mut snap = a.snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        let b = Registry::new();
        b.counter("a.extra").add(7);
        snap.merge(b.snapshot());
        assert_eq!(snap.counter("a.extra"), Some(7));
        assert_eq!(snap.counters.len(), 3);
        assert_eq!(snap.counters[0].0, "a.extra");
    }

    #[test]
    fn ndjson_lines_are_wellformed() {
        let r = Registry::new();
        r.counter("x.calls").add(3);
        r.histogram("x.lat", &[1, 10]).observe(5);
        let lines = r.snapshot().render_ndjson();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"metric\":\"x.calls\""));
        assert!(lines[1].contains("\"buckets\":[[1,0],[10,1],[null,0]]"), "{}", lines[1]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![4, 2]);
    }
}
