//! Hierarchical wall-clock spans with monotonic timing.
//!
//! Tracing is opt-in per thread: [`collect`] installs a thread-local
//! collector for the duration of a closure and returns the finished
//! [`Trace`]. Outside a `collect` scope, [`enter`] (and the [`span!`]
//! macro wrapping it) costs one thread-local read and a branch and
//! allocates nothing, so instrumentation can stay in hot paths
//! permanently.
//!
//! Spans nest lexically via RAII: the [`SpanGuard`] returned by
//! [`enter`] closes the span when dropped, attaching it to whichever
//! span was open on the same thread at entry time. Inclusive time is
//! the guard's lifetime; exclusive (self) time is inclusive minus the
//! children's inclusive times.

use std::cell::RefCell;
use std::time::Instant;

/// One finished span: a name, its nested children, and monotonic
/// inclusive timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Static span name, e.g. `"unet.denoise_step"`.
    pub name: &'static str,
    /// Wall-clock nanoseconds between enter and drop.
    pub inclusive_nanos: u128,
    /// Spans opened (and closed) while this one was the innermost.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Inclusive time minus the children's inclusive times (saturating:
    /// clock granularity can make children appear marginally longer).
    #[must_use]
    pub fn exclusive_nanos(&self) -> u128 {
        let child_total: u128 = self.children.iter().map(|c| c.inclusive_nanos).sum();
        self.inclusive_nanos.saturating_sub(child_total)
    }

    /// Total spans in this subtree, including self.
    #[must_use]
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }
}

/// A finished collection scope: the forest of root spans closed while
/// the collector was installed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Top-level spans, in completion order.
    pub roots: Vec<SpanNode>,
}

impl Trace {
    /// True when no spans were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total spans across all roots.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.roots.iter().map(SpanNode::span_count).sum()
    }

    /// Renders the trace as an indented tree, aggregating same-name
    /// siblings into one line with a `×N` multiplier (a 30-step sampler
    /// loop prints one `unet.denoise_step ×30` line, not thirty).
    ///
    /// ```text
    /// sampler.ddim                 12.40ms  (self 0.52ms)
    ///   unet.denoise_step ×30      11.88ms  (self 11.88ms)
    /// ```
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        render_level(&self.roots, 0, &mut out);
        out
    }

    /// One NDJSON-ready JSON object per aggregated span path:
    /// `{"span":"a/b","count":2,"inclusive_us":…,"exclusive_us":…}`.
    /// Span names are static identifiers, so no string escaping is
    /// needed.
    #[must_use]
    pub fn render_ndjson_objects(&self) -> Vec<String> {
        let mut lines = Vec::new();
        flatten_ndjson(&self.roots, "", &mut lines);
        lines
    }
}

/// Aggregate view of same-name siblings at one tree level.
struct Aggregate<'a> {
    name: &'static str,
    count: usize,
    inclusive: u128,
    exclusive: u128,
    children: Vec<&'a SpanNode>,
}

fn aggregate_level(nodes: &[SpanNode]) -> Vec<Aggregate<'_>> {
    let mut out: Vec<Aggregate<'_>> = Vec::new();
    for node in nodes {
        if let Some(agg) = out.iter_mut().find(|a| a.name == node.name) {
            agg.count += 1;
            agg.inclusive += node.inclusive_nanos;
            agg.exclusive += node.exclusive_nanos();
            agg.children.extend(&node.children);
        } else {
            out.push(Aggregate {
                name: node.name,
                count: 1,
                inclusive: node.inclusive_nanos,
                exclusive: node.exclusive_nanos(),
                children: node.children.iter().collect(),
            });
        }
    }
    out
}

fn fmt_ms(nanos: u128) -> String {
    format!("{:.2}ms", nanos as f64 / 1e6)
}

fn render_level(nodes: &[SpanNode], depth: usize, out: &mut String) {
    for agg in aggregate_level(nodes) {
        let label = if agg.count > 1 {
            format!("{} ×{}", agg.name, agg.count)
        } else {
            agg.name.to_string()
        };
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{label:<width$}  {:>10}  (self {})\n",
            fmt_ms(agg.inclusive),
            fmt_ms(agg.exclusive),
            width = 36usize.saturating_sub(indent.len()),
        ));
        let children: Vec<SpanNode> = agg.children.iter().map(|&c| c.clone()).collect();
        render_level(&children, depth + 1, out);
    }
}

fn flatten_ndjson(nodes: &[SpanNode], prefix: &str, lines: &mut Vec<String>) {
    for agg in aggregate_level(nodes) {
        let path =
            if prefix.is_empty() { agg.name.to_string() } else { format!("{prefix}/{}", agg.name) };
        lines.push(format!(
            "{{\"span\":\"{path}\",\"count\":{},\"inclusive_us\":{},\"exclusive_us\":{}}}",
            agg.count,
            agg.inclusive / 1_000,
            agg.exclusive / 1_000,
        ));
        let children: Vec<SpanNode> = agg.children.iter().map(|&c| c.clone()).collect();
        flatten_ndjson(&children, &path, lines);
    }
}

/// An in-flight span on one thread's stack.
struct Frame {
    name: &'static str,
    start: Instant,
    children: Vec<SpanNode>,
}

/// Per-thread collector state: the stack of open frames plus finished
/// roots.
#[derive(Default)]
struct Collector {
    stack: Vec<Frame>,
    roots: Vec<SpanNode>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Runs `f` with span collection enabled on this thread, returning its
/// result plus the trace of every span closed inside.
///
/// Nested `collect` calls shadow the outer collector for their scope
/// (the inner trace owns its spans; the outer collector resumes after).
/// Panic-safe: the previous collector state is restored even if `f`
/// unwinds, via the drop guard.
pub fn collect<T>(f: impl FnOnce() -> T) -> (T, Trace) {
    struct Restore {
        previous: Option<Collector>,
        done: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            if !self.done {
                COLLECTOR.with(|c| *c.borrow_mut() = self.previous.take());
            }
        }
    }

    let previous = COLLECTOR.with(|c| c.borrow_mut().replace(Collector::default()));
    let mut restore = Restore { previous, done: false };
    let value = f();
    let collector = COLLECTOR.with(|c| c.borrow_mut().take()).unwrap_or_default();
    COLLECTOR.with(|c| *c.borrow_mut() = restore.previous.take());
    restore.done = true;
    // Frames still open here belong to guards that outlived the closure
    // (a leak on the caller's part); drop them rather than fabricate
    // end times.
    (value, Trace { roots: collector.roots })
}

/// True when a collector is installed on this thread (i.e. spans are
/// currently being recorded).
#[must_use]
pub fn is_collecting() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Opens a span named `name` if this thread is collecting; a no-op
/// guard otherwise. Prefer the [`span!`](crate::span!) macro, which
/// names the guard for you.
pub fn enter(name: &'static str) -> SpanGuard {
    let active = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if let Some(collector) = slot.as_mut() {
            collector.stack.push(Frame { name, start: Instant::now(), children: Vec::new() });
            true
        } else {
            false
        }
    });
    SpanGuard { active }
}

/// RAII guard closing a span on drop. Returned by [`enter`].
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            let Some(collector) = slot.as_mut() else {
                return; // collect() scope already ended; nothing to attach to
            };
            let Some(frame) = collector.stack.pop() else {
                return;
            };
            let node = SpanNode {
                name: frame.name,
                inclusive_nanos: frame.start.elapsed().as_nanos(),
                children: frame.children,
            };
            match collector.stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => collector.roots.push(node),
            }
        });
    }
}

/// Opens a scoped span: `let _span = span!("pipeline.decode_latent");`
/// The guard closes the span at the end of the enclosing scope. Costs a
/// thread-local read and a branch when tracing is off.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_collector_records_nothing() {
        assert!(!is_collecting());
        let guard = enter("orphan");
        drop(guard);
        let ((), trace) = collect(|| {});
        assert!(trace.is_empty());
    }

    #[test]
    fn nesting_builds_a_tree() {
        let (value, trace) = collect(|| {
            let _outer = enter("outer");
            {
                let _inner = enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _inner = enter("inner");
            }
            42
        });
        assert_eq!(value, 42);
        assert_eq!(trace.roots.len(), 1);
        let outer = &trace.roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.children.len(), 2);
        assert!(outer.children.iter().all(|c| c.name == "inner"));
        assert_eq!(trace.span_count(), 3);
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let (_, trace) = collect(|| {
            let _outer = enter("outer");
            let _inner = enter("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        let outer = &trace.roots[0];
        let child = &outer.children[0];
        assert!(outer.inclusive_nanos >= child.inclusive_nanos);
        assert_eq!(outer.exclusive_nanos(), outer.inclusive_nanos - child.inclusive_nanos);
        // The inner span holds the sleep; outer self-time is the small remainder.
        assert!(child.inclusive_nanos >= 2_000_000);
        assert!(outer.exclusive_nanos() < child.inclusive_nanos);
    }

    #[test]
    fn siblings_aggregate_in_render() {
        let (_, trace) = collect(|| {
            let _root = enter("sampler.ddim");
            for _ in 0..3 {
                let _step = enter("unet.denoise_step");
            }
        });
        let tree = trace.render_tree();
        assert!(tree.contains("unet.denoise_step ×3"), "{tree}");
        assert!(tree.contains("sampler.ddim"), "{tree}");
        let lines = trace.render_ndjson_objects();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"span\":\"sampler.ddim/unet.denoise_step\""), "{}", lines[1]);
        assert!(lines[1].contains("\"count\":3"), "{}", lines[1]);
    }

    #[test]
    fn nested_collect_shadows_outer() {
        let (_, outer_trace) = collect(|| {
            let _a = enter("outer_span");
            drop(_a);
            let ((), inner_trace) = collect(|| {
                let _b = enter("inner_span");
            });
            assert_eq!(inner_trace.roots.len(), 1);
            assert_eq!(inner_trace.roots[0].name, "inner_span");
            let _c = enter("outer_span_2");
        });
        let names: Vec<_> = outer_trace.roots.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["outer_span", "outer_span_2"]);
    }

    #[test]
    fn collect_is_panic_safe() {
        let caught = std::panic::catch_unwind(|| {
            let (_, _) = collect(|| {
                let _s = enter("doomed");
                panic!("boom");
            });
        });
        assert!(caught.is_err());
        // Collector state was restored: a fresh collect works normally.
        assert!(!is_collecting());
        let (_, trace) = collect(|| {
            let _s = enter("after");
        });
        assert_eq!(trace.roots.len(), 1);
    }
}
