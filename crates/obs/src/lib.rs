//! `aero-obs`: zero-dependency, offline, thread-safe observability for
//! the AeroDiffusion stack.
//!
//! The crate provides three independent layers:
//!
//! - **Metrics** ([`metrics`]): typed [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s held in a [`Registry`]. The hot path is a single
//!   relaxed atomic operation on a pre-resolved handle; name resolution
//!   (one mutex-guarded map lookup) happens once, at handle-acquisition
//!   time. A process-global registry ([`global`]) collects the
//!   instrumentation baked into the tensor kernels, the diffusion
//!   trainer and the pipeline; subsystems that need isolated counters
//!   (the serving runtime, tests) own private [`Registry`] instances
//!   and merge snapshots when reporting.
//! - **Spans** ([`span`]): hierarchical wall-clock spans with monotonic
//!   timing. Tracing is *opt-in per thread*: [`span::collect`] installs
//!   a collector for the duration of a closure and returns the finished
//!   [`Trace`]; outside a `collect` scope the [`span!`] macro costs one
//!   thread-local read and a branch, and allocates nothing.
//! - **Sinks** ([`sink`]): where finished traces go. [`NdjsonTraceSink`]
//!   renders one JSON object per aggregated span path (the serve
//!   server's wire format), [`TableTraceSink`] renders the
//!   human-readable tree the `profile` CLI subcommand prints, and
//!   [`NoopSink`] is an empty inline method the compiler erases.
//!
//! **Determinism guarantee:** nothing in this crate feeds back into
//! computation. Counters count, spans time, sinks format — no numeric
//! result anywhere in the workspace may depend on whether observation
//! was enabled, and `tools/ci.sh` byte-compares a sampled image with
//! tracing on and off to hold the line.

pub mod metrics;
pub mod sink;
pub mod span;

pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use sink::{NdjsonTraceSink, NoopSink, TableTraceSink, TraceSink};
pub use span::{SpanGuard, SpanNode, Trace};
