//! Concurrency stress: counters and histograms hammered from 8 threads
//! must report exact totals — lock-free does not mean lossy.

use std::sync::Arc;

use aero_obs::{Histogram, Registry};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn counters_are_exact_under_contention() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                // Resolve the handle inside the thread so registration
                // itself also races.
                let calls = registry.counter("stress.calls");
                let weighted = registry.counter("stress.weighted");
                for i in 0..PER_THREAD {
                    calls.inc();
                    weighted.add(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("stress.calls"), Some(THREADS * PER_THREAD));
    // Sum of 0..THREADS*PER_THREAD
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.counter("stress.weighted"), Some(n * (n - 1) / 2));
}

#[test]
fn histogram_totals_are_exact_under_contention() {
    let registry = Arc::new(Registry::new());
    let bounds = Histogram::exponential_us();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let bounds = bounds.clone();
            std::thread::spawn(move || {
                let hist = registry.histogram("stress.latency_us", &bounds);
                for i in 0..PER_THREAD {
                    hist.observe((t * 31 + i * 7) % 5000);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    let expected_sum: u64 =
        (0..THREADS).flat_map(|t| (0..PER_THREAD).map(move |i| (t * 31 + i * 7) % 5000)).sum();
    let snap = registry.histogram("stress.latency_us", &bounds).snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

#[test]
fn gauge_last_write_wins_without_tearing() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let g = registry.gauge("stress.depth");
                for i in 0..PER_THREAD {
                    g.set((t * PER_THREAD + i) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    // Atomic u64-bits storage: the final value must be one of the
    // values actually written, never a torn mix.
    let v = registry.gauge("stress.depth").get();
    assert!(v.fract() == 0.0 && v >= 0.0 && v < (THREADS * PER_THREAD) as f64);
}
