//! Property-based invariants for the metrics layer.

use aero_obs::Histogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket counts (including overflow) always sum to the observation
    /// count, and the exact sum matches.
    #[test]
    fn histogram_buckets_sum_to_count(values in prop::collection::vec(0u64..200_000, 0..200)) {
        let hist = Histogram::new(Histogram::exponential_us());
        for &v in &values {
            hist.observe(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.len(), snap.bounds.len() + 1);
    }

    /// Each observation lands in exactly the first bucket whose bound
    /// admits it.
    #[test]
    fn observation_lands_in_correct_bucket(v in 0u64..100_000) {
        let bounds = Histogram::exponential_us();
        let hist = Histogram::new(bounds.clone());
        hist.observe(v);
        let snap = hist.snapshot();
        let expected = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
        for (i, &c) in snap.buckets.iter().enumerate() {
            prop_assert_eq!(c, u64::from(i == expected), "value {} bucket {}", v, i);
        }
    }

    /// Quantiles are monotone in q and bounded by the bucket range.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(0u64..10_000, 1..100)) {
        let hist = Histogram::new(Histogram::exponential_us());
        for &v in &values {
            hist.observe(v);
        }
        let snap = hist.snapshot();
        let p50 = snap.quantile(0.5);
        let p90 = snap.quantile(0.9);
        let p99 = snap.quantile(0.99);
        prop_assert!(p50 <= p90 && p90 <= p99, "{} {} {}", p50, p90, p99);
        let max = *values.iter().max().expect("nonempty");
        // The containing bucket's upper bound is >= the true quantile value.
        prop_assert!(p99 >= max.min(snap.bounds[snap.bounds.len() - 1]) / 2);
    }
}
