//! End-to-end checkpoint/resume contract tests.
//!
//! The claim under test: a training run killed at an arbitrary step and
//! restarted with the same arguments lands on a *bit-identical*
//! parameter trajectory — because checkpoints carry the optimizer
//! moments, the RNG state, and the in-epoch batch order alongside the
//! weights — and a corrupt checkpoint is skipped in favor of the newest
//! valid one rather than trusted.

use aero_diffusion::{
    list_checkpoints, train_resumable, CheckpointConfig, CondUnet, DiffusionConfig,
    DiffusionTrainer, TrainBatch, TrainRunOptions, UnetConfig,
};
use aero_nn::{Module, Var};
use aero_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::PathBuf;

const INIT_SEED: u64 = 11;
const TRAIN_SEED: u64 = 23;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aero_ckpt_{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn tiny_unet() -> CondUnet {
    let mut rng = StdRng::seed_from_u64(INIT_SEED);
    CondUnet::new(
        UnetConfig {
            in_channels: 1,
            base_channels: 2,
            cond_dim: 0,
            time_embed_dim: 4,
            cond_tokens: 0,
            spatial_cond_cells: 0,
        },
        &mut rng,
    )
}

fn dataset() -> Vec<TrainBatch> {
    let mut rng = StdRng::seed_from_u64(77);
    (0..3).map(|_| TrainBatch { z0: Tensor::randn(&[2, 1, 8, 8], &mut rng), cond: None }).collect()
}

fn options(max_steps: Option<u64>) -> TrainRunOptions {
    TrainRunOptions { epochs: 3, lr: 1e-3, weight_decay: 1e-5, seed: TRAIN_SEED, max_steps }
}

fn param_values(unet: &CondUnet) -> Vec<Vec<f32>> {
    unet.params().iter().map(|p: &Var| p.to_tensor().as_slice().to_vec()).collect()
}

#[test]
fn killed_run_resumes_bit_identically() {
    let trainer = DiffusionTrainer::new(DiffusionConfig::small());
    let data = dataset();

    // Reference: one uninterrupted run.
    let ref_unet = tiny_unet();
    let ref_ckpt = CheckpointConfig::new(fresh_dir("reference"), 2);
    let ref_run = train_resumable(&trainer, &ref_unet, &data, &options(None), &ref_ckpt).unwrap();
    assert!(ref_run.completed);
    assert_eq!(ref_run.steps, 9, "3 epochs x 3 batches");
    let reference = param_values(&ref_unet);

    // Interrupted: same arguments, killed at step 5 (between the
    // checkpoints at steps 4 and 6), then restarted as a new "process"
    // with a freshly initialized model.
    let dir = fresh_dir("interrupted");
    let ckpt = CheckpointConfig::new(dir.clone(), 2);
    let unet_a = tiny_unet();
    let killed = train_resumable(&trainer, &unet_a, &data, &options(Some(5)), &ckpt).unwrap();
    assert!(!killed.completed);
    assert_eq!(killed.steps, 5);

    let unet_b = tiny_unet();
    let resumed = train_resumable(&trainer, &unet_b, &data, &options(None), &ckpt).unwrap();
    assert_eq!(resumed.resumed_from, Some(4), "newest checkpoint before the kill is step 4");
    assert_eq!(resumed.skipped_corrupt, 0);
    assert!(resumed.completed);
    assert_eq!(resumed.steps, 9);

    assert_eq!(
        param_values(&unet_b),
        reference,
        "resumed trajectory must be bit-identical to the uninterrupted run"
    );
}

#[test]
fn corrupt_latest_checkpoint_falls_back_to_newest_valid() {
    let trainer = DiffusionTrainer::new(DiffusionConfig::small());
    let data = dataset();
    let dir = fresh_dir("corrupt_fallback");
    let ckpt = CheckpointConfig::new(dir.clone(), 2);

    let unet_a = tiny_unet();
    train_resumable(&trainer, &unet_a, &data, &options(Some(5)), &ckpt).unwrap();
    let ckpts = list_checkpoints(&dir).unwrap();
    assert_eq!(ckpts.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![2, 4]);

    // Flip one bit in the newest checkpoint's weight blob.
    let newest = &ckpts.last().unwrap().1;
    let blob_path = newest.join("params.aero");
    let mut blob = fs::read(&blob_path).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0x04;
    fs::write(&blob_path, blob).unwrap();

    let unet_b = tiny_unet();
    let resumed = train_resumable(&trainer, &unet_b, &data, &options(None), &ckpt).unwrap();
    assert_eq!(resumed.skipped_corrupt, 1, "the corrupted step-4 checkpoint must be skipped");
    assert_eq!(resumed.resumed_from, Some(2), "fall back to the newest valid checkpoint");
    assert!(resumed.completed);
    assert!(resumed.last_loss.unwrap().is_finite());
}

#[test]
fn retention_prunes_old_checkpoints() {
    let trainer = DiffusionTrainer::new(DiffusionConfig::small());
    let data = dataset();
    let dir = fresh_dir("retention");
    let ckpt = CheckpointConfig { dir: dir.clone(), every: 1, keep: 2 };

    let unet = tiny_unet();
    let run = train_resumable(&trainer, &unet, &data, &options(None), &ckpt).unwrap();
    assert!(run.completed);
    let steps: Vec<u64> = list_checkpoints(&dir).unwrap().iter().map(|(s, _)| *s).collect();
    assert_eq!(steps, vec![8, 9], "only the newest `keep` checkpoints survive");
}

#[test]
fn rerunning_a_completed_run_does_no_extra_work() {
    let trainer = DiffusionTrainer::new(DiffusionConfig::small());
    let data = dataset();
    let dir = fresh_dir("completed_rerun");
    let ckpt = CheckpointConfig::new(dir.clone(), 4);

    let unet_a = tiny_unet();
    let first = train_resumable(&trainer, &unet_a, &data, &options(None), &ckpt).unwrap();
    assert!(first.completed);
    let after_first = param_values(&unet_a);

    let unet_b = tiny_unet();
    let second = train_resumable(&trainer, &unet_b, &data, &options(None), &ckpt).unwrap();
    assert!(second.completed);
    assert_eq!(second.resumed_from, Some(9), "resumes the final checkpoint");
    assert!(second.last_loss.is_none(), "no step should execute");
    assert_eq!(param_values(&unet_b), after_first, "weights restored, not retrained");
}
