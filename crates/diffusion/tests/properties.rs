//! Property-based tests for schedule and forward-process invariants.

use aero_diffusion::{BetaSchedule, NoiseSchedule};
use aero_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn alpha_bar_strictly_decreasing(t_steps in 2usize..200, b0 in 1e-4f32..5e-3, spread in 1e-3f32..5e-2) {
        let s = NoiseSchedule::new(
            BetaSchedule::Linear { beta_start: b0, beta_end: b0 + spread },
            t_steps,
        );
        for t in 1..t_steps {
            prop_assert!(s.alpha_bar(t) < s.alpha_bar(t - 1));
            prop_assert!(s.alpha_bar(t) > 0.0);
        }
    }

    #[test]
    fn q_sample_interpolates_between_signal_and_noise(seed in 0u64..500, t in 0usize..100) {
        let s = NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.03 }, 100);
        let mut rng = StdRng::seed_from_u64(seed);
        let z0 = Tensor::randn(&[32], &mut rng);
        let eps = Tensor::randn(&[32], &mut rng);
        let zt = s.q_sample(&z0, t, &eps);
        // coefficients satisfy a² + b² = 1 (variance preserving)
        let ab = s.alpha_bar(t);
        let (a, b) = (ab.sqrt(), (1.0 - ab).sqrt());
        prop_assert!((a * a + b * b - 1.0).abs() < 1e-5);
        // reconstruction from known eps is exact
        let rec = s.predict_z0(&zt, t, &eps);
        prop_assert!(rec.sub(&z0).abs().max() < 1e-3);
    }

    #[test]
    fn ddim_subsequence_always_valid(t_steps in 4usize..500, frac in 2usize..10) {
        let s = NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.02 }, t_steps);
        let steps = (t_steps / frac).max(1);
        let ts = s.ddim_timesteps(steps);
        prop_assert_eq!(ts[0], t_steps - 1);
        for w in ts.windows(2) {
            prop_assert!(w[0] > w[1]);
        }
        prop_assert!(*ts.last().unwrap() < t_steps);
    }

    #[test]
    fn cosine_schedule_always_valid(t_steps in 2usize..300) {
        let s = NoiseSchedule::new(BetaSchedule::Cosine, t_steps);
        for t in 0..t_steps {
            prop_assert!((0.0..1.0).contains(&s.beta(t)));
        }
    }

    #[test]
    fn scaled_linear_matches_sqrt_spacing(t_steps in 2usize..100) {
        let s = NoiseSchedule::new(
            BetaSchedule::ScaledLinear { beta_start: 0.001, beta_end: 0.02 },
            t_steps,
        );
        // endpoints preserved
        prop_assert!((s.beta(0) - 0.001).abs() < 1e-6);
        prop_assert!((s.beta(t_steps - 1) - 0.02).abs() < 1e-6);
    }
}
