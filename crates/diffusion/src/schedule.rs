//! Noise schedules and the closed-form forward process (Eq. 4).

use aero_tensor::Tensor;
use rand::Rng;

/// The β-schedule family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BetaSchedule {
    /// Linearly spaced betas (the paper's choice: 0.001 → 0.012).
    Linear {
        /// β at step 1.
        beta_start: f32,
        /// β at step T.
        beta_end: f32,
    },
    /// The cosine schedule of Nichol & Dhariwal (improved DDPM).
    Cosine,
    /// Linear in `sqrt(β)` (Stable Diffusion's "scaled linear").
    ScaledLinear {
        /// β at step 1.
        beta_start: f32,
        /// β at step T.
        beta_end: f32,
    },
}

/// Precomputed schedule quantities for `T` steps.
///
/// Step indices are zero-based: `t ∈ 0..T`, with `alpha_bar` strictly
/// decreasing (the paper's constraint `β_{t-1} < β_t` holds for the
/// linear schedule).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSchedule {
    betas: Vec<f32>,
    alphas: Vec<f32>,
    alpha_bars: Vec<f32>,
}

impl NoiseSchedule {
    /// Builds a schedule with `timesteps` steps.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0` or a beta falls outside `(0, 1)`.
    pub fn new(schedule: BetaSchedule, timesteps: usize) -> Self {
        assert!(timesteps > 0, "schedule needs at least one step");
        let betas: Vec<f32> = match schedule {
            BetaSchedule::Linear { beta_start, beta_end } => (0..timesteps)
                .map(|t| {
                    if timesteps == 1 {
                        beta_start
                    } else {
                        beta_start + (beta_end - beta_start) * t as f32 / (timesteps - 1) as f32
                    }
                })
                .collect(),
            BetaSchedule::ScaledLinear { beta_start, beta_end } => {
                let (s, e) = (beta_start.sqrt(), beta_end.sqrt());
                (0..timesteps)
                    .map(|t| {
                        let v = if timesteps == 1 {
                            s
                        } else {
                            s + (e - s) * t as f32 / (timesteps - 1) as f32
                        };
                        v * v
                    })
                    .collect()
            }
            BetaSchedule::Cosine => {
                let f = |t: f32| ((t + 0.008) / 1.008 * std::f32::consts::FRAC_PI_2).cos().powi(2);
                (0..timesteps)
                    .map(|t| {
                        let t0 = t as f32 / timesteps as f32;
                        let t1 = (t + 1) as f32 / timesteps as f32;
                        (1.0 - f(t1) / f(t0)).clamp(1e-5, 0.999)
                    })
                    .collect()
            }
        };
        for &b in &betas {
            assert!((0.0..1.0).contains(&b), "beta {b} outside (0, 1)");
        }
        let alphas: Vec<f32> = betas.iter().map(|b| 1.0 - b).collect();
        let mut alpha_bars = Vec::with_capacity(timesteps);
        let mut acc = 1.0f32;
        for &a in &alphas {
            acc *= a;
            alpha_bars.push(acc);
        }
        NoiseSchedule { betas, alphas, alpha_bars }
    }

    /// Number of steps `T`.
    pub fn timesteps(&self) -> usize {
        self.betas.len()
    }

    /// `β_t`.
    pub fn beta(&self, t: usize) -> f32 {
        self.betas[t]
    }

    /// `α_t = 1 − β_t`.
    pub fn alpha(&self, t: usize) -> f32 {
        self.alphas[t]
    }

    /// `ᾱ_t = Π α_s`.
    pub fn alpha_bar(&self, t: usize) -> f32 {
        self.alpha_bars[t]
    }

    /// Closed-form forward sample:
    /// `z_t = sqrt(ᾱ_t) z_0 + sqrt(1 − ᾱ_t) ε`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `t` is out of range.
    pub fn q_sample(&self, z0: &Tensor, t: usize, eps: &Tensor) -> Tensor {
        assert_eq!(z0.shape(), eps.shape(), "q_sample shape mismatch");
        let ab = self.alpha_bar(t);
        z0.mul_scalar(ab.sqrt()).add(&eps.mul_scalar((1.0 - ab).sqrt()))
    }

    /// Reconstructs `ẑ_0` from `z_t` and a noise prediction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `t` is out of range.
    pub fn predict_z0(&self, zt: &Tensor, t: usize, eps_hat: &Tensor) -> Tensor {
        let ab = self.alpha_bar(t);
        zt.sub(&eps_hat.mul_scalar((1.0 - ab).sqrt())).mul_scalar(1.0 / ab.sqrt().max(1e-6))
    }

    /// Draws a uniform training timestep.
    pub fn sample_timestep<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.gen_range(0..self.timesteps())
    }

    /// Evenly spaced DDIM sub-sequence (descending), always containing
    /// the final timestep.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or exceeds `T`.
    pub fn ddim_timesteps(&self, steps: usize) -> Vec<usize> {
        assert!(steps > 0 && steps <= self.timesteps(), "invalid ddim step count");
        let stride = self.timesteps() as f32 / steps as f32;
        let mut ts: Vec<usize> = (0..steps)
            .map(|i| ((i as f32 + 0.5) * stride) as usize)
            .map(|t| t.min(self.timesteps() - 1))
            .collect();
        ts.dedup();
        *ts.last_mut().expect("nonempty") = self.timesteps() - 1;
        ts.dedup();
        ts.reverse();
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_schedule_endpoints() {
        let s =
            NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.012 }, 1000);
        assert!((s.beta(0) - 0.001).abs() < 1e-7);
        assert!((s.beta(999) - 0.012).abs() < 1e-7);
        // the paper's constraint: betas strictly increase
        for t in 1..1000 {
            assert!(s.beta(t) > s.beta(t - 1));
        }
    }

    #[test]
    fn alpha_bar_monotone_decreasing_to_small() {
        let s =
            NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.012 }, 1000);
        for t in 1..1000 {
            assert!(s.alpha_bar(t) < s.alpha_bar(t - 1));
        }
        assert!(s.alpha_bar(999) < 0.05, "terminal alpha_bar {}", s.alpha_bar(999));
    }

    #[test]
    fn cosine_schedule_valid() {
        let s = NoiseSchedule::new(BetaSchedule::Cosine, 100);
        for t in 0..100 {
            assert!((0.0..1.0).contains(&s.beta(t)));
        }
        assert!(s.alpha_bar(99) < 0.1);
    }

    #[test]
    fn q_sample_variance_preserving() {
        // Var[z_t] ≈ ᾱ Var[z_0] + (1 − ᾱ) for unit-variance inputs.
        let mut rng = StdRng::seed_from_u64(1);
        let s = NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.05 }, 100);
        let z0 = Tensor::randn(&[10_000], &mut rng);
        let eps = Tensor::randn(&[10_000], &mut rng);
        let zt = s.q_sample(&z0, 50, &eps);
        assert!((zt.var() - 1.0).abs() < 0.08, "var {}", zt.var());
    }

    #[test]
    fn predict_z0_inverts_q_sample() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.05 }, 100);
        let z0 = Tensor::randn(&[64], &mut rng);
        let eps = Tensor::randn(&[64], &mut rng);
        let zt = s.q_sample(&z0, 30, &eps);
        let rec = s.predict_z0(&zt, 30, &eps);
        assert!(rec.sub(&z0).abs().max() < 1e-4);
    }

    #[test]
    fn ddim_subsequence_properties() {
        let s =
            NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.012 }, 1000);
        let ts = s.ddim_timesteps(250);
        assert_eq!(ts[0], 999, "must start at T-1");
        for w in ts.windows(2) {
            assert!(w[0] > w[1], "must strictly descend");
        }
        assert!(ts.len() >= 240 && ts.len() <= 250);
    }

    #[test]
    fn ddim_single_step() {
        let s = NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.01, beta_end: 0.02 }, 10);
        assert_eq!(s.ddim_timesteps(1), vec![9]);
    }
}
