//! The diffusion training loop (Eq. 6 of the paper).

use crate::schedule::NoiseSchedule;
use crate::unet::CondUnet;
use crate::DiffusionConfig;
use aero_nn::optim::Adam;
use aero_nn::{Module, Var};
use aero_tensor::Tensor;
use rand::Rng;

/// One training batch: latents plus (optionally) per-item conditions.
#[derive(Debug, Clone)]
pub struct TrainBatch {
    /// Clean latents `[n, c, h, w]`.
    pub z0: Tensor,
    /// Condition vectors `[n, cond_dim]`, or `None` for unconditional.
    pub cond: Option<Tensor>,
}

/// Trainer minimizing `E‖ε − ε_θ(z_t, t, C)‖²` with condition dropout for
/// classifier-free guidance.
#[derive(Debug)]
pub struct DiffusionTrainer {
    schedule: NoiseSchedule,
    config: DiffusionConfig,
}

impl DiffusionTrainer {
    /// Creates a trainer; the schedule is derived from the config.
    pub fn new(config: DiffusionConfig) -> Self {
        DiffusionTrainer { schedule: NoiseSchedule::new(config.schedule, config.timesteps), config }
    }

    /// The precomputed noise schedule.
    pub fn schedule(&self) -> &NoiseSchedule {
        &self.schedule
    }

    /// The configuration.
    pub fn config(&self) -> &DiffusionConfig {
        &self.config
    }

    /// Builds the differentiable loss for one batch without stepping.
    ///
    /// `cond` may carry gradients (a `Var`) so that condition-network
    /// parameters are updated jointly, as the paper specifies.
    pub fn loss<R: Rng + ?Sized>(
        &self,
        unet: &CondUnet,
        z0: &Tensor,
        cond: Option<&Var>,
        rng: &mut R,
    ) -> Var {
        let n = z0.shape()[0];
        let per_item: usize = z0.numel() / n;
        let eps = Tensor::randn(z0.shape(), rng);
        // Per-item timesteps: each sample in the batch trains a different
        // noise level, which substantially improves step efficiency on
        // small datasets.
        let ts: Vec<usize> = (0..n).map(|_| self.schedule.sample_timestep(rng)).collect();
        let mut z_t = Tensor::zeros(z0.shape());
        for (i, &t) in ts.iter().enumerate() {
            let zi = z0.narrow(0, i, 1);
            let ei = eps.narrow(0, i, 1);
            let noised = self.schedule.q_sample(&zi, t, &ei);
            z_t.as_mut_slice()[i * per_item..(i + 1) * per_item].copy_from_slice(noised.as_slice());
        }
        let drop = cond.is_some() && rng.gen_bool(self.config.cond_dropout);
        let effective_cond = if drop { None } else { cond };
        let pred = unet.forward(&Var::constant(z_t), &ts, effective_cond);
        pred.mse_loss(&eps)
    }

    /// One optimizer step on a fixed-condition batch; returns the loss.
    pub fn train_step<R: Rng + ?Sized>(
        &self,
        unet: &CondUnet,
        opt: &mut Adam,
        batch: &TrainBatch,
        rng: &mut R,
    ) -> f32 {
        let _span = aero_obs::span!("train.step");
        // lint: nondet-ok(wall-clock feeds the step-duration metric only, never tensors)
        let start = std::time::Instant::now();
        opt.zero_grad();
        let cond_var = batch.cond.as_ref().map(|c| Var::constant(c.clone()));
        let loss = self.loss(unet, &batch.z0, cond_var.as_ref(), rng);
        let value = loss.value().item();
        loss.backward();
        opt.step();
        aero_obs::counter!("train.steps").inc();
        aero_obs::gauge!("train.last_loss").set(f64::from(value));
        aero_obs::histogram!("train.step_time_us", aero_obs::Histogram::exponential_us())
            .observe(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        value
    }

    /// Trains over epochs of shuffled batches; returns per-epoch losses.
    pub fn train<R: Rng + ?Sized>(
        &self,
        unet: &CondUnet,
        data: &[TrainBatch],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) -> Vec<f32> {
        let mut opt = Adam::new(unet.params(), lr).with_weight_decay(1e-5);
        let mut history = Vec::with_capacity(epochs);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut total = 0.0;
            for &i in &order {
                total += self.train_step(unet, &mut opt, &data[i], rng);
            }
            history.push(if data.is_empty() { 0.0 } else { total / data.len() as f32 });
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unet::UnetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_reduces_noise_prediction_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 2,
                base_channels: 4,
                cond_dim: 0,
                time_embed_dim: 8,
                cond_tokens: 0,
                spatial_cond_cells: 0,
            },
            &mut rng,
        );
        let trainer = DiffusionTrainer::new(DiffusionConfig::small());
        // A single structured latent repeated: the model should learn the
        // noise residual quickly.
        let z0 = {
            let mut t = Tensor::zeros(&[4, 2, 8, 8]);
            for v in t.as_mut_slice().iter_mut().step_by(3) {
                *v = 1.0;
            }
            t
        };
        let data = vec![TrainBatch { z0, cond: None }];
        let history = trainer.train(&unet, &data, 30, 2e-3, &mut rng);
        let early: f32 = history[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = history[history.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "loss should fall: early {early} late {late}");
    }

    #[test]
    fn conditional_loss_accepts_var_condition() {
        let mut rng = StdRng::seed_from_u64(2);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 2,
                base_channels: 4,
                cond_dim: 3,
                time_embed_dim: 8,
                cond_tokens: 1,
                spatial_cond_cells: 16,
            },
            &mut rng,
        );
        let trainer = DiffusionTrainer::new(DiffusionConfig::small());
        let z0 = Tensor::randn(&[2, 2, 8, 8], &mut rng);
        let cond = Var::parameter(Tensor::randn(&[2, 3], &mut rng));
        // With dropout possible, try a few times: at least one pass must
        // push gradients into the condition.
        let mut got_grad = false;
        for _ in 0..10 {
            cond.zero_grad();
            let loss = trainer.loss(&unet, &z0, Some(&cond), &mut rng);
            loss.backward();
            if cond.grad().is_some() {
                got_grad = true;
                break;
            }
        }
        assert!(got_grad, "condition should receive gradients (joint update)");
    }

    #[test]
    fn paper_config_values() {
        let c = DiffusionConfig::paper();
        assert_eq!(c.timesteps, 1000);
        assert_eq!(c.ddim_steps, 250);
        assert_eq!(c.guidance_scale, 7.0);
    }
}
