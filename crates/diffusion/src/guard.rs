//! Numerical-stability guards around the training step.
//!
//! Diffusion training on small batches occasionally produces pathological
//! steps: a NaN loss from an unlucky noise draw, an exploding gradient, a
//! loss spike that throws the optimizer far off its trajectory. Left
//! alone, a single such step poisons every parameter (NaN propagates
//! through Adam's moments) and the run is dead long before anyone reads
//! the logs.
//!
//! [`TrainGuard`] wraps the optimizer step with four defenses, applied in
//! order:
//!
//! 1. **Non-finite loss** — the step is skipped entirely; no gradient is
//!    computed, no state is touched.
//! 2. **Loss-spike rollback** — the loss is tracked with an exponential
//!    moving average; a loss exceeding `spike_factor × EMA` (after
//!    warmup) rolls parameters *and* Adam moments back to the last good
//!    in-memory snapshot instead of stepping.
//! 3. **Non-finite gradients** — after backprop, a NaN/Inf global
//!    gradient norm skips the optimizer step.
//! 4. **Gradient clipping** — a finite norm above `max_grad_norm` is
//!    rescaled to the threshold before stepping.
//!
//! Every decision is counted in [`GuardStats`] and returned as a
//! [`GuardVerdict`] so callers can log and tests can assert; each
//! counter is also mirrored into the process-global `aero_obs` registry
//! under `train.guard.*` so one metrics snapshot covers training
//! health.

use crate::trainer::{DiffusionTrainer, TrainBatch};
use crate::unet::CondUnet;
use aero_nn::optim::{Adam, AdamState};
use aero_nn::Var;
use aero_tensor::Tensor;
use rand::Rng;

/// Thresholds for [`TrainGuard`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Global gradient-norm ceiling; gradients above it are rescaled to
    /// this value. `0` disables clipping.
    pub max_grad_norm: f32,
    /// A loss above `spike_factor × EMA` triggers a rollback.
    pub spike_factor: f32,
    /// Smoothing for the loss EMA (`ema = beta·ema + (1−beta)·loss`).
    pub ema_beta: f32,
    /// Steps before spike detection arms; early losses are noisy and the
    /// EMA needs history to be meaningful.
    pub warmup_steps: u64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig { max_grad_norm: 10.0, spike_factor: 4.0, ema_beta: 0.9, warmup_steps: 10 }
    }
}

/// Counters of every intervention the guard has made.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Optimizer steps that completed (possibly clipped).
    pub steps: u64,
    /// Steps skipped because the loss was NaN/Inf.
    pub nonfinite_losses: u64,
    /// Steps skipped because the gradient norm was NaN/Inf.
    pub nonfinite_grads: u64,
    /// Steps whose gradients were rescaled to `max_grad_norm`.
    pub clipped: u64,
    /// Loss spikes detected.
    pub loss_spikes: u64,
    /// Rollbacks performed (a spike with a snapshot available).
    pub rollbacks: u64,
}

/// What the guard decided for one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    /// The optimizer stepped; `clipped` says whether gradients were
    /// rescaled first.
    Stepped {
        /// The (finite) loss value.
        loss: f32,
        /// Whether the global gradient norm exceeded the ceiling.
        clipped: bool,
    },
    /// Loss was NaN/Inf; nothing was touched.
    SkippedNonFiniteLoss,
    /// Gradient norm was NaN/Inf; the optimizer did not step.
    SkippedNonFiniteGrad,
    /// Loss spiked past `spike_factor × EMA`; parameters and optimizer
    /// moments were restored from the last good snapshot.
    RolledBackSpike {
        /// The spiking loss value.
        loss: f32,
        /// The EMA it was compared against.
        ema: f32,
    },
}

/// Stateful guard wrapping [`DiffusionTrainer::train_step`]-shaped work.
#[derive(Debug)]
pub struct TrainGuard {
    config: GuardConfig,
    ema: Option<f32>,
    /// Parameter values + Adam state after the last successful step.
    last_good: Option<(Vec<Tensor>, AdamState)>,
    stats: GuardStats,
}

impl TrainGuard {
    /// Creates a guard with the given thresholds.
    #[must_use]
    pub fn new(config: GuardConfig) -> Self {
        TrainGuard { config, ema: None, last_good: None, stats: GuardStats::default() }
    }

    /// The intervention counters so far.
    #[must_use]
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// The current loss EMA, once at least one step has succeeded.
    #[must_use]
    pub fn loss_ema(&self) -> Option<f32> {
        self.ema
    }

    /// One guarded training step: builds the diffusion loss for `batch`
    /// and routes it through [`TrainGuard::apply`].
    pub fn guarded_step<R: Rng + ?Sized>(
        &mut self,
        trainer: &DiffusionTrainer,
        unet: &CondUnet,
        opt: &mut Adam,
        batch: &TrainBatch,
        rng: &mut R,
    ) -> GuardVerdict {
        opt.zero_grad();
        let cond_var = batch.cond.as_ref().map(|c| Var::constant(c.clone()));
        let loss = trainer.loss(unet, &batch.z0, cond_var.as_ref(), rng);
        let value = loss.value().item();
        self.apply(&loss, value, opt)
    }

    /// The guard core: given a built loss graph and its scalar value,
    /// decides whether to skip, roll back, clip, or step. Exposed
    /// separately so tests can drive it with synthetic loss graphs.
    pub fn apply(&mut self, loss: &Var, loss_value: f32, opt: &mut Adam) -> GuardVerdict {
        if !loss_value.is_finite() {
            self.stats.nonfinite_losses += 1;
            aero_obs::counter!("train.guard.nonfinite_losses").inc();
            return GuardVerdict::SkippedNonFiniteLoss;
        }
        if self.stats.steps >= self.config.warmup_steps {
            if let Some(ema) = self.ema {
                if loss_value > self.config.spike_factor * ema {
                    self.stats.loss_spikes += 1;
                    aero_obs::counter!("train.guard.loss_spikes").inc();
                    if let Some((values, state)) = &self.last_good {
                        for (p, value) in opt.params().iter().zip(values) {
                            p.assign(value.clone());
                        }
                        let state = state.clone();
                        opt.restore_state(state)
                            .expect("last-good snapshot must match its own optimizer");
                        self.stats.rollbacks += 1;
                        aero_obs::counter!("train.guard.rollbacks").inc();
                    }
                    return GuardVerdict::RolledBackSpike { loss: loss_value, ema };
                }
            }
        }
        loss.backward();
        let norm = global_grad_norm(opt.params());
        if !norm.is_finite() {
            self.stats.nonfinite_grads += 1;
            aero_obs::counter!("train.guard.nonfinite_grads").inc();
            return GuardVerdict::SkippedNonFiniteGrad;
        }
        let mut clipped = false;
        if self.config.max_grad_norm > 0.0 && norm > self.config.max_grad_norm {
            let scale = self.config.max_grad_norm / norm;
            for p in opt.params() {
                if let Some(mut grad) = p.grad() {
                    for g in grad.as_mut_slice() {
                        *g *= scale;
                    }
                    p.set_grad(grad);
                }
            }
            clipped = true;
            self.stats.clipped += 1;
            aero_obs::counter!("train.guard.clipped").inc();
        }
        opt.step();
        self.stats.steps += 1;
        aero_obs::counter!("train.guard.steps").inc();
        self.ema = Some(match self.ema {
            Some(ema) => self.config.ema_beta * ema + (1.0 - self.config.ema_beta) * loss_value,
            None => loss_value,
        });
        let values: Vec<Tensor> = opt.params().iter().map(Var::to_tensor).collect();
        self.last_good = Some((values, opt.export_state()));
        GuardVerdict::Stepped { loss: loss_value, clipped }
    }
}

/// The L2 norm of all gradients taken together (the quantity gradient
/// clipping bounds). Parameters without a gradient contribute zero.
#[must_use]
pub fn global_grad_norm(params: &[Var]) -> f32 {
    let mut sum_sq = 0.0f32;
    for p in params {
        if let Some(grad) = p.grad() {
            for &g in grad.as_slice() {
                sum_sq += g * g;
            }
        }
    }
    sum_sq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_tensor::Tensor;

    fn param(values: &[f32]) -> Var {
        Var::parameter(Tensor::from_vec(values.to_vec(), &[values.len()]))
    }

    /// Builds a quadratic loss `sum(p²)` — well-behaved by construction.
    fn quad_loss(p: &Var) -> Var {
        p.mul(p).sum()
    }

    #[test]
    fn finite_loss_steps_normally() {
        let p = param(&[2.0, -1.0]);
        let mut opt = Adam::new(vec![p.clone()], 0.05);
        let mut guard = TrainGuard::new(GuardConfig::default());
        opt.zero_grad();
        let loss = quad_loss(&p);
        let value = loss.value().item();
        let verdict = guard.apply(&loss, value, &mut opt);
        assert!(matches!(verdict, GuardVerdict::Stepped { clipped: false, .. }));
        assert_eq!(guard.stats().steps, 1);
        assert_ne!(p.value().as_slice(), [2.0, -1.0]);
    }

    #[test]
    fn nan_loss_is_skipped_without_touching_state() {
        let p = param(&[2.0]);
        let mut opt = Adam::new(vec![p.clone()], 0.05);
        let mut guard = TrainGuard::new(GuardConfig::default());
        opt.zero_grad();
        let nan = Var::constant(Tensor::from_vec(vec![f32::NAN], &[1]));
        let loss = p.mul(&nan).sum();
        let value = loss.value().item();
        let verdict = guard.apply(&loss, value, &mut opt);
        assert_eq!(verdict, GuardVerdict::SkippedNonFiniteLoss);
        assert_eq!(guard.stats().nonfinite_losses, 1);
        assert_eq!(p.value().as_slice(), [2.0], "parameters must be untouched");
    }

    #[test]
    fn nonfinite_gradient_skips_the_optimizer_step() {
        let p = param(&[1.0]);
        let mut opt = Adam::new(vec![p.clone()], 0.05);
        let mut guard = TrainGuard::new(GuardConfig::default());
        opt.zero_grad();
        let inf = Var::constant(Tensor::from_vec(vec![f32::INFINITY], &[1]));
        let loss = p.mul(&inf).sum();
        // The graph's gradients are non-finite; pass a finite stand-in
        // loss value so the gradient check (not the loss check) fires.
        let verdict = guard.apply(&loss, 1.0, &mut opt);
        assert_eq!(verdict, GuardVerdict::SkippedNonFiniteGrad);
        assert_eq!(guard.stats().nonfinite_grads, 1);
        assert_eq!(p.value().as_slice(), [1.0]);
    }

    #[test]
    fn oversized_gradients_are_clipped_to_the_ceiling() {
        let p = param(&[1000.0]);
        let config = GuardConfig { max_grad_norm: 1.0, ..GuardConfig::default() };
        let mut opt = Adam::new(vec![p.clone()], 0.05);
        let mut guard = TrainGuard::new(config);
        opt.zero_grad();
        let loss = quad_loss(&p); // grad = 2000, norm far above 1
        let value = loss.value().item();
        let verdict = guard.apply(&loss, value, &mut opt);
        assert!(matches!(verdict, GuardVerdict::Stepped { clipped: true, .. }));
        assert_eq!(guard.stats().clipped, 1);
        let norm = global_grad_norm(opt.params());
        assert!((norm - 1.0).abs() < 1e-4, "clipped norm should equal the ceiling, got {norm}");
    }

    #[test]
    fn loss_spike_rolls_back_to_last_good_state() {
        let p = param(&[1.0, 2.0]);
        let config = GuardConfig {
            warmup_steps: 3,
            spike_factor: 4.0,
            max_grad_norm: 0.0,
            ..GuardConfig::default()
        };
        let mut opt = Adam::new(vec![p.clone()], 0.01);
        let mut guard = TrainGuard::new(config);
        for _ in 0..5 {
            opt.zero_grad();
            let loss = quad_loss(&p);
            let value = loss.value().item();
            assert!(matches!(guard.apply(&loss, value, &mut opt), GuardVerdict::Stepped { .. }));
        }
        let good = p.to_tensor();
        let good_state = opt.export_state();
        // A wildly spiking loss: reuse the quadratic graph but report a
        // value far past spike_factor × EMA.
        opt.zero_grad();
        let loss = quad_loss(&p);
        let verdict = guard.apply(&loss, 1e6, &mut opt);
        assert!(matches!(verdict, GuardVerdict::RolledBackSpike { .. }));
        assert_eq!(guard.stats().loss_spikes, 1);
        assert_eq!(guard.stats().rollbacks, 1);
        assert_eq!(p.to_tensor().as_slice(), good.as_slice(), "params must roll back");
        assert_eq!(opt.export_state(), good_state, "optimizer moments must roll back");
    }

    #[test]
    fn spike_detection_waits_for_warmup() {
        let p = param(&[1.0]);
        let config = GuardConfig { warmup_steps: 100, ..GuardConfig::default() };
        let mut opt = Adam::new(vec![p.clone()], 0.01);
        let mut guard = TrainGuard::new(config);
        opt.zero_grad();
        let loss = quad_loss(&p);
        let value = loss.value().item();
        guard.apply(&loss, value, &mut opt);
        // A huge second loss would spike post-warmup, but warmup is 100.
        opt.zero_grad();
        let loss = quad_loss(&p);
        let verdict = guard.apply(&loss, 1e9, &mut opt);
        assert!(matches!(verdict, GuardVerdict::Stepped { .. }));
        assert_eq!(guard.stats().loss_spikes, 0);
    }

    #[test]
    fn guarded_step_trains_a_real_unet() {
        use crate::unet::UnetConfig;
        use crate::{DiffusionConfig, DiffusionTrainer, TrainBatch};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(5);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 1,
                base_channels: 2,
                cond_dim: 0,
                time_embed_dim: 4,
                cond_tokens: 0,
                spatial_cond_cells: 0,
            },
            &mut rng,
        );
        use aero_nn::Module;
        let trainer = DiffusionTrainer::new(DiffusionConfig::small());
        let mut opt = Adam::new(unet.params(), 1e-3);
        let mut guard = TrainGuard::new(GuardConfig::default());
        let batch = TrainBatch { z0: Tensor::randn(&[2, 1, 8, 8], &mut rng), cond: None };
        for _ in 0..4 {
            let verdict = guard.guarded_step(&trainer, &unet, &mut opt, &batch, &mut rng);
            assert!(matches!(verdict, GuardVerdict::Stepped { .. }));
        }
        assert_eq!(guard.stats().steps, 4);
    }
}
