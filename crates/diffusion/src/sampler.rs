//! Reverse-process samplers: DDPM ancestral and DDIM with classifier-free
//! guidance.

use crate::schedule::NoiseSchedule;
use crate::unet::CondUnet;
use aero_tensor::Tensor;
use rand::Rng;

/// Shared floor for every denominator of the reverse-process update rules
/// (`sqrt(alpha)`, `sqrt(alpha_bar)`, `sqrt(1 - alpha_bar)`). Near the ends
/// of the schedule these terms approach zero and an unguarded division
/// amplifies prediction error explosively; both samplers clamp through this
/// one constant so the guard can never drift between them.
const DENOM_EPS: f32 = 1e-6;

/// `sqrt(x)` guarded for use as a denominator.
fn guarded_sqrt(x: f32) -> f32 {
    x.sqrt().max(DENOM_EPS)
}

/// Ancestral DDPM sampler (the paper's training-time scheduler family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DdpmSampler;

impl DdpmSampler {
    /// Creates the sampler.
    pub fn new() -> Self {
        DdpmSampler
    }

    /// Samples a batch from pure noise: runs all `T` ancestral steps.
    ///
    /// `shape` is `[n, c, h, w]`; `cond` is `[n, cond_dim]` or `None`.
    ///
    /// All batch rows share `rng`, so a row's output depends on its batch
    /// context; use [`DdpmSampler::sample_with_streams`] when each sample
    /// must be reproducible independently of how it was batched.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        shape: &[usize],
        cond: Option<&Tensor>,
        rng: &mut R,
    ) -> Tensor {
        let n = shape[0];
        let mut z = Tensor::randn(shape, rng);
        let mut ts = vec![0usize; n];
        for t in (0..schedule.timesteps()).rev() {
            ts.fill(t);
            let eps_hat = unet.predict(&z, &ts, cond);
            let mean = self.posterior_mean(schedule, t, &z, &eps_hat);
            if t > 0 {
                let sigma = schedule.beta(t).sqrt();
                z = mean.add(&Tensor::randn(shape, rng).mul_scalar(sigma));
            } else {
                z = mean;
            }
        }
        z
    }

    /// Samples a batch where every row draws its noise from its *own* RNG
    /// stream: row `i`'s initial latent and all of its ancestral noise come
    /// from `rngs[i]` alone, so the output row is identical whether the
    /// request ran in a batch of 1 or of 8 (the serving batcher relies on
    /// this).
    ///
    /// `sample_shape` is the per-sample `[c, h, w]`; the batch size is
    /// `rngs.len()`; `cond` is `[n, cond_dim]` or `None`.
    ///
    /// # Panics
    ///
    /// Panics if `rngs` is empty.
    pub fn sample_with_streams<R: Rng>(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        sample_shape: &[usize],
        cond: Option<&Tensor>,
        rngs: &mut [R],
    ) -> Tensor {
        let n = rngs.len();
        assert!(n > 0, "need at least one RNG stream");
        let mut z = stack_noise(sample_shape, rngs);
        let mut ts = vec![0usize; n];
        for t in (0..schedule.timesteps()).rev() {
            ts.fill(t);
            let eps_hat = unet.predict(&z, &ts, cond);
            let mean = self.posterior_mean(schedule, t, &z, &eps_hat);
            if t > 0 {
                let sigma = schedule.beta(t).sqrt();
                z = mean.add(&stack_noise(sample_shape, rngs).mul_scalar(sigma));
            } else {
                z = mean;
            }
        }
        z
    }

    /// One ancestral posterior mean `μ(z_t, ε̂)` (Eq. 11 of DDPM).
    fn posterior_mean(
        &self,
        schedule: &NoiseSchedule,
        t: usize,
        z: &Tensor,
        eps_hat: &Tensor,
    ) -> Tensor {
        let alpha = schedule.alpha(t);
        let alpha_bar = schedule.alpha_bar(t);
        let coef = (1.0 - alpha) / guarded_sqrt(1.0 - alpha_bar);
        z.sub(&eps_hat.mul_scalar(coef)).mul_scalar(1.0 / guarded_sqrt(alpha))
    }
}

/// Per-sample noise rows, one from each stream, stacked to `[n, c, h, w]`.
fn stack_noise<R: Rng>(sample_shape: &[usize], rngs: &mut [R]) -> Tensor {
    let rows: Vec<Tensor> = rngs.iter_mut().map(|r| Tensor::randn(sample_shape, r)).collect();
    let refs: Vec<&Tensor> = rows.iter().collect();
    Tensor::stack(&refs)
}

/// DDIM sampler (η = 0, deterministic given the start noise) with
/// classifier-free guidance — the paper denoises in 250 DDIM steps with a
/// guidance scale of 7.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdimSampler {
    /// Number of inference steps.
    pub steps: usize,
    /// Classifier-free guidance scale (1.0 disables guidance).
    pub guidance_scale: f32,
    /// Static threshold on the predicted `z0` (clamped to this many
    /// standard deviations). Near `t = T` the reconstruction divides by
    /// `sqrt(alpha_bar_T) ~ 0`, so an unclamped estimate amplifies early
    /// prediction error explosively with few inference steps.
    pub z0_clip: f32,
}

impl DdimSampler {
    /// Creates a sampler with the given step count and guidance scale
    /// (and the default `z0` clip of 3 standard deviations).
    pub fn new(steps: usize, guidance_scale: f32) -> Self {
        DdimSampler { steps, guidance_scale, z0_clip: 3.0 }
    }

    /// Samples a batch from pure noise.
    ///
    /// Draws the initial latent from `rng` and delegates to
    /// [`DdimSampler::sample_from`]; with η = 0 that draw is the only
    /// stochastic step.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        shape: &[usize],
        cond: Option<&Tensor>,
        rng: &mut R,
    ) -> Tensor {
        self.sample_from(unet, schedule, Tensor::randn(shape, rng), cond)
    }

    /// Runs the deterministic reverse process from an explicit initial
    /// latent `z_T` of shape `[n, c, h, w]`.
    ///
    /// Because every per-row operation is independent, row `i` of the
    /// output depends only on row `i` of `z_init` (and of `cond`) — the
    /// serving batcher uses this to coalesce requests without changing
    /// any request's result.
    ///
    /// With a condition and `guidance_scale > 1`, each step evaluates the
    /// UNet twice (conditional + unconditional) and extrapolates:
    /// `ε = ε_u + g (ε_c − ε_u)`.
    pub fn sample_from(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        z_init: Tensor,
        cond: Option<&Tensor>,
    ) -> Tensor {
        let n = z_init.shape()[0];
        let mut z = z_init;
        let ts = schedule.ddim_timesteps(self.steps.min(schedule.timesteps()));
        let mut batch_ts = vec![0usize; n];
        for (i, &t) in ts.iter().enumerate() {
            batch_ts.fill(t);
            let eps_hat = match cond {
                Some(c) if self.guidance_scale != 1.0 => {
                    let cond_eps = unet.predict(&z, &batch_ts, Some(c));
                    let uncond_eps = unet.predict(&z, &batch_ts, None);
                    uncond_eps.add(&cond_eps.sub(&uncond_eps).mul_scalar(self.guidance_scale))
                }
                other => unet.predict(&z, &batch_ts, other),
            };
            let ab_t = schedule.alpha_bar(t);
            let z0_hat = z
                .sub(&eps_hat.mul_scalar((1.0 - ab_t).sqrt()))
                .mul_scalar(1.0 / guarded_sqrt(ab_t))
                .clamp(-self.z0_clip, self.z0_clip);
            let t_prev = ts.get(i + 1).copied();
            match t_prev {
                Some(tp) => {
                    let ab_p = schedule.alpha_bar(tp);
                    z = z0_hat
                        .mul_scalar(ab_p.sqrt())
                        .add(&eps_hat.mul_scalar((1.0 - ab_p).sqrt()));
                }
                None => z = z0_hat,
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::BetaSchedule;
    use crate::unet::UnetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setup() -> (CondUnet, NoiseSchedule) {
        let mut rng = StdRng::seed_from_u64(1);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 2,
                base_channels: 4,
                cond_dim: 3,
                time_embed_dim: 8,
                cond_tokens: 1,
                spatial_cond_cells: 16,
            },
            &mut rng,
        );
        let schedule =
            NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.01, beta_end: 0.1 }, 8);
        (unet, schedule)
    }

    #[test]
    fn ddpm_sample_shape_and_finite() {
        let (unet, schedule) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(2);
        let c = Tensor::randn(&[2, 3], &mut rng);
        let out = DdpmSampler::new().sample(&unet, &schedule, &[2, 2, 8, 8], Some(&c), &mut rng);
        assert_eq!(out.shape(), &[2, 2, 8, 8]);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ddim_sample_shape_and_finite() {
        let (unet, schedule) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(3);
        let c = Tensor::randn(&[1, 3], &mut rng);
        let out =
            DdimSampler::new(4, 2.0).sample(&unet, &schedule, &[1, 2, 8, 8], Some(&c), &mut rng);
        assert_eq!(out.shape(), &[1, 2, 8, 8]);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ddim_deterministic_given_rng_seed() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let a = DdimSampler::new(4, 1.0).sample(
            &unet,
            &schedule,
            &[1, 2, 8, 8],
            Some(&c),
            &mut StdRng::seed_from_u64(5),
        );
        let b = DdimSampler::new(4, 1.0).sample(
            &unet,
            &schedule,
            &[1, 2, 8, 8],
            Some(&c),
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn ddim_sample_matches_sample_from_on_same_noise() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let sampler = DdimSampler::new(4, 2.0);
        let via_rng = sampler.sample(
            &unet,
            &schedule,
            &[1, 2, 8, 8],
            Some(&c),
            &mut StdRng::seed_from_u64(8),
        );
        let noise = Tensor::randn(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(8));
        let via_latent = sampler.sample_from(&unet, &schedule, noise, Some(&c));
        assert_eq!(via_rng, via_latent);
    }

    #[test]
    fn ddim_rows_are_batch_invariant() {
        // The serving contract: a request's output is byte-identical
        // whether it ran alone or coalesced into a batch.
        let (unet, schedule) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(11);
        let noise_a = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let noise_b = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let cond_a = Tensor::randn(&[1, 3], &mut rng);
        let cond_b = Tensor::randn(&[1, 3], &mut rng);
        let sampler = DdimSampler::new(4, 2.0);

        let batched = sampler.sample_from(
            &unet,
            &schedule,
            Tensor::concat(&[&noise_a, &noise_b], 0),
            Some(&Tensor::concat(&[&cond_a, &cond_b], 0)),
        );
        let solo_a = sampler.sample_from(&unet, &schedule, noise_a, Some(&cond_a));
        let solo_b = sampler.sample_from(&unet, &schedule, noise_b, Some(&cond_b));

        assert_eq!(batched.narrow(0, 0, 1), solo_a);
        assert_eq!(batched.narrow(0, 1, 1), solo_b);
    }

    #[test]
    fn ddpm_streams_are_batch_invariant() {
        let (unet, schedule) = tiny_setup();
        let mut seed_rng = StdRng::seed_from_u64(13);
        let cond = Tensor::randn(&[2, 3], &mut seed_rng);
        let sampler = DdpmSampler::new();

        let mut batch_rngs = [StdRng::seed_from_u64(21), StdRng::seed_from_u64(22)];
        let batched =
            sampler.sample_with_streams(&unet, &schedule, &[2, 8, 8], Some(&cond), &mut batch_rngs);

        let mut solo_a = [StdRng::seed_from_u64(21)];
        let a = sampler.sample_with_streams(
            &unet,
            &schedule,
            &[2, 8, 8],
            Some(&cond.narrow(0, 0, 1)),
            &mut solo_a,
        );
        let mut solo_b = [StdRng::seed_from_u64(22)];
        let b = sampler.sample_with_streams(
            &unet,
            &schedule,
            &[2, 8, 8],
            Some(&cond.narrow(0, 1, 1)),
            &mut solo_b,
        );

        assert_eq!(batched.narrow(0, 0, 1), a);
        assert_eq!(batched.narrow(0, 1, 1), b);
    }

    #[test]
    fn guidance_changes_output() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let low = DdimSampler::new(4, 1.0).sample(
            &unet,
            &schedule,
            &[1, 2, 8, 8],
            Some(&c),
            &mut StdRng::seed_from_u64(6),
        );
        let high = DdimSampler::new(4, 7.0).sample(
            &unet,
            &schedule,
            &[1, 2, 8, 8],
            Some(&c),
            &mut StdRng::seed_from_u64(6),
        );
        assert!(low.sub(&high).abs().max() > 1e-6);
    }
}
