//! Reverse-process samplers: DDPM ancestral and DDIM with classifier-free
//! guidance.

use crate::schedule::NoiseSchedule;
use crate::unet::CondUnet;
use aero_tensor::Tensor;
use rand::Rng;

/// Ancestral DDPM sampler (the paper's training-time scheduler family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DdpmSampler;

impl DdpmSampler {
    /// Creates the sampler.
    pub fn new() -> Self {
        DdpmSampler
    }

    /// Samples a batch from pure noise: runs all `T` ancestral steps.
    ///
    /// `shape` is `[n, c, h, w]`; `cond` is `[n, cond_dim]` or `None`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        shape: &[usize],
        cond: Option<&Tensor>,
        rng: &mut R,
    ) -> Tensor {
        let n = shape[0];
        let mut z = Tensor::randn(shape, rng);
        for t in (0..schedule.timesteps()).rev() {
            let ts = vec![t; n];
            let eps_hat = unet.predict(&z, &ts, cond);
            let alpha = schedule.alpha(t);
            let alpha_bar = schedule.alpha_bar(t);
            let coef = (1.0 - alpha) / (1.0 - alpha_bar).sqrt().max(1e-6);
            let mean = z.sub(&eps_hat.mul_scalar(coef)).mul_scalar(1.0 / alpha.sqrt());
            if t > 0 {
                let sigma = schedule.beta(t).sqrt();
                z = mean.add(&Tensor::randn(shape, rng).mul_scalar(sigma));
            } else {
                z = mean;
            }
        }
        z
    }
}

/// DDIM sampler (η = 0, deterministic given the start noise) with
/// classifier-free guidance — the paper denoises in 250 DDIM steps with a
/// guidance scale of 7.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdimSampler {
    /// Number of inference steps.
    pub steps: usize,
    /// Classifier-free guidance scale (1.0 disables guidance).
    pub guidance_scale: f32,
    /// Static threshold on the predicted `z0` (clamped to this many
    /// standard deviations). Near `t = T` the reconstruction divides by
    /// `sqrt(alpha_bar_T) ~ 0`, so an unclamped estimate amplifies early
    /// prediction error explosively with few inference steps.
    pub z0_clip: f32,
}

impl DdimSampler {
    /// Creates a sampler with the given step count and guidance scale
    /// (and the default `z0` clip of 3 standard deviations).
    pub fn new(steps: usize, guidance_scale: f32) -> Self {
        DdimSampler { steps, guidance_scale, z0_clip: 3.0 }
    }

    /// Samples a batch from pure noise.
    ///
    /// With a condition and `guidance_scale > 1`, each step evaluates the
    /// UNet twice (conditional + unconditional) and extrapolates:
    /// `ε = ε_u + g (ε_c − ε_u)`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        shape: &[usize],
        cond: Option<&Tensor>,
        rng: &mut R,
    ) -> Tensor {
        let n = shape[0];
        let mut z = Tensor::randn(shape, rng);
        let ts = schedule.ddim_timesteps(self.steps.min(schedule.timesteps()));
        for (i, &t) in ts.iter().enumerate() {
            let batch_ts = vec![t; n];
            let eps_hat = match cond {
                Some(c) if self.guidance_scale != 1.0 => {
                    let cond_eps = unet.predict(&z, &batch_ts, Some(c));
                    let uncond_eps = unet.predict(&z, &batch_ts, None);
                    uncond_eps.add(&cond_eps.sub(&uncond_eps).mul_scalar(self.guidance_scale))
                }
                other => unet.predict(&z, &batch_ts, other),
            };
            let ab_t = schedule.alpha_bar(t);
            let z0_hat = z
                .sub(&eps_hat.mul_scalar((1.0 - ab_t).sqrt()))
                .mul_scalar(1.0 / ab_t.sqrt().max(1e-6))
                .clamp(-self.z0_clip, self.z0_clip);
            let t_prev = ts.get(i + 1).copied();
            match t_prev {
                Some(tp) => {
                    let ab_p = schedule.alpha_bar(tp);
                    z = z0_hat
                        .mul_scalar(ab_p.sqrt())
                        .add(&eps_hat.mul_scalar((1.0 - ab_p).sqrt()));
                }
                None => z = z0_hat,
            }
        }
        let _ = rng;
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::BetaSchedule;
    use crate::unet::UnetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setup() -> (CondUnet, NoiseSchedule) {
        let mut rng = StdRng::seed_from_u64(1);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 2,
                base_channels: 4,
                cond_dim: 3,
                time_embed_dim: 8,
                cond_tokens: 1,
                spatial_cond_cells: 16,
            },
            &mut rng,
        );
        let schedule =
            NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.01, beta_end: 0.1 }, 8);
        (unet, schedule)
    }

    #[test]
    fn ddpm_sample_shape_and_finite() {
        let (unet, schedule) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(2);
        let c = Tensor::randn(&[2, 3], &mut rng);
        let out = DdpmSampler::new().sample(&unet, &schedule, &[2, 2, 8, 8], Some(&c), &mut rng);
        assert_eq!(out.shape(), &[2, 2, 8, 8]);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ddim_sample_shape_and_finite() {
        let (unet, schedule) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(3);
        let c = Tensor::randn(&[1, 3], &mut rng);
        let out =
            DdimSampler::new(4, 2.0).sample(&unet, &schedule, &[1, 2, 8, 8], Some(&c), &mut rng);
        assert_eq!(out.shape(), &[1, 2, 8, 8]);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ddim_deterministic_given_rng_seed() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let a = DdimSampler::new(4, 1.0).sample(
            &unet,
            &schedule,
            &[1, 2, 8, 8],
            Some(&c),
            &mut StdRng::seed_from_u64(5),
        );
        let b = DdimSampler::new(4, 1.0).sample(
            &unet,
            &schedule,
            &[1, 2, 8, 8],
            Some(&c),
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn guidance_changes_output() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let low = DdimSampler::new(4, 1.0).sample(
            &unet,
            &schedule,
            &[1, 2, 8, 8],
            Some(&c),
            &mut StdRng::seed_from_u64(6),
        );
        let high = DdimSampler::new(4, 7.0).sample(
            &unet,
            &schedule,
            &[1, 2, 8, 8],
            Some(&c),
            &mut StdRng::seed_from_u64(6),
        );
        assert!(low.sub(&high).abs().max() > 1e-6);
    }
}
