//! Reverse-process samplers: DDPM ancestral and DDIM with classifier-free
//! guidance.
//!
//! The single public entry point is [`Sampler::run`], driven by a
//! [`SampleOptions`] value that bundles the noise source
//! ([`NoiseSpec`]), the optional condition, and an optional
//! [`TraceSink`] receiving the span trace of the run. The per-variant
//! methods that accreted across earlier revisions (`sample`,
//! `sample_from`, `sample_with_streams`) were removed after one release
//! as deprecated shims; every caller goes through [`Sampler::run`].
//!
//! Two helpers extend the options for image-conditioned tasks:
//! [`StepSink`] is a reusable per-step observer handle that multi-stage
//! cascades re-borrow per stage via [`StepSink::stage`], and
//! [`LatentPin`] implements masked re-denoise (inpainting) by
//! recomposing pinned latent cells after every DDIM step.

use crate::schedule::NoiseSchedule;
use crate::unet::CondUnet;
use aero_obs::span;
use aero_obs::TraceSink;
use aero_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared floor for every denominator of the reverse-process update rules
/// (`sqrt(alpha)`, `sqrt(alpha_bar)`, `sqrt(1 - alpha_bar)`). Near the ends
/// of the schedule these terms approach zero and an unguarded division
/// amplifies prediction error explosively; both samplers clamp through this
/// one constant so the guard can never drift between them.
const DENOM_EPS: f32 = 1e-6;

/// `sqrt(x)` guarded for use as a denominator.
fn guarded_sqrt(x: f32) -> f32 {
    x.sqrt().max(DENOM_EPS)
}

/// A source of cancellation observed between reverse-process steps.
///
/// Checked once at the top of every sampler step; when it reports
/// cancelled the run stops before evaluating the UNet again and returns
/// the latent as of the last completed step. Implementors must be cheap
/// — the check sits on the sampling hot path.
pub trait CancelSignal: Sync {
    /// `true` once the run should stop.
    fn is_cancelled(&self) -> bool;
}

/// Shared, thread-safe cancellation flag — the standard [`CancelSignal`].
///
/// Clones observe the same underlying flag, so a serving layer can hand
/// one clone to the client-facing side and another to the sampler.
/// Cancellation is one-way: once set, the token stays cancelled.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken(Arc::new(AtomicBool::new(false)))
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

impl CancelSignal for CancelToken {
    fn is_cancelled(&self) -> bool {
        CancelToken::is_cancelled(self)
    }
}

/// One completed reverse-process step, handed to
/// [`SampleOptions::with_on_step`] observers.
///
/// `latent` borrows the batch latent `[n, c, h, w]` as of the end of
/// the step; observers must copy out what they need. Observation never
/// perturbs the sampled tensor.
pub struct StepEvent<'t> {
    /// Zero-based index of the step that just finished.
    pub step: usize,
    /// Total number of steps the run will execute if not cancelled.
    pub total: usize,
    /// The batch latent after this step's update.
    pub latent: &'t Tensor,
}

/// A reusable handle on an optional per-step observer.
///
/// `Option<&mut dyn FnMut(StepEvent)>` is consumed by value by the first
/// sampling call it is passed to, which forced multi-stage callers (the
/// super-resolution cascade) into manual `as_mut().map(|f| &mut **f)`
/// re-borrow gymnastics. `StepSink` owns that re-borrow: hold one sink,
/// call [`StepSink::stage`] once per sampling stage, and every stage
/// reports into the same underlying observer.
#[derive(Default)]
pub struct StepSink<'a> {
    inner: Option<&'a mut dyn FnMut(StepEvent<'_>)>,
}

impl<'a> StepSink<'a> {
    /// A sink that observes nothing.
    pub fn none() -> Self {
        StepSink { inner: None }
    }

    /// Wraps an observer callback.
    pub fn new(observer: &'a mut dyn FnMut(StepEvent<'_>)) -> Self {
        StepSink { inner: Some(observer) }
    }

    /// Re-borrows the sink for one sampling stage. The original sink
    /// stays usable afterwards, so a cascade can thread one observer
    /// through several sequential stages.
    pub fn stage(&mut self) -> StepSink<'_> {
        StepSink { inner: self.inner.as_mut().map(|f| &mut **f as &mut dyn FnMut(StepEvent<'_>)) }
    }

    /// Whether an observer is attached.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Unwraps into the raw optional callback [`SampleOptions`] carries.
    pub fn into_on_step(self) -> Option<&'a mut dyn FnMut(StepEvent<'_>)> {
        self.inner
    }
}

impl<'a> From<Option<&'a mut dyn FnMut(StepEvent<'_>)>> for StepSink<'a> {
    fn from(inner: Option<&'a mut dyn FnMut(StepEvent<'_>)>) -> Self {
        StepSink { inner }
    }
}

/// Per-row latent pinning for masked re-denoise (inpainting).
///
/// After every DDIM step the latent is recomposed elementwise: where
/// `mask` is non-zero the sampler's value is kept (the region being
/// re-denoised), elsewhere the value is replaced with the clean
/// `reference` latent re-noised to the step's own noise level
/// (`√ᾱ·ref + √(1−ᾱ)·noise`, RePaint-style). On the final step the
/// pinned cells are set to `reference` exactly, so pixels whose decoder
/// receptive field never touches a masked cell come out byte-identical
/// to decoding `reference` directly.
///
/// Rows whose mask is all ones are bitwise untouched — pinning composes
/// with batch coalescing, so inpaint rows can share a batch with
/// text-to-image rows without perturbing them.
#[derive(Debug, Clone)]
pub struct LatentPin {
    mask: Tensor,
    reference: Tensor,
    noise: Tensor,
}

impl LatentPin {
    /// Builds a pin from a writable-region mask (non-zero = sampler may
    /// write), the clean reference latent, and the fixed noise used to
    /// re-noise the reference at intermediate steps. All three must share
    /// the batch latent shape `[n, c, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics when the shapes disagree.
    pub fn new(mask: Tensor, reference: Tensor, noise: Tensor) -> Self {
        assert_eq!(mask.shape(), reference.shape(), "pin mask/reference shape mismatch");
        assert_eq!(mask.shape(), noise.shape(), "pin mask/noise shape mismatch");
        LatentPin { mask, reference, noise }
    }

    /// The writable-region mask.
    pub fn mask(&self) -> &Tensor {
        &self.mask
    }

    /// Recomposes `z` at noise level `alpha_bar`: exact elementwise
    /// select, so fully-writable rows (and cells) are bitwise untouched.
    fn apply(&self, z: &Tensor, alpha_bar: f32) -> Tensor {
        let (sa, sn) = (alpha_bar.sqrt(), (1.0 - alpha_bar).sqrt());
        let mut out = z.as_slice().to_vec();
        let mask = self.mask.as_slice();
        let reference = self.reference.as_slice();
        let noise = self.noise.as_slice();
        for (i, value) in out.iter_mut().enumerate() {
            if mask[i] == 0.0 {
                *value =
                    if alpha_bar >= 1.0 { reference[i] } else { sa * reference[i] + sn * noise[i] };
            }
        }
        Tensor::from_vec(out, z.shape())
    }
}

/// Per-step control threaded through the private sampler loops: the
/// cancel flag checked at the top of each step and the observer invoked
/// at the bottom.
struct StepCtrl<'a, 'b> {
    cancel: Option<&'a dyn CancelSignal>,
    on_step: Option<&'b mut dyn FnMut(StepEvent<'_>)>,
}

impl StepCtrl<'_, '_> {
    fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelSignal::is_cancelled)
    }

    fn emit(&mut self, step: usize, total: usize, latent: &Tensor) {
        if let Some(cb) = self.on_step.as_mut() {
            cb(StepEvent { step, total, latent });
        }
    }
}

/// Where a run's starting noise (and, for DDPM, per-step noise) comes
/// from.
///
/// The three variants correspond to the three reproducibility contracts
/// the workspace needs:
///
/// - [`Latent`](NoiseSpec::Latent): the caller fixed `z_T` explicitly —
///   fully deterministic, the serving batcher's contract.
/// - [`Shared`](NoiseSpec::Shared): all batch rows draw from one RNG —
///   cheapest, but a row's output depends on its batch context.
/// - [`PerSample`](NoiseSpec::PerSample): row `i` draws only from
///   `rngs[i]`, so each row is identical whether it ran in a batch of 1
///   or of 8.
pub enum NoiseSpec<'a, R = StdRng> {
    /// An explicit initial latent `z_T` of shape `[n, c, h, w]`.
    ///
    /// DDIM (η = 0) is fully deterministic from here. DDPM cannot run
    /// from a bare latent — ancestral steps need fresh noise — so
    /// [`Sampler::run`] panics on this combination.
    Latent(Tensor),
    /// Draw everything from one shared RNG; `shape` is `[n, c, h, w]`.
    Shared {
        /// Full batch shape `[n, c, h, w]`.
        shape: &'a [usize],
        /// The single RNG all rows share.
        rng: &'a mut R,
    },
    /// One independent RNG stream per batch row; the batch size is
    /// `rngs.len()` and `sample_shape` is the per-sample `[c, h, w]`.
    PerSample {
        /// Per-sample shape `[c, h, w]`.
        sample_shape: &'a [usize],
        /// One stream per row; must be non-empty.
        rngs: &'a mut [R],
    },
}

/// Options driving one [`Sampler::run`] call: noise source, optional
/// condition, optional trace sink, optional cancellation flag, optional
/// per-step observer.
pub struct SampleOptions<'a, R = StdRng> {
    /// Where the run's noise comes from.
    pub noise: NoiseSpec<'a, R>,
    /// Conditioning batch `[n, cond_dim]`, or `None` for unconditional.
    pub cond: Option<&'a Tensor>,
    /// When set, the run executes under span collection and the
    /// finished trace is handed to this sink. Observation never
    /// perturbs the sampled tensor.
    pub trace: Option<&'a mut dyn TraceSink>,
    /// Checked between steps; when it reports cancelled the run stops
    /// early and returns the latent as of the last completed step.
    pub cancel: Option<&'a dyn CancelSignal>,
    /// Invoked after every completed step with the current batch latent
    /// (streamed previews, progress bars). Never perturbs the output.
    pub on_step: Option<&'a mut dyn FnMut(StepEvent<'_>)>,
    /// Per-row masked re-denoise: pinned latent cells are recomposed
    /// after every step (DDIM only; see [`LatentPin`]).
    pub pin: Option<&'a LatentPin>,
}

impl<'a> SampleOptions<'a, StdRng> {
    /// Starts from an explicit initial latent (DDIM only). Named on the
    /// `StdRng` instantiation so type inference works without an RNG in
    /// sight.
    pub fn from_latent(z_init: Tensor) -> Self {
        SampleOptions {
            noise: NoiseSpec::Latent(z_init),
            cond: None,
            trace: None,
            cancel: None,
            on_step: None,
            pin: None,
        }
    }
}

impl<'a, R: Rng> SampleOptions<'a, R> {
    /// Draws all noise from one shared RNG; `shape` is `[n, c, h, w]`.
    pub fn from_rng(shape: &'a [usize], rng: &'a mut R) -> Self {
        SampleOptions {
            noise: NoiseSpec::Shared { shape, rng },
            cond: None,
            trace: None,
            cancel: None,
            on_step: None,
            pin: None,
        }
    }

    /// One independent RNG stream per batch row (`sample_shape` is the
    /// per-sample `[c, h, w]`; the batch size is `rngs.len()`).
    pub fn from_streams(sample_shape: &'a [usize], rngs: &'a mut [R]) -> Self {
        SampleOptions {
            noise: NoiseSpec::PerSample { sample_shape, rngs },
            cond: None,
            trace: None,
            cancel: None,
            on_step: None,
            pin: None,
        }
    }

    /// Sets the conditioning batch.
    #[must_use]
    pub fn with_cond(mut self, cond: &'a Tensor) -> Self {
        self.cond = Some(cond);
        self
    }

    /// Sets the conditioning batch from an `Option` (ergonomic for
    /// callers that already hold `Option<&Tensor>`).
    #[must_use]
    pub fn with_cond_opt(mut self, cond: Option<&'a Tensor>) -> Self {
        self.cond = cond;
        self
    }

    /// Collects the run's span trace into `sink`.
    #[must_use]
    pub fn with_trace(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Stops the run early when `signal` reports cancelled (checked
    /// between steps; the partial latent of the last completed step is
    /// returned).
    #[must_use]
    pub fn with_cancel(mut self, signal: &'a dyn CancelSignal) -> Self {
        self.cancel = Some(signal);
        self
    }

    /// Observes every completed step ([`StepEvent`] carries the current
    /// batch latent). Observation never changes the returned tensor.
    #[must_use]
    pub fn with_on_step(mut self, observer: &'a mut dyn FnMut(StepEvent<'_>)) -> Self {
        self.on_step = Some(observer);
        self
    }

    /// Attaches a (possibly empty) [`StepSink`] stage as the observer —
    /// the multi-stage-friendly form of
    /// [`with_on_step`](SampleOptions::with_on_step).
    #[must_use]
    pub fn with_sink(mut self, sink: StepSink<'a>) -> Self {
        self.on_step = sink.into_on_step();
        self
    }

    /// Pins latent cells outside a mask to a reference latent after every
    /// step (masked re-denoise; DDIM only).
    #[must_use]
    pub fn with_pin(mut self, pin: &'a LatentPin) -> Self {
        self.pin = Some(pin);
        self
    }
}

/// A reverse-process sampler: the one public sampling entry point is
/// [`Sampler::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampler {
    /// Deterministic DDIM with classifier-free guidance.
    Ddim(DdimSampler),
    /// Ancestral DDPM.
    Ddpm(DdpmSampler),
}

impl Sampler {
    /// Runs the reverse process described by `opts`.
    ///
    /// Emits `sampler.ddim` / `sampler.ddpm` spans with one
    /// `unet.denoise_step` child per step; when `opts.trace` is set the
    /// run executes under span collection and the finished trace goes
    /// to the sink. Tracing never changes the returned tensor.
    ///
    /// # Panics
    ///
    /// Panics when asked to run ancestral DDPM from a bare
    /// [`NoiseSpec::Latent`] (the ancestral chain needs fresh per-step
    /// noise) or with a [`LatentPin`] (masked re-denoise is a DDIM
    /// contract), or when [`NoiseSpec::PerSample`] has no streams.
    pub fn run<R: Rng>(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        opts: SampleOptions<'_, R>,
    ) -> Tensor {
        let SampleOptions { noise, cond, trace, cancel, on_step, pin } = opts;
        let mut ctrl = StepCtrl { cancel, on_step };
        match trace {
            Some(sink) => {
                let (out, trace) = aero_obs::span::collect(|| {
                    self.run_inner(unet, schedule, noise, cond, pin, &mut ctrl)
                });
                sink.consume(&trace);
                out
            }
            None => self.run_inner(unet, schedule, noise, cond, pin, &mut ctrl),
        }
    }

    fn run_inner<R: Rng>(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        noise: NoiseSpec<'_, R>,
        cond: Option<&Tensor>,
        pin: Option<&LatentPin>,
        ctrl: &mut StepCtrl<'_, '_>,
    ) -> Tensor {
        match self {
            Sampler::Ddim(s) => {
                let _span = span!("sampler.ddim");
                let z_init = match noise {
                    NoiseSpec::Latent(z) => z,
                    NoiseSpec::Shared { shape, rng } => Tensor::randn(shape, rng),
                    NoiseSpec::PerSample { sample_shape, rngs } => {
                        assert!(!rngs.is_empty(), "need at least one RNG stream");
                        stack_noise(sample_shape, rngs)
                    }
                };
                s.denoise(unet, schedule, z_init, cond, pin, ctrl)
            }
            Sampler::Ddpm(s) => {
                let _span = span!("sampler.ddpm");
                assert!(
                    pin.is_none(),
                    "masked re-denoise (LatentPin) is only defined for deterministic DDIM runs"
                );
                match noise {
                    NoiseSpec::Latent(_) => panic!(
                        "ancestral DDPM needs fresh per-step noise; \
                         pass NoiseSpec::Shared or NoiseSpec::PerSample (or use DDIM for a \
                         deterministic run from a fixed latent)"
                    ),
                    NoiseSpec::Shared { shape, rng } => {
                        s.ancestral_shared(unet, schedule, shape, cond, rng, ctrl)
                    }
                    NoiseSpec::PerSample { sample_shape, rngs } => {
                        assert!(!rngs.is_empty(), "need at least one RNG stream");
                        s.ancestral_streams(unet, schedule, sample_shape, cond, rngs, ctrl)
                    }
                }
            }
        }
    }
}

/// Ancestral DDPM sampler (the paper's training-time scheduler family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DdpmSampler;

impl DdpmSampler {
    /// Creates the sampler.
    pub fn new() -> Self {
        DdpmSampler
    }

    /// Runs all `T` ancestral steps with every row drawing from the one
    /// shared `rng`. `shape` is `[n, c, h, w]`.
    fn ancestral_shared<R: Rng + ?Sized>(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        shape: &[usize],
        cond: Option<&Tensor>,
        rng: &mut R,
        ctrl: &mut StepCtrl<'_, '_>,
    ) -> Tensor {
        let n = shape[0];
        let total = schedule.timesteps();
        let mut z = Tensor::randn(shape, rng);
        let mut ts = vec![0usize; n];
        for (i, t) in (0..total).rev().enumerate() {
            if ctrl.cancelled() {
                break;
            }
            let _step = span!("unet.denoise_step");
            ts.fill(t);
            let eps_hat = unet.predict(&z, &ts, cond);
            let mean = self.posterior_mean(schedule, t, &z, &eps_hat);
            if t > 0 {
                let sigma = schedule.beta(t).sqrt();
                z = mean.add(&Tensor::randn(shape, rng).mul_scalar(sigma));
            } else {
                z = mean;
            }
            ctrl.emit(i, total, &z);
        }
        z
    }

    /// Runs all `T` ancestral steps where row `i`'s initial latent and
    /// every ancestral draw come from `rngs[i]` alone, so the output row
    /// is identical whether the request ran in a batch of 1 or of 8
    /// (the serving batcher relies on this).
    fn ancestral_streams<R: Rng>(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        sample_shape: &[usize],
        cond: Option<&Tensor>,
        rngs: &mut [R],
        ctrl: &mut StepCtrl<'_, '_>,
    ) -> Tensor {
        let n = rngs.len();
        let total = schedule.timesteps();
        let mut z = stack_noise(sample_shape, rngs);
        let mut ts = vec![0usize; n];
        for (i, t) in (0..total).rev().enumerate() {
            if ctrl.cancelled() {
                break;
            }
            let _step = span!("unet.denoise_step");
            ts.fill(t);
            let eps_hat = unet.predict(&z, &ts, cond);
            let mean = self.posterior_mean(schedule, t, &z, &eps_hat);
            if t > 0 {
                let sigma = schedule.beta(t).sqrt();
                z = mean.add(&stack_noise(sample_shape, rngs).mul_scalar(sigma));
            } else {
                z = mean;
            }
            ctrl.emit(i, total, &z);
        }
        z
    }

    /// One ancestral posterior mean `μ(z_t, ε̂)` (Eq. 11 of DDPM).
    fn posterior_mean(
        &self,
        schedule: &NoiseSchedule,
        t: usize,
        z: &Tensor,
        eps_hat: &Tensor,
    ) -> Tensor {
        let alpha = schedule.alpha(t);
        let alpha_bar = schedule.alpha_bar(t);
        let coef = (1.0 - alpha) / guarded_sqrt(1.0 - alpha_bar);
        z.sub(&eps_hat.mul_scalar(coef)).mul_scalar(1.0 / guarded_sqrt(alpha))
    }
}

/// Per-sample noise rows, one from each stream, stacked to `[n, c, h, w]`.
fn stack_noise<R: Rng>(sample_shape: &[usize], rngs: &mut [R]) -> Tensor {
    let rows: Vec<Tensor> = rngs.iter_mut().map(|r| Tensor::randn(sample_shape, r)).collect();
    let refs: Vec<&Tensor> = rows.iter().collect();
    Tensor::stack(&refs)
}

/// DDIM sampler (η = 0, deterministic given the start noise) with
/// classifier-free guidance — the paper denoises in 250 DDIM steps with a
/// guidance scale of 7.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdimSampler {
    /// Number of inference steps.
    pub steps: usize,
    /// Classifier-free guidance scale (1.0 disables guidance).
    pub guidance_scale: f32,
    /// Static threshold on the predicted `z0` (clamped to this many
    /// standard deviations). Near `t = T` the reconstruction divides by
    /// `sqrt(alpha_bar_T) ~ 0`, so an unclamped estimate amplifies early
    /// prediction error explosively with few inference steps.
    pub z0_clip: f32,
}

impl DdimSampler {
    /// Creates a sampler with the given step count and guidance scale
    /// (and the default `z0` clip of 3 standard deviations).
    pub fn new(steps: usize, guidance_scale: f32) -> Self {
        DdimSampler { steps, guidance_scale, z0_clip: 3.0 }
    }

    /// Runs the deterministic reverse process from an explicit initial
    /// latent `z_T` of shape `[n, c, h, w]`.
    ///
    /// Because every per-row operation is independent, row `i` of the
    /// output depends only on row `i` of `z_init` (and of `cond`) — the
    /// serving batcher uses this to coalesce requests without changing
    /// any request's result.
    ///
    /// With a condition and `guidance_scale > 1`, each step evaluates the
    /// UNet twice (conditional + unconditional) and extrapolates:
    /// `ε = ε_u + g (ε_c − ε_u)`.
    fn denoise(
        &self,
        unet: &CondUnet,
        schedule: &NoiseSchedule,
        z_init: Tensor,
        cond: Option<&Tensor>,
        pin: Option<&LatentPin>,
        ctrl: &mut StepCtrl<'_, '_>,
    ) -> Tensor {
        let n = z_init.shape()[0];
        let mut z = z_init;
        let ts = schedule.ddim_timesteps(self.steps.min(schedule.timesteps()));
        let mut batch_ts = vec![0usize; n];
        for (i, &t) in ts.iter().enumerate() {
            if ctrl.cancelled() {
                break;
            }
            let _step = span!("unet.denoise_step");
            if i == 0 {
                if let Some(p) = pin {
                    // Replace pinned cells of the start noise with the
                    // forward-diffused reference at the first timestep, so
                    // the UNet sees a latent consistent with the known
                    // region from step one.
                    z = p.apply(&z, schedule.alpha_bar(t));
                }
            }
            batch_ts.fill(t);
            let eps_hat = match cond {
                Some(c) if self.guidance_scale != 1.0 => {
                    let cond_eps = unet.predict(&z, &batch_ts, Some(c));
                    let uncond_eps = unet.predict(&z, &batch_ts, None);
                    uncond_eps.add(&cond_eps.sub(&uncond_eps).mul_scalar(self.guidance_scale))
                }
                other => unet.predict(&z, &batch_ts, other),
            };
            let ab_t = schedule.alpha_bar(t);
            let z0_hat = z
                .sub(&eps_hat.mul_scalar((1.0 - ab_t).sqrt()))
                .mul_scalar(1.0 / guarded_sqrt(ab_t))
                .clamp(-self.z0_clip, self.z0_clip);
            let t_prev = ts.get(i + 1).copied();
            match t_prev {
                Some(tp) => {
                    let ab_p = schedule.alpha_bar(tp);
                    z = z0_hat
                        .mul_scalar(ab_p.sqrt())
                        .add(&eps_hat.mul_scalar((1.0 - ab_p).sqrt()));
                    if let Some(p) = pin {
                        z = p.apply(&z, ab_p);
                    }
                }
                None => {
                    z = z0_hat;
                    if let Some(p) = pin {
                        // Final step: pin the known cells to the reference
                        // exactly (alpha_bar = 1 at t = 0).
                        z = p.apply(&z, 1.0);
                    }
                }
            }
            ctrl.emit(i, ts.len(), &z);
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::BetaSchedule;
    use crate::unet::UnetConfig;
    use aero_obs::TableTraceSink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setup() -> (CondUnet, NoiseSchedule) {
        let mut rng = StdRng::seed_from_u64(1);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 2,
                base_channels: 4,
                cond_dim: 3,
                time_embed_dim: 8,
                cond_tokens: 1,
                spatial_cond_cells: 16,
            },
            &mut rng,
        );
        let schedule =
            NoiseSchedule::new(BetaSchedule::Linear { beta_start: 0.01, beta_end: 0.1 }, 8);
        (unet, schedule)
    }

    #[test]
    fn ddpm_sample_shape_and_finite() {
        let (unet, schedule) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(2);
        let c = Tensor::randn(&[2, 3], &mut rng);
        let out = Sampler::Ddpm(DdpmSampler::new()).run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[2, 2, 8, 8], &mut rng).with_cond(&c),
        );
        assert_eq!(out.shape(), &[2, 2, 8, 8]);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ddim_sample_shape_and_finite() {
        let (unet, schedule) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(3);
        let c = Tensor::randn(&[1, 3], &mut rng);
        let out = Sampler::Ddim(DdimSampler::new(4, 2.0)).run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut rng).with_cond(&c),
        );
        assert_eq!(out.shape(), &[1, 2, 8, 8]);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ddim_deterministic_given_rng_seed() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let sampler = Sampler::Ddim(DdimSampler::new(4, 1.0));
        let a = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(5)).with_cond(&c),
        );
        let b = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(5)).with_cond(&c),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn ddim_from_rng_matches_from_latent_on_same_noise() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let sampler = Sampler::Ddim(DdimSampler::new(4, 2.0));
        let via_rng = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(8)).with_cond(&c),
        );
        let noise = Tensor::randn(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(8));
        let via_latent =
            sampler.run(&unet, &schedule, SampleOptions::from_latent(noise).with_cond(&c));
        assert_eq!(via_rng, via_latent);
    }

    #[test]
    fn ddim_rows_are_batch_invariant() {
        // The serving contract: a request's output is byte-identical
        // whether it ran alone or coalesced into a batch.
        let (unet, schedule) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(11);
        let noise_a = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let noise_b = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let cond_a = Tensor::randn(&[1, 3], &mut rng);
        let cond_b = Tensor::randn(&[1, 3], &mut rng);
        let sampler = Sampler::Ddim(DdimSampler::new(4, 2.0));

        let batch_cond = Tensor::concat(&[&cond_a, &cond_b], 0);
        let batched = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_latent(Tensor::concat(&[&noise_a, &noise_b], 0))
                .with_cond(&batch_cond),
        );
        let solo_a =
            sampler.run(&unet, &schedule, SampleOptions::from_latent(noise_a).with_cond(&cond_a));
        let solo_b =
            sampler.run(&unet, &schedule, SampleOptions::from_latent(noise_b).with_cond(&cond_b));

        assert_eq!(batched.narrow(0, 0, 1), solo_a);
        assert_eq!(batched.narrow(0, 1, 1), solo_b);
    }

    #[test]
    fn ddpm_streams_are_batch_invariant() {
        let (unet, schedule) = tiny_setup();
        let mut seed_rng = StdRng::seed_from_u64(13);
        let cond = Tensor::randn(&[2, 3], &mut seed_rng);
        let sampler = Sampler::Ddpm(DdpmSampler::new());

        let mut batch_rngs = [StdRng::seed_from_u64(21), StdRng::seed_from_u64(22)];
        let batched = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_streams(&[2, 8, 8], &mut batch_rngs).with_cond(&cond),
        );

        let cond_a = cond.narrow(0, 0, 1);
        let mut solo_a = [StdRng::seed_from_u64(21)];
        let a = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_streams(&[2, 8, 8], &mut solo_a).with_cond(&cond_a),
        );
        let cond_b = cond.narrow(0, 1, 1);
        let mut solo_b = [StdRng::seed_from_u64(22)];
        let b = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_streams(&[2, 8, 8], &mut solo_b).with_cond(&cond_b),
        );

        assert_eq!(batched.narrow(0, 0, 1), a);
        assert_eq!(batched.narrow(0, 1, 1), b);
    }

    #[test]
    fn guidance_changes_output() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let low = Sampler::Ddim(DdimSampler::new(4, 1.0)).run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(6)).with_cond(&c),
        );
        let high = Sampler::Ddim(DdimSampler::new(4, 7.0)).run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(6)).with_cond(&c),
        );
        assert!(low.sub(&high).abs().max() > 1e-6);
    }

    #[test]
    fn consolidated_entry_point_is_deterministic_per_options() {
        // The old shim-parity test migrated here: every caller now goes
        // through `Sampler::run`, so the contract worth pinning is that
        // identical options reproduce bitwise-identical samples for both
        // algorithms and both noise specifications.
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);

        let ddim = Sampler::Ddim(DdimSampler::new(4, 2.0));
        let first = ddim.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(17)).with_cond(&c),
        );
        let second = ddim.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(17)).with_cond(&c),
        );
        assert_eq!(first, second);

        let ddpm = Sampler::Ddpm(DdpmSampler::new());
        let mut rngs_a = [StdRng::seed_from_u64(18)];
        let streams_a = ddpm.run(
            &unet,
            &schedule,
            SampleOptions::from_streams(&[2, 8, 8], &mut rngs_a).with_cond(&c),
        );
        let mut rngs_b = [StdRng::seed_from_u64(18)];
        let streams_b = ddpm.run(
            &unet,
            &schedule,
            SampleOptions::from_streams(&[2, 8, 8], &mut rngs_b).with_cond(&c),
        );
        assert_eq!(streams_a, streams_b);
    }

    #[test]
    fn tracing_never_perturbs_the_output() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let sampler = Sampler::Ddim(DdimSampler::new(4, 2.0));
        let plain = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(23)).with_cond(&c),
        );
        let mut sink = TableTraceSink::new();
        let traced = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(23))
                .with_cond(&c)
                .with_trace(&mut sink),
        );
        assert_eq!(plain, traced);
        let rendered = sink.take_rendered();
        assert!(rendered.contains("sampler.ddim"), "{rendered}");
        assert!(rendered.contains("unet.denoise_step ×4"), "{rendered}");
    }

    #[test]
    fn on_step_observes_every_step_without_perturbing_output() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let sampler = Sampler::Ddim(DdimSampler::new(4, 2.0));
        let plain = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(29)).with_cond(&c),
        );
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut observer = |ev: StepEvent<'_>| {
            assert_eq!(ev.latent.shape(), &[1, 2, 8, 8]);
            seen.push((ev.step, ev.total));
        };
        let observed = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(29))
                .with_cond(&c)
                .with_on_step(&mut observer),
        );
        assert_eq!(plain, observed);
        assert_eq!(seen, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn cancel_mid_run_stops_before_final_step() {
        let (unet, schedule) = tiny_setup();
        let c = Tensor::ones(&[1, 3]);
        let sampler = Sampler::Ddim(DdimSampler::new(4, 2.0));
        let token = CancelToken::new();
        let mut steps_seen = 0usize;
        let mut observer = |ev: StepEvent<'_>| {
            steps_seen += 1;
            if ev.step == 1 {
                token.clone().cancel();
            }
        };
        let partial = sampler.run(
            &unet,
            &schedule,
            SampleOptions::from_rng(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(31))
                .with_cond(&c)
                .with_cancel(&token)
                .with_on_step(&mut observer),
        );
        // Cancelled during step 1's observer, so step 2 never ran: two
        // steps completed out of four.
        assert_eq!(steps_seen, 2);
        assert!(partial.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(partial.shape(), &[1, 2, 8, 8]);
    }

    #[test]
    fn pre_cancelled_run_returns_initial_latent_untouched() {
        let (unet, schedule) = tiny_setup();
        let z = Tensor::randn(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(37));
        let token = CancelToken::new();
        token.cancel();
        let out = Sampler::Ddim(DdimSampler::new(4, 1.0)).run(
            &unet,
            &schedule,
            SampleOptions::from_latent(z.clone()).with_cancel(&token),
        );
        assert_eq!(out, z);
    }

    #[test]
    fn ddpm_cancel_stops_ancestral_chain_early() {
        let (unet, schedule) = tiny_setup();
        let token = CancelToken::new();
        let mut steps_seen = 0usize;
        let mut observer = |ev: StepEvent<'_>| {
            steps_seen += 1;
            if ev.step == 0 {
                token.clone().cancel();
            }
        };
        let mut rngs = [StdRng::seed_from_u64(41)];
        let out = Sampler::Ddpm(DdpmSampler::new()).run(
            &unet,
            &schedule,
            SampleOptions::from_streams(&[2, 8, 8], &mut rngs)
                .with_cancel(&token)
                .with_on_step(&mut observer),
        );
        assert_eq!(steps_seen, 1);
        assert_eq!(out.shape(), &[1, 2, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "per-step noise")]
    fn ddpm_from_latent_is_rejected() {
        let (unet, schedule) = tiny_setup();
        let z = Tensor::zeros(&[1, 2, 8, 8]);
        let _ =
            Sampler::Ddpm(DdpmSampler::new()).run(&unet, &schedule, SampleOptions::from_latent(z));
    }

    #[test]
    fn pin_with_all_ones_mask_is_bitwise_noop() {
        let (unet, schedule) = tiny_setup();
        let z = Tensor::randn(&[2, 2, 8, 8], &mut StdRng::seed_from_u64(51));
        let reference = Tensor::randn(&[2, 2, 8, 8], &mut StdRng::seed_from_u64(52));
        let noise = Tensor::randn(&[2, 2, 8, 8], &mut StdRng::seed_from_u64(53));
        let pin = LatentPin::new(Tensor::from_vec(vec![1.0; 256], &[2, 2, 8, 8]), reference, noise);
        let sampler = Sampler::Ddim(DdimSampler::new(4, 1.0));
        let plain = sampler.run(&unet, &schedule, SampleOptions::from_latent(z.clone()));
        let pinned = sampler.run(&unet, &schedule, SampleOptions::from_latent(z).with_pin(&pin));
        assert_eq!(plain.as_slice(), pinned.as_slice(), "all-writable pin must be a no-op");
    }

    #[test]
    fn pin_forces_masked_cells_to_reference_exactly() {
        let (unet, schedule) = tiny_setup();
        let z = Tensor::randn(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(61));
        let reference = Tensor::randn(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(62));
        let noise = Tensor::randn(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(63));
        // Writable only in the top-left 4x4 corner of each channel.
        let mut mask = vec![0.0f32; 128];
        for c in 0..2 {
            for y in 0..4 {
                for x in 0..4 {
                    mask[c * 64 + y * 8 + x] = 1.0;
                }
            }
        }
        let mask = Tensor::from_vec(mask, &[1, 2, 8, 8]);
        let pin = LatentPin::new(mask.clone(), reference.clone(), noise);
        let out = Sampler::Ddim(DdimSampler::new(4, 1.0)).run(
            &unet,
            &schedule,
            SampleOptions::from_latent(z).with_pin(&pin),
        );
        for (i, (&m, (&o, &r))) in
            mask.as_slice().iter().zip(out.as_slice().iter().zip(reference.as_slice())).enumerate()
        {
            if m == 0.0 {
                assert_eq!(o.to_bits(), r.to_bits(), "pinned cell {i} must equal the reference");
            }
        }
    }

    #[test]
    #[should_panic(expected = "DDIM")]
    fn pin_with_ddpm_is_rejected() {
        let (unet, schedule) = tiny_setup();
        let shape = &[1, 2, 8, 8];
        let pin = LatentPin::new(
            Tensor::from_vec(vec![1.0; 128], shape),
            Tensor::zeros(shape),
            Tensor::zeros(shape),
        );
        let mut rng = StdRng::seed_from_u64(71);
        let _ = Sampler::Ddpm(DdpmSampler::new()).run(
            &unet,
            &schedule,
            SampleOptions::from_rng(shape, &mut rng).with_pin(&pin),
        );
    }

    #[test]
    fn step_sink_threads_one_observer_through_two_stages() {
        let (unet, schedule) = tiny_setup();
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut observer = |ev: StepEvent<'_>| seen.push((ev.step, ev.total));
        let sampler = Sampler::Ddim(DdimSampler::new(3, 1.0));
        {
            // The sink borrows the observer; scope it so `seen` can be
            // read back afterwards.
            let mut sink = StepSink::new(&mut observer);
            for seed in [81u64, 82] {
                let z = Tensor::randn(&[1, 2, 8, 8], &mut StdRng::seed_from_u64(seed));
                let _ = sampler.run(
                    &unet,
                    &schedule,
                    SampleOptions::from_latent(z).with_sink(sink.stage()),
                );
            }
        }
        assert_eq!(seen, vec![(0, 3), (1, 3), (2, 3), (0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn inactive_step_sink_reports_inactive() {
        assert!(!StepSink::none().is_active());
        let mut observer = |_: StepEvent<'_>| {};
        assert!(StepSink::new(&mut observer).is_active());
    }
}
