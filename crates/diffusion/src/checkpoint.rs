//! Crash-safe training checkpoints with exact resume.
//!
//! Long diffusion runs die — OOM kills, preemptions, power loss — and
//! without checkpoints every death restarts training from scratch. This
//! module persists everything the training loop needs to continue
//! *bit-identically*:
//!
//! - the optimized parameter values,
//! - Adam's first/second moments and bias-correction step counter,
//! - the RNG state (noise draws, timestep sampling, condition dropout
//!   and epoch shuffles all consume the same generator),
//! - the training cursor: global step, epoch, position within the
//!   epoch, and the epoch's shuffled batch order.
//!
//! Each checkpoint is a directory `step-<n>/` written under a tmp name
//! and atomically renamed into place, carrying a `manifest.txt` with
//! per-blob CRC32 checksums (see [`aero_nn::integrity`]). On resume the
//! newest checkpoint that passes verification wins; corrupt or
//! half-written ones are skipped, not trusted. Only the last
//! [`CheckpointConfig::keep`] checkpoints are retained on disk.

use crate::trainer::{DiffusionTrainer, TrainBatch};
use crate::unet::CondUnet;
use aero_nn::integrity::{IntegrityError, Manifest};
use aero_nn::optim::{Adam, AdamState};
use aero_nn::serialize::{decode_tensors, encode_params, load_into_params, LoadWeightsError};
use aero_nn::{Module, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Where and how often to checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding the `step-<n>/` checkpoint subdirectories.
    pub dir: PathBuf,
    /// Save every this many optimizer steps (0 disables periodic saves;
    /// a final checkpoint is still written when a run completes).
    pub every: u64,
    /// How many checkpoints to retain; older ones are pruned.
    pub keep: usize,
}

impl CheckpointConfig {
    /// A config saving every `every` steps into `dir`, keeping 3.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> Self {
        CheckpointConfig { dir: dir.into(), every, keep: 3 }
    }
}

/// The exact position of a training run, sufficient to continue it
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainCursor {
    /// Global optimizer steps completed.
    pub step: u64,
    /// The epoch in progress.
    pub epoch: usize,
    /// Index into [`TrainCursor::order`] of the next batch to train.
    pub batch: usize,
    /// The in-progress epoch's shuffled batch order.
    pub order: Vec<usize>,
    /// RNG state *after* the last completed step.
    pub rng: [u64; 4],
}

/// Error saving or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The manifest is missing/malformed, versioned wrong, or a blob
    /// failed its checksum.
    Integrity(IntegrityError),
    /// A weight blob failed to decode or mismatched the parameters.
    Weights(LoadWeightsError),
    /// The cursor metadata (`state.txt`) is malformed.
    Meta(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failure: {e}"),
            CheckpointError::Integrity(e) => write!(f, "checkpoint integrity failure: {e}"),
            CheckpointError::Weights(e) => write!(f, "checkpoint weight failure: {e}"),
            CheckpointError::Meta(d) => write!(f, "malformed checkpoint state: {d}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Integrity(e) => Some(e),
            CheckpointError::Weights(e) => Some(e),
            CheckpointError::Meta(_) => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<IntegrityError> for CheckpointError {
    fn from(e: IntegrityError) -> Self {
        CheckpointError::Integrity(e)
    }
}

impl From<LoadWeightsError> for CheckpointError {
    fn from(e: LoadWeightsError) -> Self {
        CheckpointError::Weights(e)
    }
}

const BLOBS: [&str; 3] = ["params.aero", "adam.aero", "state.txt"];

fn render_state(cursor: &TrainCursor, adam_step: u64) -> String {
    let rng = cursor.rng.map(|w| w.to_string()).join(",");
    let order = cursor.order.iter().map(ToString::to_string).collect::<Vec<_>>().join(",");
    format!(
        "step={}\nadam_step={adam_step}\nepoch={}\nbatch={}\nrng={rng}\norder={order}\n",
        cursor.step, cursor.epoch, cursor.batch
    )
}

fn parse_state(text: &str) -> Result<(TrainCursor, u64), CheckpointError> {
    let mut step = None;
    let mut adam_step = None;
    let mut epoch = None;
    let mut batch = None;
    let mut rng = None;
    let mut order = None;
    for line in text.lines() {
        let Some((k, v)) = line.split_once('=') else { continue };
        match k {
            "step" => step = v.parse().ok(),
            "adam_step" => adam_step = v.parse().ok(),
            "epoch" => epoch = v.parse().ok(),
            "batch" => batch = v.parse().ok(),
            "rng" => {
                let words: Vec<u64> = v.split(',').filter_map(|w| w.parse().ok()).collect();
                if words.len() == 4 {
                    rng = Some([words[0], words[1], words[2], words[3]]);
                }
            }
            "order" => {
                if v.is_empty() {
                    order = Some(Vec::new());
                } else {
                    let idx: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                    order = idx.ok();
                }
            }
            _ => {}
        }
    }
    let missing = |what: &str| CheckpointError::Meta(format!("missing or malformed {what}"));
    Ok((
        TrainCursor {
            step: step.ok_or_else(|| missing("step"))?,
            epoch: epoch.ok_or_else(|| missing("epoch"))?,
            batch: batch.ok_or_else(|| missing("batch"))?,
            order: order.ok_or_else(|| missing("order"))?,
            rng: rng.ok_or_else(|| missing("rng"))?,
        },
        adam_step.ok_or_else(|| missing("adam_step"))?,
    ))
}

/// Saves one checkpoint atomically: blobs land in a tmp directory that
/// is renamed to `step-<n>/` only once complete, then older checkpoints
/// beyond [`CheckpointConfig::keep`] are pruned.
///
/// # Errors
///
/// Propagates I/O failures; the previous checkpoints are untouched on
/// error.
pub fn save_checkpoint(
    config: &CheckpointConfig,
    cursor: &TrainCursor,
    params: &[Var],
    opt: &Adam,
) -> Result<PathBuf, CheckpointError> {
    fs::create_dir_all(&config.dir)?;
    let final_dir = config.dir.join(format!("step-{:08}", cursor.step));
    let tmp_dir = config.dir.join(format!(".tmp-step-{:08}", cursor.step));
    if tmp_dir.exists() {
        fs::remove_dir_all(&tmp_dir)?;
    }
    fs::create_dir_all(&tmp_dir)?;
    let state = opt.export_state();
    fs::write(tmp_dir.join("params.aero"), encode_params(params))?;
    fs::write(tmp_dir.join("adam.aero"), state.moments_bytes())?;
    fs::write(tmp_dir.join("state.txt"), render_state(cursor, state.step))?;
    Manifest::for_files(&tmp_dir, &BLOBS)?.write(&tmp_dir)?;
    if final_dir.exists() {
        fs::remove_dir_all(&final_dir)?;
    }
    fs::rename(&tmp_dir, &final_dir)?;
    prune(config)?;
    aero_obs::counter!("train.checkpoint.saves").inc();
    Ok(final_dir)
}

/// All complete checkpoints under `dir`, as `(step, path)` ascending.
///
/// # Errors
///
/// Propagates I/O failures listing an existing directory; a missing
/// directory is simply empty.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
    let mut found = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(step) = name.to_str().and_then(|n| n.strip_prefix("step-")) else { continue };
        if let Ok(step) = step.parse::<u64>() {
            found.push((step, entry.path()));
        }
    }
    found.sort_by_key(|(step, _)| *step);
    Ok(found)
}

fn prune(config: &CheckpointConfig) -> Result<(), CheckpointError> {
    let ckpts = list_checkpoints(&config.dir)?;
    let keep = config.keep.max(1);
    if ckpts.len() > keep {
        for (_, path) in &ckpts[..ckpts.len() - keep] {
            fs::remove_dir_all(path)?;
        }
    }
    Ok(())
}

/// Verifies and loads one checkpoint directory into `params` and `opt`.
///
/// The manifest is checked first — version, then every blob's length and
/// CRC32 — so a bit flip anywhere fails typed instead of loading a
/// garbage model.
///
/// # Errors
///
/// [`CheckpointError::Integrity`] on checksum/version failures,
/// [`CheckpointError::Weights`] on decode/shape mismatches,
/// [`CheckpointError::Meta`] on malformed cursor metadata.
pub fn load_checkpoint(
    dir: &Path,
    params: &[Var],
    opt: &mut Adam,
) -> Result<TrainCursor, CheckpointError> {
    let manifest = Manifest::read(dir)?;
    manifest.verify_dir(dir)?;
    let (cursor, adam_step) = parse_state(&fs::read_to_string(dir.join("state.txt"))?)?;
    let param_tensors = decode_tensors(&fs::read(dir.join("params.aero"))?)?;
    let adam_state = AdamState::from_moments_bytes(&fs::read(dir.join("adam.aero"))?, adam_step)?;
    opt.restore_state(adam_state)?;
    load_into_params(params, param_tensors)?;
    Ok(cursor)
}

/// The outcome of scanning a checkpoint directory for a resume point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeReport {
    /// The cursor restored from the newest valid checkpoint, if any.
    pub cursor: Option<TrainCursor>,
    /// Checkpoints that failed verification and were skipped (newest
    /// first were tried first).
    pub skipped_corrupt: usize,
}

/// Restores the newest checkpoint that verifies cleanly, skipping any
/// corrupt ones, and reports what happened. With no valid checkpoint the
/// caller starts fresh.
///
/// # Errors
///
/// Propagates I/O failures listing the directory; verification failures
/// of individual checkpoints are *not* errors — they are skipped and
/// counted.
pub fn resume_latest(
    dir: &Path,
    params: &[Var],
    opt: &mut Adam,
) -> Result<ResumeReport, CheckpointError> {
    let mut ckpts = list_checkpoints(dir)?;
    ckpts.reverse();
    let mut skipped_corrupt = 0;
    for (_, path) in ckpts {
        match load_checkpoint(&path, params, opt) {
            Ok(cursor) => {
                aero_obs::counter!("train.checkpoint.resumes").inc();
                return Ok(ResumeReport { cursor: Some(cursor), skipped_corrupt });
            }
            Err(_) => {
                skipped_corrupt += 1;
                aero_obs::counter!("train.checkpoint.corrupt_skipped").inc();
            }
        }
    }
    Ok(ResumeReport { cursor: None, skipped_corrupt })
}

/// Options for [`train_resumable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainRunOptions {
    /// Epochs over the dataset.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Decoupled weight decay (the paper uses `1e-5`).
    pub weight_decay: f32,
    /// Seed for the run's RNG (noise, timesteps, dropout, shuffles).
    pub seed: u64,
    /// Stop after this many global steps (simulates a mid-run kill in
    /// tests and bounds CI smoke runs); `None` runs to completion.
    pub max_steps: Option<u64>,
}

/// What a (possibly resumed, possibly truncated) training run did.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainRun {
    /// Global steps completed, including steps replayed before a resume.
    pub steps: u64,
    /// Whether all epochs finished (false when `max_steps` hit first).
    pub completed: bool,
    /// Loss of the last executed step, if any step ran.
    pub last_loss: Option<f32>,
    /// The checkpoint step training resumed from, if any.
    pub resumed_from: Option<u64>,
    /// Corrupt checkpoints skipped while searching for the resume point.
    pub skipped_corrupt: usize,
}

/// Trains like [`DiffusionTrainer::train`] but checkpointed and
/// resumable: a run killed at an arbitrary step and restarted with the
/// same arguments continues on a bit-identical parameter trajectory,
/// because the checkpoint carries the optimizer moments, the RNG state
/// and the in-epoch batch order alongside the weights.
///
/// # Errors
///
/// Propagates checkpoint save/scan failures.
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn train_resumable(
    trainer: &DiffusionTrainer,
    unet: &CondUnet,
    data: &[TrainBatch],
    options: &TrainRunOptions,
    checkpoint: &CheckpointConfig,
) -> Result<TrainRun, CheckpointError> {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let params = unet.params();
    let mut opt = Adam::new(params.clone(), options.lr).with_weight_decay(options.weight_decay);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let resume = resume_latest(&checkpoint.dir, &params, &mut opt)?;
    let skipped_corrupt = resume.skipped_corrupt;
    let mut resumed_from = None;
    let (start_epoch, mut batch_start, mut pending_order) = match resume.cursor {
        Some(cursor) => {
            rng = StdRng::from_state(cursor.rng);
            resumed_from = Some(cursor.step);
            (cursor.epoch, cursor.batch, Some((cursor.order, cursor.step)))
        }
        None => (0, 0, None),
    };
    let mut step = pending_order.as_ref().map_or(0, |(_, s)| *s);
    let mut last_loss = None;
    let mut completed = true;
    let mut last_saved = resumed_from;
    'epochs: for epoch in start_epoch..options.epochs {
        let order = match pending_order.take() {
            Some((order, _)) => order,
            None => {
                let mut order: Vec<usize> = (0..data.len()).collect();
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.gen_range(0..=i));
                }
                order
            }
        };
        for bi in batch_start..order.len() {
            let loss = trainer.train_step(unet, &mut opt, &data[order[bi]], &mut rng);
            step += 1;
            last_loss = Some(loss);
            if checkpoint.every > 0 && step % checkpoint.every == 0 {
                let cursor = TrainCursor {
                    step,
                    epoch,
                    batch: bi + 1,
                    order: order.clone(),
                    rng: rng.state(),
                };
                save_checkpoint(checkpoint, &cursor, &params, &opt)?;
                last_saved = Some(step);
            }
            if options.max_steps.is_some_and(|max| step >= max) {
                completed = false;
                break 'epochs;
            }
        }
        batch_start = 0;
    }
    // A final checkpoint marks the run complete so a re-invocation
    // resumes past the loop instead of repeating work.
    if completed && step > 0 && last_saved != Some(step) {
        let cursor = TrainCursor {
            step,
            epoch: options.epochs,
            batch: 0,
            order: Vec::new(),
            rng: rng.state(),
        };
        save_checkpoint(checkpoint, &cursor, &params, &opt)?;
    }
    Ok(TrainRun { steps: step, completed, last_loss, resumed_from, skipped_corrupt })
}
