//! The latent diffusion framework underlying AeroDiffusion.
//!
//! Implements Section IV-C of the paper: the forward diffusion process
//! (Eq. 4) via [`schedule::NoiseSchedule`], the conditional UNet denoiser
//! `ε_θ(z_t, t, C)` via [`unet::CondUnet`], the training objective
//! (Eq. 6) via [`trainer::DiffusionTrainer`], and both samplers the paper
//! uses — the 1000-step DDPM scheduler for training-time noising and a
//! 250-step DDIM sampler with classifier-free guidance scale 7.0 for
//! inference ([`sampler`]).
//!
//! The paper's exact hyperparameters are the defaults of
//! [`DiffusionConfig::paper`]; tests and benches use reduced presets.

pub mod checkpoint;
pub mod guard;
pub mod sampler;
pub mod schedule;
pub mod trainer;
pub mod unet;

pub use checkpoint::{
    list_checkpoints, load_checkpoint, resume_latest, save_checkpoint, train_resumable,
    CheckpointConfig, CheckpointError, TrainCursor, TrainRun, TrainRunOptions,
};
pub use guard::{GuardConfig, GuardStats, GuardVerdict, TrainGuard};
pub use sampler::{
    CancelSignal, CancelToken, DdimSampler, DdpmSampler, LatentPin, NoiseSpec, SampleOptions,
    Sampler, StepEvent, StepSink,
};
pub use schedule::{BetaSchedule, NoiseSchedule};
pub use trainer::{DiffusionTrainer, TrainBatch};
pub use unet::{CondUnet, UnetConfig};

/// End-to-end diffusion hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionConfig {
    /// Number of forward diffusion steps `T`.
    pub timesteps: usize,
    /// Beta schedule.
    pub schedule: BetaSchedule,
    /// DDIM inference steps.
    pub ddim_steps: usize,
    /// Classifier-free guidance scale.
    pub guidance_scale: f32,
    /// Probability of dropping the condition during training (enables CFG).
    pub cond_dropout: f64,
}

impl DiffusionConfig {
    /// The paper's configuration: `T = 1000`, β ∈ [0.001, 0.012], DDIM 250
    /// steps, guidance 7.0.
    pub fn paper() -> Self {
        DiffusionConfig {
            timesteps: 1000,
            schedule: BetaSchedule::Linear { beta_start: 0.001, beta_end: 0.012 },
            ddim_steps: 250,
            guidance_scale: 7.0,
            cond_dropout: 0.1,
        }
    }

    /// A fast preset for unit tests and CI-scale experiments.
    ///
    /// The betas are chosen so the terminal `ᾱ_T ≈ 1e-3` — like the
    /// paper's 1000-step schedule, the forward process must actually
    /// destroy the signal, or sampling from pure noise is
    /// out-of-distribution for the denoiser.
    pub fn small() -> Self {
        DiffusionConfig {
            timesteps: 50,
            schedule: BetaSchedule::Linear { beta_start: 0.02, beta_end: 0.25 },
            ddim_steps: 10,
            guidance_scale: 3.0,
            cond_dropout: 0.1,
        }
    }
}

impl Default for DiffusionConfig {
    fn default() -> Self {
        Self::paper()
    }
}
