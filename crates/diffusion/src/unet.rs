//! The conditional UNet denoiser `ε_θ(z_t, t, C)`.
//!
//! A miniature of the architecture the paper builds on: residual blocks
//! with GroupNorm/SiLU, one downsampling stage, a self-attention block at
//! the bottleneck, skip connections on the upsampling path, and sinusoidal
//! timestep embeddings. The condition vector `C` is projected and injected
//! into every hidden layer alongside the time embedding — the learned
//! projection plays the role of the paper's per-layer concatenation while
//! keeping channel counts fixed.
//!
//! Every convolution, matmul, and attention here executes on the sharded
//! kernel layer (`aero_tensor::par_kernels`), which is bit-identical at
//! any thread count — so denoising output never depends on the active
//! `ParallelConfig`.

use aero_nn::layers::{Conv2d, GroupNorm, Linear, MultiHeadAttention};
use aero_nn::{Module, Var};
use aero_tensor::Tensor;
use rand::Rng;

/// UNet geometry and conditioning dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnetConfig {
    /// Input/output channels (the latent channels, 4 for the LDM).
    pub in_channels: usize,
    /// Base channel width.
    pub base_channels: usize,
    /// Dimensionality of the condition vector `C` (0 = unconditional).
    pub cond_dim: usize,
    /// Time-embedding width.
    pub time_embed_dim: usize,
    /// Number of tokens the condition vector is split into for
    /// cross-attention (must divide `cond_dim`; 0 disables
    /// cross-attention and keeps only the embedding-bias injection).
    pub cond_tokens: usize,
    /// Number of bottleneck cells (`(latent_side / 2)²`) for the spatial
    /// condition projection; 0 disables it. A learned map from `C` onto
    /// the bottleneck grid gives the condition a direct, per-position
    /// influence on layout — the strongest form of the paper's
    /// per-hidden-layer integration.
    pub spatial_cond_cells: usize,
}

impl UnetConfig {
    /// A small latent-space configuration. The default three condition
    /// tokens mirror the paper's `C = [C_xg; C_g; f̂_X]` blocks.
    pub fn latent(cond_dim: usize) -> Self {
        UnetConfig {
            in_channels: 4,
            base_channels: 16,
            cond_dim,
            time_embed_dim: 32,
            cond_tokens: if cond_dim.is_multiple_of(3) { 3 } else { 1 },
            spatial_cond_cells: 16,
        }
    }

    /// A pixel-space configuration (for the DDPM baseline).
    pub fn pixel() -> Self {
        UnetConfig {
            in_channels: 3,
            base_channels: 16,
            cond_dim: 0,
            time_embed_dim: 32,
            cond_tokens: 0,
            spatial_cond_cells: 0,
        }
    }
}

fn group_count(channels: usize) -> usize {
    if channels.is_multiple_of(4) {
        4
    } else if channels.is_multiple_of(2) {
        2
    } else {
        1
    }
}

/// Residual block with time/condition embedding injection.
#[derive(Debug, Clone)]
struct ResBlock {
    norm1: GroupNorm,
    conv1: Conv2d,
    emb_proj: Linear,
    norm2: GroupNorm,
    conv2: Conv2d,
    skip: Option<Conv2d>,
    cout: usize,
}

impl ResBlock {
    fn new<R: Rng + ?Sized>(cin: usize, cout: usize, emb_dim: usize, rng: &mut R) -> Self {
        ResBlock {
            norm1: GroupNorm::new(group_count(cin), cin),
            conv1: Conv2d::new(cin, cout, 3, 1, 1, rng),
            // FiLM-style modulation: the embedding produces a per-channel
            // scale and shift, a multiplicative pathway that lets the
            // condition gate features rather than merely bias them.
            emb_proj: Linear::new_with_init(emb_dim, 2 * cout, 0.05, rng),
            norm2: GroupNorm::new(group_count(cout), cout),
            conv2: Conv2d::new(cout, cout, 3, 1, 1, rng),
            skip: if cin == cout { None } else { Some(Conv2d::new(cin, cout, 1, 1, 0, rng)) },
            cout,
        }
    }

    fn forward(&self, x: &Var, emb: &Var) -> Var {
        let n = x.shape()[0];
        let h = self.conv1.forward(&self.norm1.forward(x).silu());
        let film = self.emb_proj.forward(emb);
        let scale = film.narrow(1, 0, self.cout).reshape(&[n, self.cout, 1, 1]);
        let shift = film.narrow(1, self.cout, self.cout).reshape(&[n, self.cout, 1, 1]);
        let h = h.mul(&scale.add_scalar(1.0)).add(&shift);
        let h = self.conv2.forward(&self.norm2.forward(&h).silu());
        match &self.skip {
            Some(s) => h.add(&s.forward(x)),
            None => h.add(x),
        }
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.norm1.params();
        p.extend(self.conv1.params());
        p.extend(self.emb_proj.params());
        p.extend(self.norm2.params());
        p.extend(self.conv2.params());
        if let Some(s) = &self.skip {
            p.extend(s.params());
        }
        p
    }
}

/// Conditional UNet noise predictor.
#[derive(Debug, Clone)]
pub struct CondUnet {
    conv_in: Conv2d,
    res_down: ResBlock,
    downsample: Conv2d,
    res_mid1: ResBlock,
    mid_attn: MultiHeadAttention,
    cond_cross_attn: Option<MultiHeadAttention>,
    cond_token_proj: Option<Linear>,
    cond_spatial_proj: Option<Linear>,
    res_mid2: ResBlock,
    up_conv: Conv2d,
    res_up: ResBlock,
    norm_out: GroupNorm,
    conv_out: Conv2d,
    time_mlp1: Linear,
    time_mlp2: Linear,
    cond_mlp1: Option<Linear>,
    cond_mlp2: Option<Linear>,
    config: UnetConfig,
}

impl CondUnet {
    /// Creates an untrained UNet.
    pub fn new<R: Rng + ?Sized>(config: UnetConfig, rng: &mut R) -> Self {
        let c = config.base_channels;
        let e = config.time_embed_dim;
        CondUnet {
            conv_in: Conv2d::new(config.in_channels, c, 3, 1, 1, rng),
            res_down: ResBlock::new(c, c, e, rng),
            downsample: Conv2d::new(c, 2 * c, 3, 2, 1, rng),
            res_mid1: ResBlock::new(2 * c, 2 * c, e, rng),
            mid_attn: MultiHeadAttention::new(2 * c, 2, rng),
            cond_cross_attn: (config.cond_dim > 0 && config.cond_tokens > 0)
                .then(|| MultiHeadAttention::new(2 * c, 2, rng)),
            cond_token_proj: (config.cond_dim > 0 && config.cond_tokens > 0).then(|| {
                assert!(
                    config.cond_dim.is_multiple_of(config.cond_tokens),
                    "cond_tokens must divide cond_dim"
                );
                Linear::new(config.cond_dim / config.cond_tokens, 2 * c, rng)
            }),
            cond_spatial_proj: (config.cond_dim > 0 && config.spatial_cond_cells > 0)
                .then(|| Linear::new(config.cond_dim, 2 * c * config.spatial_cond_cells, rng)),
            res_mid2: ResBlock::new(2 * c, 2 * c, e, rng),
            up_conv: Conv2d::new(2 * c, c, 3, 1, 1, rng),
            res_up: ResBlock::new(2 * c, c, e, rng),
            norm_out: GroupNorm::new(group_count(c), c),
            conv_out: Conv2d::new(c, config.in_channels, 3, 1, 1, rng),
            time_mlp1: Linear::new(e, e, rng),
            time_mlp2: Linear::new(e, e, rng),
            cond_mlp1: (config.cond_dim > 0).then(|| Linear::new(config.cond_dim, e, rng)),
            cond_mlp2: (config.cond_dim > 0).then(|| Linear::new(e, e, rng)),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &UnetConfig {
        &self.config
    }

    /// Sinusoidal timestep features `[n, time_embed_dim]`.
    pub fn timestep_features(&self, timesteps: &[usize]) -> Tensor {
        let d = self.config.time_embed_dim;
        let half = d / 2;
        let mut data = Vec::with_capacity(timesteps.len() * d);
        for &t in timesteps {
            for k in 0..half {
                let freq = (10_000f32).powf(-(k as f32) / half.max(1) as f32);
                data.push((t as f32 * freq).sin());
            }
            for k in 0..d - half {
                let freq = (10_000f32).powf(-(k as f32) / half.max(1) as f32);
                data.push((t as f32 * freq).cos());
            }
        }
        Tensor::from_vec(data, &[timesteps.len(), d])
    }

    /// Predicts the noise `ε̂` for a batch.
    ///
    /// `cond` must be `[n, cond_dim]` when the UNet is conditional; pass
    /// `None` (or an all-zero condition) for the unconditional branch of
    /// classifier-free guidance.
    ///
    /// # Panics
    ///
    /// Panics on geometry mismatches.
    pub fn forward(&self, z_t: &Var, timesteps: &[usize], cond: Option<&Var>) -> Var {
        let n = z_t.shape()[0];
        assert_eq!(n, timesteps.len(), "one timestep per batch item");
        let temb_raw = Var::constant(self.timestep_features(timesteps));
        let mut emb = self.time_mlp2.forward(&self.time_mlp1.forward(&temb_raw).silu());
        if let (Some(m1), Some(m2)) = (&self.cond_mlp1, &self.cond_mlp2) {
            let c = match cond {
                Some(c) => {
                    assert_eq!(
                        c.shape(),
                        vec![n, self.config.cond_dim],
                        "condition shape mismatch"
                    );
                    c.clone()
                }
                None => Var::constant(Tensor::zeros(&[n, self.config.cond_dim])),
            };
            let cemb = m2.forward(&m1.forward(&c).silu());
            emb = emb.add(&cemb);
        }

        let h0 = self.conv_in.forward(z_t);
        let h1 = self.res_down.forward(&h0, &emb);
        let h2 = self.downsample.forward(&h1); // half resolution, 2c
        let mut h3 = self.res_mid1.forward(&h2, &emb);
        // Self-attention over bottleneck tokens.
        let shape = h3.shape();
        let (c2, hh, ww) = (shape[1], shape[2], shape[3]);
        // Spatial condition injection: C projected onto the bottleneck
        // grid, one additive feature per cell.
        if let Some(proj) = &self.cond_spatial_proj {
            if let Some(c) = cond {
                assert_eq!(
                    hh * ww,
                    self.config.spatial_cond_cells,
                    "spatial_cond_cells must equal the bottleneck cell count"
                );
                let map = proj.forward(c).reshape(&[n, c2, hh, ww]);
                h3 = h3.add(&map);
            }
        }
        let tokens = h3.reshape(&[n, c2, hh * ww]).permute(&[0, 2, 1]);
        let mut attended = tokens.add(&self.mid_attn.forward(&tokens, &tokens));
        // Cross-attention over the condition tokens: spatial positions
        // read different parts of C, letting the condition steer layout
        // rather than only global appearance (the per-hidden-layer
        // integration the paper describes).
        if let (Some(cross), Some(proj)) = (&self.cond_cross_attn, &self.cond_token_proj) {
            let k = self.config.cond_tokens;
            let td = self.config.cond_dim / k;
            let cond_tokens = match cond {
                Some(c) => {
                    let toks = c.reshape(&[n * k, td]);
                    proj.forward(&toks).reshape(&[n, k, c2])
                }
                None => Var::constant(Tensor::zeros(&[n, k, c2])),
            };
            attended = attended.add(&cross.forward(&attended, &cond_tokens));
        }
        let h3b = attended.permute(&[0, 2, 1]).reshape(&[n, c2, hh, ww]);
        let h4 = self.res_mid2.forward(&h3b, &emb);
        let up = self.up_conv.forward(&h4.upsample_nearest2x());
        let cat = Var::concat(&[&up, &h1], 1);
        let h5 = self.res_up.forward(&cat, &emb);
        self.conv_out.forward(&self.norm_out.forward(&h5).silu())
    }

    /// Non-differentiable forward over tensors (inference convenience).
    pub fn predict(&self, z_t: &Tensor, timesteps: &[usize], cond: Option<&Tensor>) -> Tensor {
        let cv = cond.map(|c| Var::constant(c.clone()));
        self.forward(&Var::constant(z_t.clone()), timesteps, cv.as_ref()).to_tensor()
    }
}

impl Module for CondUnet {
    fn params(&self) -> Vec<Var> {
        let mut p = self.conv_in.params();
        p.extend(self.res_down.params());
        p.extend(self.downsample.params());
        p.extend(self.res_mid1.params());
        p.extend(self.mid_attn.params());
        if let Some(a) = &self.cond_cross_attn {
            p.extend(a.params());
        }
        if let Some(l) = &self.cond_token_proj {
            p.extend(l.params());
        }
        if let Some(l) = &self.cond_spatial_proj {
            p.extend(l.params());
        }
        p.extend(self.res_mid2.params());
        p.extend(self.up_conv.params());
        p.extend(self.res_up.params());
        p.extend(self.norm_out.params());
        p.extend(self.conv_out.params());
        p.extend(self.time_mlp1.params());
        p.extend(self.time_mlp2.params());
        if let Some(m) = &self.cond_mlp1 {
            p.extend(m.params());
        }
        if let Some(m) = &self.cond_mlp2 {
            p.extend(m.params());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 4,
                base_channels: 8,
                cond_dim: 6,
                time_embed_dim: 16,
                cond_tokens: 3,
                spatial_cond_cells: 16,
            },
            &mut rng,
        );
        let z = Tensor::randn(&[2, 4, 8, 8], &mut rng);
        let c = Tensor::randn(&[2, 6], &mut rng);
        let out = unet.predict(&z, &[3, 7], Some(&c));
        assert_eq!(out.shape(), &[2, 4, 8, 8]);
    }

    #[test]
    fn unconditional_unet_ignores_cond_branch() {
        let mut rng = StdRng::seed_from_u64(2);
        let unet = CondUnet::new(UnetConfig::pixel(), &mut rng);
        let z = Tensor::randn(&[1, 3, 8, 8], &mut rng);
        let out = unet.predict(&z, &[0], None);
        assert_eq!(out.shape(), &[1, 3, 8, 8]);
    }

    #[test]
    fn timestep_features_distinguish_timesteps() {
        let mut rng = StdRng::seed_from_u64(3);
        let unet = CondUnet::new(UnetConfig::pixel(), &mut rng);
        let f = unet.timestep_features(&[1, 500]);
        let a = f.narrow(0, 0, 1);
        let b = f.narrow(0, 1, 1);
        assert!(a.sub(&b).abs().max() > 0.1);
    }

    #[test]
    fn condition_changes_prediction() {
        let mut rng = StdRng::seed_from_u64(4);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 4,
                base_channels: 8,
                cond_dim: 6,
                time_embed_dim: 16,
                cond_tokens: 3,
                spatial_cond_cells: 16,
            },
            &mut rng,
        );
        let z = Tensor::randn(&[1, 4, 8, 8], &mut rng);
        let c1 = Tensor::randn(&[1, 6], &mut rng);
        let c2 = Tensor::randn(&[1, 6], &mut rng);
        let o1 = unet.predict(&z, &[5], Some(&c1));
        let o2 = unet.predict(&z, &[5], Some(&c2));
        assert!(o1.sub(&o2).abs().max() > 1e-6);
    }

    #[test]
    fn gradients_reach_all_params_and_condition() {
        let mut rng = StdRng::seed_from_u64(5);
        let unet = CondUnet::new(
            UnetConfig {
                in_channels: 4,
                base_channels: 8,
                cond_dim: 6,
                time_embed_dim: 16,
                cond_tokens: 3,
                spatial_cond_cells: 16,
            },
            &mut rng,
        );
        let z = Var::constant(Tensor::randn(&[1, 4, 8, 8], &mut rng));
        let c = Var::parameter(Tensor::randn(&[1, 6], &mut rng));
        unet.forward(&z, &[2], Some(&c)).sum().backward();
        assert!(c.grad().is_some(), "condition must receive gradients (joint training)");
        let missing = unet.params().iter().filter(|p| p.grad().is_none()).count();
        assert_eq!(missing, 0, "{missing} unet params missing grads");
    }
}
