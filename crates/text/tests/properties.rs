//! Property-based tests for the text substrate.

use aero_scene::{SceneGenerator, SceneGeneratorConfig};
use aero_text::coverage::keypoint_coverage;
use aero_text::llm::{LlmProvider, SimulatedLlm};
use aero_text::prompt::PromptTemplate;
use aero_text::tokenizer::{tokenize_words, Tokenizer, Vocabulary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tokenize_produces_lowercase_alphanumeric(text in ".{0,200}") {
        for tok in tokenize_words(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(char::is_alphanumeric));
            prop_assert!(!tok.chars().any(char::is_uppercase));
        }
    }

    #[test]
    fn encode_always_fixed_length(text in "[a-z ]{0,300}", max_len in 4usize..40) {
        let vocab = Vocabulary::build([text.as_str()], 1);
        let tok = Tokenizer::new(vocab, max_len);
        let ids = tok.encode(&text);
        prop_assert_eq!(ids.len(), max_len);
        prop_assert_eq!(ids[0], 2, "starts with <bos>");
        prop_assert!(ids.contains(&3), "contains <eos>");
    }

    #[test]
    fn known_words_round_trip(words in prop::collection::vec("[a-z]{2,8}", 1..8)) {
        let text = words.join(" ");
        let vocab = Vocabulary::build([text.as_str()], 1);
        let tok = Tokenizer::new(vocab, words.len() + 2);
        let decoded = tok.decode(&tok.encode(&text));
        let mut expected = words.clone();
        expected.dedup();
        // decoding preserves word sequence (duplicates allowed)
        prop_assert_eq!(decoded.split(' ').count(), words.len());
    }

    #[test]
    fn captions_never_empty(seed in 0u64..3000) {
        let spec = SceneGenerator::new(SceneGeneratorConfig::default())
            .generate(&mut StdRng::seed_from_u64(seed));
        for provider in LlmProvider::ALL {
            let llm = SimulatedLlm::new(provider);
            for prompt in [PromptTemplate::traditional(), PromptTemplate::keypoint_aware()] {
                let cap = llm.describe(&spec, &prompt, &mut StdRng::seed_from_u64(seed));
                prop_assert!(!cap.is_empty(), "{provider:?}/{}", prompt.name);
                prop_assert!(cap.ends_with('.'), "{cap}");
            }
        }
    }

    #[test]
    fn coverage_score_bounded(seed in 0u64..2000) {
        let spec = SceneGenerator::new(SceneGeneratorConfig::default())
            .generate(&mut StdRng::seed_from_u64(seed));
        let llm = SimulatedLlm::new(LlmProvider::Gpt4oLike);
        let cap = llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(seed));
        let score = keypoint_coverage(&cap, &spec).score();
        prop_assert!((0.0..=1.0).contains(&score), "score {score}");
    }

    #[test]
    fn keypoint_captions_deterministic_given_seed(seed in 0u64..2000) {
        let spec = SceneGenerator::new(SceneGeneratorConfig::default())
            .generate(&mut StdRng::seed_from_u64(seed));
        let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
        let a = llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(1));
        let b = llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(1));
        prop_assert_eq!(a, b);
    }
}
