//! Whitespace/punctuation tokenizer and corpus-built vocabulary.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Special token: padding.
pub const PAD: &str = "<pad>";
/// Special token: unknown word.
pub const UNK: &str = "<unk>";
/// Special token: beginning of sequence.
pub const BOS: &str = "<bos>";
/// Special token: end of sequence.
pub const EOS: &str = "<eos>";

/// A word-level vocabulary with stable ids.
///
/// Ids 0–3 are reserved for the special tokens in order
/// `<pad>, <unk>, <bos>, <eos>`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    word_to_id: HashMap<String, usize>,
    id_to_word: Vec<String>,
}

impl Vocabulary {
    /// Builds a vocabulary from an iterator of documents, keeping every
    /// word that appears at least `min_count` times, ordered by frequency
    /// then lexicographically (deterministic).
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(corpus: I, min_count: usize) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for doc in corpus {
            for tok in tokenize_words(doc) {
                *counts.entry(tok).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(String, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= min_count).collect();
        words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut id_to_word =
            vec![PAD.to_string(), UNK.to_string(), BOS.to_string(), EOS.to_string()];
        id_to_word.extend(words.into_iter().map(|(w, _)| w));
        let word_to_id = id_to_word.iter().enumerate().map(|(i, w)| (w.clone(), i)).collect();
        Vocabulary { word_to_id, id_to_word }
    }

    /// Number of entries including the four special tokens.
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    /// Whether the vocabulary holds only special tokens.
    pub fn is_empty(&self) -> bool {
        self.id_to_word.len() <= 4
    }

    /// Id of a word, or the `<unk>` id.
    pub fn id(&self, word: &str) -> usize {
        self.word_to_id.get(word).copied().unwrap_or(1)
    }

    /// Word for an id, or `<unk>` when out of range.
    pub fn word(&self, id: usize) -> &str {
        self.id_to_word.get(id).map(String::as_str).unwrap_or(UNK)
    }

    /// The id of `<pad>` (always 0).
    pub fn pad_id(&self) -> usize {
        0
    }
}

/// Splits text into lowercase word tokens, treating punctuation as
/// separators.
pub fn tokenize_words(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Encodes captions to fixed-length id sequences against a [`Vocabulary`].
///
/// Sequences are `<bos> w… <eos>` truncated/padded to `max_len` — the
/// paper limits captions to 120 tokens; small-scale presets use less.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tokenizer {
    vocab: Vocabulary,
    max_len: usize,
}

impl Tokenizer {
    /// Creates a tokenizer over a vocabulary with a fixed output length.
    ///
    /// # Panics
    ///
    /// Panics if `max_len < 2` (there must be room for `<bos>`/`<eos>`).
    pub fn new(vocab: Vocabulary, max_len: usize) -> Self {
        assert!(max_len >= 2, "max_len must fit <bos> and <eos>");
        Tokenizer { vocab, max_len }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Fixed encoded length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Encodes text to exactly `max_len` ids.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        let mut ids = vec![self.vocab.id(BOS)];
        for tok in tokenize_words(text) {
            if ids.len() >= self.max_len - 1 {
                break;
            }
            ids.push(self.vocab.id(&tok));
        }
        ids.push(self.vocab.id(EOS));
        while ids.len() < self.max_len {
            ids.push(self.vocab.pad_id());
        }
        ids
    }

    /// Decodes ids back to space-joined words, dropping special tokens.
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter()
            .map(|&i| self.vocab.word(i))
            .filter(|w| ![PAD, BOS, EOS].contains(w))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits_punct() {
        assert_eq!(
            tokenize_words("A daytime, aerial-view: 3 cars!"),
            vec!["a", "daytime", "aerial", "view", "3", "cars"]
        );
    }

    #[test]
    fn vocab_reserves_special_ids() {
        let v = Vocabulary::build(["the car the"], 1);
        assert_eq!(v.word(0), PAD);
        assert_eq!(v.word(1), UNK);
        assert_eq!(v.word(2), BOS);
        assert_eq!(v.word(3), EOS);
        assert_eq!(v.id("the"), 4, "most frequent word gets the first free id");
    }

    #[test]
    fn vocab_unknown_maps_to_unk() {
        let v = Vocabulary::build(["car"], 1);
        assert_eq!(v.id("zeppelin"), 1);
        assert_eq!(v.word(9999), UNK);
    }

    #[test]
    fn min_count_filters_rare_words() {
        let v = Vocabulary::build(["car car bus"], 2);
        assert_eq!(v.id("bus"), 1, "rare word should be unk");
        assert_ne!(v.id("car"), 1);
    }

    #[test]
    fn encode_fixed_length_with_specials() {
        let v = Vocabulary::build(["a busy highway with cars"], 1);
        let t = Tokenizer::new(v, 8);
        let ids = t.encode("a busy highway");
        assert_eq!(ids.len(), 8);
        assert_eq!(ids[0], 2); // bos
        assert_eq!(ids[4], 3); // eos after 3 words
        assert_eq!(ids[7], 0); // padded
    }

    #[test]
    fn encode_truncates_long_text() {
        let v = Vocabulary::build(["w"], 1);
        let t = Tokenizer::new(v, 4);
        let ids = t.encode("w w w w w w w w");
        assert_eq!(ids.len(), 4);
        assert_eq!(*ids.last().unwrap(), 3, "eos must survive truncation");
    }

    #[test]
    fn decode_round_trips_known_words() {
        let v = Vocabulary::build(["cars on a highway"], 1);
        let t = Tokenizer::new(v, 10);
        let ids = t.encode("cars on a highway");
        assert_eq!(t.decode(&ids), "cars on a highway");
    }

    #[test]
    fn deterministic_vocab_order() {
        let a = Vocabulary::build(["b a b c a b"], 1);
        let b = Vocabulary::build(["b a b c a b"], 1);
        assert_eq!(a, b);
        assert_eq!(a.id("b"), 4); // freq 3
        assert_eq!(a.id("a"), 5); // freq 2
        assert_eq!(a.id("c"), 6); // freq 1
    }
}
