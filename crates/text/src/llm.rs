//! Simulated black-box LLM captioners.
//!
//! The paper calls GPT-4o / Gemini through APIs (temperature 1.2, ≤120
//! tokens) and also compares against BLIP's native captions (Table II).
//! Here each provider is a profile over *caption information content*:
//! with what probability each keypoint category survives into the text,
//! how many object classes are silently omitted, and how often a class
//! that is not in the scene is hallucinated. Downstream, richer and more
//! faithful captions give the conditional diffusion model more usable
//! guidance — the mechanism behind the paper's Table II ordering.

use crate::prompt::PromptTemplate;
use aero_scene::{ObjectClass, SceneSpec, TimeOfDay, Viewpoint};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fidelity profile of a simulated captioner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptionProfile {
    /// Probability a requested keypoint (time/viewpoint/layout/positions)
    /// actually appears in the output.
    pub keypoint_compliance: f64,
    /// Probability each present object class is dropped from the text.
    pub omission_rate: f64,
    /// Probability of inventing one absent object class.
    pub hallucination_rate: f64,
    /// Hard cap on sentences (BLIP-style captions are a single sentence).
    pub max_sentences: usize,
}

/// The captioners compared in Table II, plus the paper's own pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LlmProvider {
    /// AeroDiffusion's keypoint-aware generation (chain-of-thought over
    /// ground-truth object lists): complete and faithful.
    KeypointAware,
    /// A Gemini-like API captioner: strong but lossy.
    GeminiLike,
    /// A GPT-4o-like API captioner: slightly lossier in this domain.
    Gpt4oLike,
    /// BLIP native captioning: one short, generic sentence.
    BlipCaption,
}

impl LlmProvider {
    /// All providers in Table II order.
    pub const ALL: [LlmProvider; 4] = [
        LlmProvider::GeminiLike,
        LlmProvider::Gpt4oLike,
        LlmProvider::BlipCaption,
        LlmProvider::KeypointAware,
    ];

    /// Display name matching the paper's Table II rows.
    pub fn name(self) -> &'static str {
        match self {
            LlmProvider::KeypointAware => "AeroDiffusion",
            LlmProvider::GeminiLike => "Gemini",
            LlmProvider::Gpt4oLike => "GPT-4o",
            LlmProvider::BlipCaption => "BLIP",
        }
    }

    /// The provider's fidelity profile.
    pub fn profile(self) -> CaptionProfile {
        match self {
            LlmProvider::KeypointAware => CaptionProfile {
                keypoint_compliance: 1.0,
                omission_rate: 0.0,
                hallucination_rate: 0.0,
                max_sentences: 8,
            },
            LlmProvider::GeminiLike => CaptionProfile {
                keypoint_compliance: 0.7,
                omission_rate: 0.25,
                hallucination_rate: 0.05,
                max_sentences: 5,
            },
            LlmProvider::Gpt4oLike => CaptionProfile {
                keypoint_compliance: 0.6,
                omission_rate: 0.35,
                hallucination_rate: 0.08,
                max_sentences: 5,
            },
            LlmProvider::BlipCaption => CaptionProfile {
                keypoint_compliance: 0.15,
                omission_rate: 0.75,
                hallucination_rate: 0.10,
                max_sentences: 1,
            },
        }
    }
}

/// A deterministic-given-RNG stand-in for `LLM(X_i, O_i, P_i)` (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedLlm {
    provider: LlmProvider,
}

impl SimulatedLlm {
    /// Creates a captioner for a provider.
    pub fn new(provider: LlmProvider) -> Self {
        SimulatedLlm { provider }
    }

    /// The provider this captioner simulates.
    pub fn provider(&self) -> LlmProvider {
        self.provider
    }

    /// Produces the caption `G_i` for a scene under a prompt.
    ///
    /// The effective coverage of each keypoint is the AND of the prompt
    /// requesting it and the provider complying — matching Fig. 3, where
    /// even a capable model gives a vague caption under the traditional
    /// prompt.
    pub fn describe<R: Rng + ?Sized>(
        &self,
        spec: &SceneSpec,
        prompt: &PromptTemplate,
        rng: &mut R,
    ) -> String {
        let profile = self.provider.profile();
        let want = &prompt.keypoints;
        let comply =
            |requested: bool, rng: &mut R| requested && rng.gen_bool(profile.keypoint_compliance);

        let mut sentences: Vec<String> = Vec::new();

        // Opening sentence: time of day + scene + viewpoint.
        let time_phrase = if comply(want.time_of_day, rng) {
            format!("A {} aerial image", spec.time.phrase())
        } else {
            "An aerial image".to_string()
        };
        let view_phrase = if comply(want.viewpoint, rng) {
            format!(", captured from {}", spec.viewpoint.phrase())
        } else {
            String::new()
        };
        sentences.push(format!("{time_phrase} of {}{view_phrase}.", spec.kind.phrase()));

        // Object inventory with spatial relations.
        let hist = spec.class_histogram();
        let mention_positions = comply(want.spatial_relations, rng);
        let mut mentioned_any = false;
        for class in ObjectClass::ALL {
            let n = hist[class.id()];
            if n == 0 {
                continue;
            }
            if !want.object_list {
                continue; // traditional prompt: inventory handled below
            }
            if rng.gen_bool(profile.omission_rate) {
                continue;
            }
            mentioned_any = true;
            let count_word = count_phrase(n);
            let noun = if n == 1 { class.label() } else { class.plural_label() };
            let mut s = format!("{count_word} {noun}");
            if mention_positions {
                s.push_str(&format!(" {}", region_phrase(spec, class)));
            }
            sentences.push(format!("There are {s}."));
        }
        // Traditional prompt: one vague gist sentence about the most
        // salient class only.
        if !want.object_list {
            if let Some((class, _)) = ObjectClass::ALL
                .iter()
                .map(|&c| (c, hist[c.id()]))
                .filter(|(_, n)| *n > 0)
                .max_by_key(|(_, n)| *n)
            {
                sentences.push(format!(
                    "The scene shows some {} and general activity.",
                    class.plural_label()
                ));
            }
        }
        // Hallucination: invent a class that is absent.
        if rng.gen_bool(profile.hallucination_rate) {
            if let Some(fake) = ObjectClass::ALL.iter().find(|c| hist[c.id()] == 0) {
                sentences.push(format!("A few {} are visible.", fake.plural_label()));
            }
        }
        if !mentioned_any && want.object_list {
            // Even heavy omission keeps at least the dominant class so the
            // caption is never empty of content.
            if let Some((class, n)) = ObjectClass::ALL
                .iter()
                .map(|&c| (c, hist[c.id()]))
                .filter(|(_, n)| *n > 0)
                .max_by_key(|(_, n)| *n)
            {
                sentences.push(format!("There are {} {}.", count_phrase(n), class.plural_label()));
            }
        }

        // Layout sentence.
        if comply(want.layout, rng) {
            sentences.push(layout_phrase(spec));
        }

        sentences.truncate(profile.max_sentences);
        sentences.join(" ")
    }

    /// Produces the target description `G'_i` for viewpoint-transition
    /// synthesis (Table III): the same scene content re-narrated from a
    /// requested new viewpoint.
    pub fn describe_with_viewpoint<R: Rng + ?Sized>(
        &self,
        spec: &SceneSpec,
        new_viewpoint: Viewpoint,
        rng: &mut R,
    ) -> String {
        let moved = spec.with_viewpoint(new_viewpoint);
        self.describe(&moved, &PromptTemplate::keypoint_aware(), rng)
    }

    /// Produces a nighttime-conditioned description of the scene with
    /// explicit lighting detail (used for Fig. 5).
    pub fn describe_at_night<R: Rng + ?Sized>(&self, spec: &SceneSpec, rng: &mut R) -> String {
        let night = spec.with_time(TimeOfDay::Night);
        let mut caption = self.describe(&night, &PromptTemplate::keypoint_aware(), rng);
        caption.push_str(
            " Headlights cast bright pools on the road and streetlights glow along its edges.",
        );
        caption
    }
}

pub(crate) fn count_phrase(n: usize) -> &'static str {
    match n {
        0 => "no",
        1 => "one",
        2..=4 => "a few",
        5..=12 => "several",
        13..=30 => "many",
        _ => "dozens of",
    }
}

fn region_phrase(spec: &SceneSpec, class: ObjectClass) -> String {
    let (mut sx, mut sy, mut n) = (0.0f32, 0.0f32, 0usize);
    for o in spec.objects.iter().filter(|o| o.class == class) {
        sx += o.x;
        sy += o.y;
        n += 1;
    }
    if n == 0 {
        return "in the scene".into();
    }
    let (mx, my) = (sx / n as f32, sy / n as f32);
    let horiz = if mx < 0.38 {
        "on the left"
    } else if mx > 0.62 {
        "on the right"
    } else {
        "near the center"
    };
    let vert = if my < 0.38 {
        "toward the top"
    } else if my > 0.62 {
        "toward the bottom"
    } else {
        ""
    };
    if vert.is_empty() {
        format!("{horiz} of the scene")
    } else {
        format!("{horiz} of the scene, {vert}")
    }
}

fn layout_phrase(spec: &SceneSpec) -> String {
    let l = &spec.layout;
    let mut parts = Vec::new();
    if !l.roads.is_empty() {
        let lanes = l.roads.iter().map(|r| r.lanes).max().unwrap_or(1);
        if lanes > 1 {
            parts.push(format!("a road with {lanes} lanes and white painted markings"));
        } else {
            parts.push("a paved walkway".to_string());
        }
    }
    if !l.buildings.is_empty() {
        parts.push(format!("{} buildings", count_phrase(l.buildings.len())));
    }
    if !l.trees.is_empty() {
        parts.push(format!("{} green trees", count_phrase(l.trees.len())));
    }
    if !l.water.is_empty() {
        parts.push("a pond".to_string());
    }
    if parts.is_empty() {
        "The surroundings are open ground.".to_string()
    } else {
        format!("The scene includes {}.", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{SceneGenerator, SceneGeneratorConfig, SceneKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scene(seed: u64) -> SceneSpec {
        SceneGenerator::new(SceneGeneratorConfig::default())
            .generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn keypoint_caption_includes_time_and_viewpoint() {
        let spec = scene(1);
        let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
        let cap =
            llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(0));
        assert!(cap.starts_with(&format!("A {} aerial image", spec.time.phrase())), "{cap}");
        assert!(cap.contains("captured from"), "{cap}");
    }

    #[test]
    fn keypoint_caption_mentions_every_present_class() {
        let spec = scene(2);
        let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
        let cap =
            llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(0));
        let hist = spec.class_histogram();
        for class in ObjectClass::ALL {
            if hist[class.id()] > 0 {
                assert!(cap.contains(class.label()), "missing {} in: {cap}", class.label());
            }
        }
    }

    #[test]
    fn traditional_prompt_gives_vague_caption() {
        let spec = scene(3);
        let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
        let keypoint =
            llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(0));
        let traditional =
            llm.describe(&spec, &PromptTemplate::traditional(), &mut StdRng::seed_from_u64(0));
        assert!(traditional.len() < keypoint.len(), "vague: {traditional}\nrich: {keypoint}");
    }

    #[test]
    fn blip_caption_is_single_sentence() {
        let spec = scene(4);
        let llm = SimulatedLlm::new(LlmProvider::BlipCaption);
        let cap =
            llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(0));
        assert_eq!(cap.matches('.').count(), 1, "{cap}");
    }

    #[test]
    fn providers_order_by_information_content() {
        // Averaged over scenes, the keypoint-aware captioner produces the
        // longest captions and BLIP the shortest.
        let mut totals = std::collections::HashMap::new();
        for seed in 0..10u64 {
            let spec = scene(seed);
            for p in LlmProvider::ALL {
                let llm = SimulatedLlm::new(p);
                let cap = llm.describe(
                    &spec,
                    &PromptTemplate::keypoint_aware(),
                    &mut StdRng::seed_from_u64(seed),
                );
                *totals.entry(p).or_insert(0usize) += cap.len();
            }
        }
        assert!(totals[&LlmProvider::KeypointAware] > totals[&LlmProvider::GeminiLike]);
        assert!(totals[&LlmProvider::GeminiLike] > totals[&LlmProvider::BlipCaption]);
    }

    #[test]
    fn night_description_mentions_lighting() {
        let spec = scene(5);
        let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
        let cap = llm.describe_at_night(&spec, &mut StdRng::seed_from_u64(0));
        assert!(cap.contains("nighttime"), "{cap}");
        assert!(cap.contains("Headlights"), "{cap}");
    }

    #[test]
    fn viewpoint_transition_changes_caption() {
        let spec = scene(6);
        let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
        let g =
            llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(0));
        let vp = Viewpoint { altitude: 0.4, pitch_deg: 45.0, heading_deg: 10.0 };
        let g_prime = llm.describe_with_viewpoint(&spec, vp, &mut StdRng::seed_from_u64(0));
        assert_ne!(g, g_prime);
        assert!(g_prime.contains("low altitude"), "{g_prime}");
    }

    #[test]
    fn market_caption_names_the_market() {
        let spec = SceneGenerator::default()
            .generate_kind(SceneKind::Market, &mut StdRng::seed_from_u64(7));
        let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
        let cap =
            llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(0));
        assert!(cap.contains("market"), "{cap}");
    }
}
