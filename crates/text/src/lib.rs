//! Keypoint-aware text generation substrate.
//!
//! The paper prompts black-box LLM APIs (GPT-4o, Gemini; BLIP captioning
//! as a baseline) to describe each aerial image, contrasting a
//! *traditional prompt* ("write a description for this image") with a
//! *keypoint-aware prompt* that names the time of day, the drone's
//! viewpoint, and the ground-truth object list `o_1 … o_n` (Fig. 3,
//! Eq. 1: `G_i = LLM(X_i, O_i, P_i)`).
//!
//! No LLM API is reachable here, so this crate simulates the captioners.
//! Each [`llm::CaptionProfile`] controls the *information content* of the
//! produced text — which keypoints survive (time, viewpoint, layout,
//! object classes, spatial relations), how often objects are omitted, and
//! how often spurious ones are hallucinated. That is exactly the variable
//! the paper's Table II and Fig. 3 manipulate, and it is measured here by
//! [`coverage::keypoint_coverage`].
//!
//! # Example
//!
//! ```
//! use aero_text::llm::{LlmProvider, SimulatedLlm};
//! use aero_text::prompt::PromptTemplate;
//! use aero_scene::{SceneGenerator, SceneGeneratorConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let spec = SceneGenerator::new(SceneGeneratorConfig::default()).generate(&mut rng);
//! let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
//! let caption = llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut rng);
//! assert!(caption.contains("aerial"));
//! ```

pub mod coverage;
pub mod llm;
pub mod prompt;
pub mod task;
pub mod tokenizer;

pub use coverage::{keypoint_coverage, CoverageReport};
pub use llm::{CaptionProfile, LlmProvider, SimulatedLlm};
pub use prompt::PromptTemplate;
pub use task::{task_caption, TaskCaption};
pub use tokenizer::{Tokenizer, Vocabulary};
