//! Task-aware caption assembly for image-conditioned workloads.
//!
//! The simulated captioners in [`crate::llm`] narrate a full scene spec;
//! the image-conditioned tasks (cross-view translation, keypoint-box
//! inpainting, super-resolution) have no spec — only a user prompt plus
//! task metadata. This module deterministically folds that metadata into
//! the prompt so the text branch of the condition vector still carries
//! the keypoints the task depends on: the inpainting caption names the
//! object classes inside the masked boxes (grouped with the same count
//! phrasing the keypoint-aware captioner uses), the view-translation
//! caption states that the geometry is re-projected, and the super-res
//! caption asks for preserved fine detail.
//!
//! Unlike [`crate::llm::SimulatedLlm::describe`], assembly takes no RNG:
//! the same task metadata always yields the same caption, which is what
//! lets serve cache the encoded condition under a task-derived key.

use crate::llm::count_phrase;
use aero_scene::ObjectClass;

/// Task metadata that shapes the caption, mirroring the task family in
/// the core `TaskSpec` without depending on the core crate.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskCaption<'a> {
    /// Cross-view translation: the source image is warped by a
    /// homography before encoding; the caption narrates the re-projection.
    ViewTranslation,
    /// Keypoint-box inpainting: only the listed regions are re-denoised;
    /// the caption names what lives inside them.
    Inpaint {
        /// Classes of the objects whose boxes are re-drawn (one entry per
        /// box; duplicates are grouped into count phrases).
        labels: &'a [ObjectClass],
    },
    /// Second stage of the super-resolution cascade.
    SuperResolve,
}

/// Assembles the caption `G` for an image-conditioned task.
///
/// The user `prompt` always leads; a task-specific sentence follows. The
/// output is a pure function of its arguments.
#[must_use]
pub fn task_caption(task: &TaskCaption<'_>, prompt: &str) -> String {
    let prompt = prompt.trim();
    let lead = if prompt.is_empty() {
        String::new()
    } else if prompt.ends_with(['.', '!', '?']) {
        format!("{prompt} ")
    } else {
        format!("{prompt}. ")
    };
    match task {
        TaskCaption::ViewTranslation => format!(
            "{lead}The same aerial scene re-projected through a new drone camera; \
             layout and objects are preserved under the viewpoint change."
        ),
        TaskCaption::Inpaint { labels } => {
            format!("{lead}Re-draw only the marked keypoint regions{}.", inventory_phrase(labels))
        }
        TaskCaption::SuperResolve => format!(
            "{lead}A sharper full-resolution rendering of the same aerial scene, \
             preserving every small object and road marking."
        ),
    }
}

/// Groups box labels into the keypoint-aware count phrasing:
/// `[Car, Car, Truck]` → `", which contain a few cars and one truck"`.
fn inventory_phrase(labels: &[ObjectClass]) -> String {
    let mut counts = [0usize; ObjectClass::ALL.len()];
    for class in labels {
        counts[class.id()] += 1;
    }
    let mut parts = Vec::new();
    for class in ObjectClass::ALL {
        let n = counts[class.id()];
        if n == 0 {
            continue;
        }
        let noun = if n == 1 { class.label() } else { class.plural_label() };
        parts.push(format!("{} {noun}", count_phrase(n)));
    }
    match parts.len() {
        0 => String::new(),
        1 => format!(", which contain {}", parts[0]),
        _ => {
            let last = parts.pop().unwrap();
            format!(", which contain {} and {last}", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captions_are_deterministic_and_lead_with_prompt() {
        for task in [
            TaskCaption::ViewTranslation,
            TaskCaption::Inpaint { labels: &[ObjectClass::Car] },
            TaskCaption::SuperResolve,
        ] {
            let a = task_caption(&task, "a busy intersection");
            let b = task_caption(&task, "a busy intersection");
            assert_eq!(a, b);
            assert!(a.starts_with("a busy intersection. "), "{a}");
        }
    }

    #[test]
    fn inpaint_caption_groups_duplicate_labels() {
        let labels = [ObjectClass::Car, ObjectClass::Car, ObjectClass::Truck];
        let cap = task_caption(&TaskCaption::Inpaint { labels: &labels }, "night scene");
        assert!(cap.contains("a few cars"), "{cap}");
        assert!(cap.contains("one truck"), "{cap}");
        assert!(cap.contains(" and "), "{cap}");
    }

    #[test]
    fn inpaint_caption_with_no_labels_omits_inventory() {
        let cap = task_caption(&TaskCaption::Inpaint { labels: &[] }, "park");
        assert!(cap.ends_with("marked keypoint regions."), "{cap}");
    }

    #[test]
    fn empty_prompt_still_yields_a_caption() {
        let cap = task_caption(&TaskCaption::SuperResolve, "  ");
        assert!(cap.starts_with("A sharper"), "{cap}");
    }

    #[test]
    fn prompt_punctuation_is_not_doubled() {
        let cap = task_caption(&TaskCaption::ViewTranslation, "looking down!");
        assert!(cap.starts_with("looking down! The same"), "{cap}");
    }
}
