//! Prompt templates contrasted in Fig. 3 of the paper.

use aero_scene::SceneSpec;
use serde::{Deserialize, Serialize};

/// Which keypoints a prompt instructs the captioner to cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeypointSet {
    /// Time of day / atmospheric conditions.
    pub time_of_day: bool,
    /// The drone's viewpoint (altitude, angle).
    pub viewpoint: bool,
    /// The explicit object list `o_1 … o_n`.
    pub object_list: bool,
    /// Arrangement/positions relative to the drone's perspective.
    pub spatial_relations: bool,
    /// Static layout (roads, buildings, trees, water).
    pub layout: bool,
}

impl KeypointSet {
    /// All keypoints requested (the keypoint-aware prompt).
    pub const FULL: KeypointSet = KeypointSet {
        time_of_day: true,
        viewpoint: true,
        object_list: true,
        spatial_relations: true,
        layout: true,
    };

    /// No keypoints requested (the traditional prompt).
    pub const NONE: KeypointSet = KeypointSet {
        time_of_day: false,
        viewpoint: false,
        object_list: false,
        spatial_relations: false,
        layout: false,
    };
}

/// A captioning prompt: the instruction text plus the keypoints it asks
/// the model to cover.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptTemplate {
    /// Human-readable prompt name ("traditional", "keypoint-aware").
    pub name: String,
    /// The keypoints the prompt demands.
    pub keypoints: KeypointSet,
}

impl PromptTemplate {
    /// The traditional prompt: "Write a description for this image."
    pub fn traditional() -> Self {
        PromptTemplate { name: "traditional".into(), keypoints: KeypointSet::NONE }
    }

    /// The keypoint-aware prompt of Fig. 3, demanding time of day,
    /// viewpoint, the object list, and spatial arrangement.
    pub fn keypoint_aware() -> Self {
        PromptTemplate { name: "keypoint-aware".into(), keypoints: KeypointSet::FULL }
    }

    /// Renders the full prompt text that would be sent to a black-box
    /// LLM API for the given scene (Eq. 1's `P_i`, with `O_i` inlined).
    pub fn render(&self, spec: &SceneSpec) -> String {
        if self.keypoints == KeypointSet::NONE {
            return "Write a description for this image.".to_string();
        }
        let hist = spec.class_histogram();
        let objects: Vec<String> = aero_scene::ObjectClass::ALL
            .iter()
            .zip(hist)
            .filter(|(_, n)| *n > 0)
            .map(|(c, n)| {
                if n == 1 {
                    format!("{n} {}", c.label())
                } else {
                    format!("{n} {}", c.plural_label())
                }
            })
            .collect();
        format!(
            "Write a description for this image, starting with 'A nighttime aerial image' \
             or 'A daytime aerial image', highlighting the time of day and atmospheric \
             conditions. Detail the drone's viewpoint, indicating its perspective on the \
             scene, and mention the objects present ({}), describing their arrangement and \
             positions relative to the drone's perspective and the location within the scene.",
            objects.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{SceneGenerator, SceneGeneratorConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn scene() -> SceneSpec {
        SceneGenerator::new(SceneGeneratorConfig::default()).generate(&mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn traditional_prompt_is_generic() {
        let p = PromptTemplate::traditional();
        let text = p.render(&scene());
        assert_eq!(text, "Write a description for this image.");
        assert_eq!(p.keypoints, KeypointSet::NONE);
    }

    #[test]
    fn keypoint_prompt_mentions_objects_and_keypoints() {
        let spec = scene();
        let p = PromptTemplate::keypoint_aware();
        let text = p.render(&spec);
        assert!(text.contains("time of day"));
        assert!(text.contains("viewpoint"));
        // at least one real object count should be inlined
        let hist = spec.class_histogram();
        let (class, n) = aero_scene::ObjectClass::ALL
            .iter()
            .zip(hist)
            .find(|(_, n)| *n > 0)
            .expect("scene has objects");
        assert!(text.contains(&format!("{n} {}", class.label())), "prompt: {text}");
    }

    #[test]
    fn full_keypoints_demand_everything() {
        let k = KeypointSet::FULL;
        assert!(k.time_of_day && k.viewpoint && k.object_list && k.spatial_relations && k.layout);
    }
}
