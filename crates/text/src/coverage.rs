//! Keypoint-coverage analysis of captions against scene ground truth.
//!
//! This quantifies the Fig. 3 contrast: how many of the scene's keypoints
//! (time of day, viewpoint, object classes, layout) a caption actually
//! conveys, and whether it asserts objects that are not there.

use crate::tokenizer::tokenize_words;
use aero_scene::{ObjectClass, SceneSpec};
use serde::{Deserialize, Serialize};

/// Coverage of scene keypoints by a caption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Caption states the correct time of day.
    pub mentions_time: bool,
    /// Caption describes the viewpoint (altitude/angle words).
    pub mentions_viewpoint: bool,
    /// Fraction of present object classes that are named.
    pub class_recall: f32,
    /// Fraction of named object classes that are actually present.
    pub class_precision: f32,
    /// Caption references layout elements present in the scene.
    pub mentions_layout: bool,
    /// Caption uses spatial-relation vocabulary (left/right/center/…).
    pub mentions_positions: bool,
}

impl CoverageReport {
    /// A single scalar score in `[0, 1]` combining all keypoints, used to
    /// rank captioners in tests and in the Table II harness.
    pub fn score(&self) -> f32 {
        let mut s = 0.0;
        if self.mentions_time {
            s += 1.0;
        }
        if self.mentions_viewpoint {
            s += 1.0;
        }
        if self.mentions_layout {
            s += 1.0;
        }
        if self.mentions_positions {
            s += 1.0;
        }
        s += 2.0 * self.class_recall;
        s += self.class_precision;
        s / 7.0
    }
}

/// Measures how completely `caption` covers the keypoints of `spec`.
pub fn keypoint_coverage(caption: &str, spec: &SceneSpec) -> CoverageReport {
    let words = tokenize_words(caption);
    let has = |w: &str| words.iter().any(|t| t == w);
    let has_any = |ws: &[&str]| ws.iter().any(|w| has(w));

    let mentions_time = has(match spec.time {
        aero_scene::TimeOfDay::Day => "daytime",
        aero_scene::TimeOfDay::Night => "nighttime",
    });
    let mentions_viewpoint =
        has_any(&["altitude", "vantage", "angle", "angled", "down", "perspective"]);
    let mentions_positions = has_any(&["left", "right", "center", "top", "bottom"]);

    let hist = spec.class_histogram();
    let mut present = 0usize;
    let mut recalled = 0usize;
    let mut named = 0usize;
    let mut named_correct = 0usize;
    for class in ObjectClass::ALL {
        // match singular token of the label's first word ("motorcycle" etc.)
        // and its plural — including sibilant stems ("bus" → "buses")
        let label_word = class.label().split_whitespace().next().unwrap_or("");
        let in_caption = words.iter().any(|t| {
            t == label_word || t == &format!("{label_word}s") || t == &format!("{label_word}es")
        });
        let in_scene = hist[class.id()] > 0;
        if in_scene {
            present += 1;
            if in_caption {
                recalled += 1;
            }
        }
        if in_caption {
            named += 1;
            if in_scene {
                named_correct += 1;
            }
        }
    }
    let class_recall = if present == 0 { 1.0 } else { recalled as f32 / present as f32 };
    let class_precision = if named == 0 { 0.0 } else { named_correct as f32 / named as f32 };

    let l = &spec.layout;
    let mentions_layout = (!l.roads.is_empty()
        && has_any(&["road", "highway", "walkway", "lanes", "street"]))
        || (!l.buildings.is_empty() && has_any(&["building", "buildings", "stalls"]))
        || (!l.trees.is_empty() && has_any(&["tree", "trees"]))
        || (!l.water.is_empty() && has("pond"));

    CoverageReport {
        mentions_time,
        mentions_viewpoint,
        class_recall,
        class_precision,
        mentions_layout,
        mentions_positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::{LlmProvider, SimulatedLlm};
    use crate::prompt::PromptTemplate;
    use aero_scene::{SceneGenerator, SceneGeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scene(seed: u64) -> SceneSpec {
        SceneGenerator::new(SceneGeneratorConfig::default())
            .generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn keypoint_captions_score_higher_than_traditional() {
        let mut better = 0;
        for seed in 0..12u64 {
            let spec = scene(seed);
            let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
            let rich = llm.describe(
                &spec,
                &PromptTemplate::keypoint_aware(),
                &mut StdRng::seed_from_u64(seed),
            );
            let vague = llm.describe(
                &spec,
                &PromptTemplate::traditional(),
                &mut StdRng::seed_from_u64(seed),
            );
            let rs = keypoint_coverage(&rich, &spec).score();
            let vs = keypoint_coverage(&vague, &spec).score();
            if rs > vs {
                better += 1;
            }
        }
        assert!(better >= 11, "keypoint prompt should nearly always win, won {better}/12");
    }

    #[test]
    fn provider_scores_match_table_ii_ordering() {
        let mut avg = std::collections::HashMap::new();
        for seed in 0..16u64 {
            let spec = scene(seed + 100);
            for p in LlmProvider::ALL {
                let llm = SimulatedLlm::new(p);
                let cap = llm.describe(
                    &spec,
                    &PromptTemplate::keypoint_aware(),
                    &mut StdRng::seed_from_u64(seed),
                );
                *avg.entry(p).or_insert(0.0f32) += keypoint_coverage(&cap, &spec).score();
            }
        }
        let aero = avg[&LlmProvider::KeypointAware];
        let gemini = avg[&LlmProvider::GeminiLike];
        let gpt = avg[&LlmProvider::Gpt4oLike];
        let blip = avg[&LlmProvider::BlipCaption];
        assert!(aero > gemini, "aero {aero} gemini {gemini}");
        assert!(gemini > gpt, "gemini {gemini} gpt {gpt}");
        assert!(gpt > blip, "gpt {gpt} blip {blip}");
    }

    #[test]
    fn perfect_recall_on_full_keypoint_caption() {
        let spec = scene(50);
        let llm = SimulatedLlm::new(LlmProvider::KeypointAware);
        let cap =
            llm.describe(&spec, &PromptTemplate::keypoint_aware(), &mut StdRng::seed_from_u64(0));
        let report = keypoint_coverage(&cap, &spec);
        assert!((report.class_recall - 1.0).abs() < 1e-6, "{report:?}\n{cap}");
        assert!(report.mentions_time);
    }

    #[test]
    fn empty_caption_scores_low() {
        let spec = scene(51);
        let report = keypoint_coverage("", &spec);
        assert!(report.score() < 0.3);
        assert!(!report.mentions_time);
    }
}
