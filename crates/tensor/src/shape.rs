//! Shape and stride helpers shared by the tensor kernels.

use crate::TensorError;

/// Computes row-major strides for a shape.
///
/// The last axis is contiguous (stride 1); zero-sized axes are permitted.
///
/// # Example
///
/// ```
/// assert_eq!(aero_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Computes the broadcast shape of two shapes under NumPy rules.
///
/// Shapes are right-aligned; each axis pair must be equal or contain a 1.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastMismatch`] when an axis pair conflicts.
///
/// # Example
///
/// ```
/// let out = aero_tensor::broadcast_shapes(&[2, 1, 4], &[3, 1])?;
/// assert_eq!(out, vec![2, 3, 4]);
/// # Ok::<(), aero_tensor::TensorError>(())
/// ```
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>, TensorError> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() { 1 } else { lhs[i - (rank - lhs.len())] };
        let r = if i < rank - rhs.len() { 1 } else { rhs[i - (rank - rhs.len())] };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::BroadcastMismatch { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
        };
    }
    Ok(out)
}

/// Number of elements implied by a shape (product of axes; empty shape = 1).
pub(crate) fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

fn dim_err(detail: String) -> TensorError {
    TensorError::DimensionMismatch { detail }
}

/// Output shape of a rank-2 matrix product `[m, k] x [k, n] -> [m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] on wrong rank or inner-dimension
/// conflict.
pub fn matmul_shape(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>, TensorError> {
    if lhs.len() != 2 || rhs.len() != 2 {
        return Err(dim_err(format!("matmul requires rank-2 operands, got {lhs:?} x {rhs:?}")));
    }
    if lhs[1] != rhs[0] {
        return Err(dim_err(format!("matmul inner dimensions differ: {lhs:?} x {rhs:?}")));
    }
    Ok(vec![lhs[0], rhs[1]])
}

/// Output shape of a batched matrix product `[b, m, k] x [b, k, n] -> [b, m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] on wrong rank, batch conflict,
/// or inner-dimension conflict.
pub fn bmm_shape(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>, TensorError> {
    if lhs.len() != 3 || rhs.len() != 3 {
        return Err(dim_err(format!("bmm requires rank-3 operands, got {lhs:?} x {rhs:?}")));
    }
    if lhs[0] != rhs[0] {
        return Err(dim_err(format!("bmm batch dimensions differ: {lhs:?} x {rhs:?}")));
    }
    if lhs[2] != rhs[1] {
        return Err(dim_err(format!("bmm inner dimensions differ: {lhs:?} x {rhs:?}")));
    }
    Ok(vec![lhs[0], lhs[1], rhs[2]])
}

/// Output spatial extent of one convolution axis: `(d + 2*pad - k) / stride + 1`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the kernel exceeds the
/// padded input or `stride` is zero.
pub fn conv_out_dim(d: usize, k: usize, stride: usize, pad: usize) -> Result<usize, TensorError> {
    if stride == 0 {
        return Err(dim_err("convolution stride must be nonzero".to_string()));
    }
    let padded = d + 2 * pad;
    if k == 0 || k > padded {
        return Err(dim_err(format!(
            "kernel extent {k} does not fit padded input extent {padded}"
        )));
    }
    Ok((padded - k) / stride + 1)
}

/// Output shape of `conv2d`: input `[n, cin, h, w]`, weight `[cout, cin, kh, kw]`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] on rank or channel conflicts,
/// or when the kernel does not fit the padded input.
pub fn conv2d_shape(
    input: &[usize],
    weight: &[usize],
    stride: usize,
    pad: usize,
) -> Result<Vec<usize>, TensorError> {
    if input.len() != 4 {
        return Err(dim_err(format!("conv2d input must be [n, cin, h, w], got {input:?}")));
    }
    if weight.len() != 4 {
        return Err(dim_err(format!("conv2d weight must be [cout, cin, kh, kw], got {weight:?}")));
    }
    if input[1] != weight[1] {
        return Err(dim_err(format!(
            "conv2d channel mismatch: input has {} channels, weight expects {}",
            input[1], weight[1]
        )));
    }
    let oh = conv_out_dim(input[2], weight[2], stride, pad)?;
    let ow = conv_out_dim(input[3], weight[3], stride, pad)?;
    Ok(vec![input[0], weight[0], oh, ow])
}

/// Output shape of `conv_transpose2d`: input `[n, cin, h, w]`, weight
/// `[cin, cout, kh, kw]`; spatial extent is `(d - 1) * stride + k - 2*pad`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] on rank or channel conflicts,
/// or when the parameters imply a non-positive output extent.
pub fn conv_transpose2d_shape(
    input: &[usize],
    weight: &[usize],
    stride: usize,
    pad: usize,
) -> Result<Vec<usize>, TensorError> {
    if input.len() != 4 {
        return Err(dim_err(format!(
            "conv_transpose2d input must be [n, cin, h, w], got {input:?}"
        )));
    }
    if weight.len() != 4 {
        return Err(dim_err(format!(
            "conv_transpose2d weight must be [cin, cout, kh, kw], got {weight:?}"
        )));
    }
    if input[1] != weight[0] {
        return Err(dim_err(format!(
            "conv_transpose2d channel mismatch: input has {} channels, weight expects {}",
            input[1], weight[0]
        )));
    }
    if stride == 0 {
        return Err(dim_err("conv_transpose2d stride must be nonzero".to_string()));
    }
    let out_dim = |d: usize, k: usize| -> Result<usize, TensorError> {
        if d == 0 {
            return Err(dim_err("conv_transpose2d input extent must be nonzero".to_string()));
        }
        ((d - 1) * stride + k).checked_sub(2 * pad).filter(|&v| v > 0).ok_or_else(|| {
            dim_err(format!(
                "conv_transpose2d padding {pad} swallows output for extent {d}, kernel {k}"
            ))
        })
    };
    let oh = out_dim(input[2], weight[2])?;
    let ow = out_dim(input[3], weight[3])?;
    Ok(vec![input[0], weight[1], oh, ow])
}

/// Output shape of square average/max pooling with window and stride `k`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] unless the input is rank-4 and
/// both spatial extents divide exactly by `k`.
pub fn pool2d_shape(input: &[usize], k: usize) -> Result<Vec<usize>, TensorError> {
    if input.len() != 4 {
        return Err(dim_err(format!("pooling requires [n, c, h, w], got {input:?}")));
    }
    if k == 0 {
        return Err(dim_err("pooling window must be nonzero".to_string()));
    }
    if !input[2].is_multiple_of(k) || !input[3].is_multiple_of(k) {
        return Err(dim_err(format!("pooling window {k} must divide spatial dims of {input:?}")));
    }
    Ok(vec![input[0], input[1], input[2] / k, input[3] / k])
}

/// Output shape of nearest-neighbour 2x upsampling of `[n, c, h, w]`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] unless the input is rank-4.
pub fn upsample2x_shape(input: &[usize]) -> Result<Vec<usize>, TensorError> {
    if input.len() != 4 {
        return Err(dim_err(format!("upsample requires [n, c, h, w], got {input:?}")));
    }
    Ok(vec![input[0], input[1], input[2] * 2, input[3] * 2])
}

/// Output shape of concatenating `shapes` along `axis`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the list is empty, the
/// axis is out of bounds, or any off-axis extent differs.
pub fn concat_shape(shapes: &[&[usize]], axis: usize) -> Result<Vec<usize>, TensorError> {
    let Some(first) = shapes.first() else {
        return Err(dim_err("concat requires at least one tensor".to_string()));
    };
    if axis >= first.len() {
        return Err(dim_err(format!("concat axis {axis} out of bounds for {first:?}")));
    }
    let mut out = first.to_vec();
    for s in &shapes[1..] {
        if s.len() != first.len() {
            return Err(dim_err(format!("concat rank mismatch: {first:?} vs {s:?}")));
        }
        for (ax, (&a, &b)) in first.iter().zip(s.iter()).enumerate() {
            if ax != axis && a != b {
                return Err(dim_err(format!(
                    "concat off-axis extent mismatch at axis {ax}: {first:?} vs {s:?}"
                )));
            }
        }
        out[axis] += s[axis];
    }
    Ok(out)
}

/// Output shape of `narrow(axis, start, len)`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the axis or the range
/// `start..start + len` is out of bounds.
pub fn narrow_shape(
    shape: &[usize],
    axis: usize,
    start: usize,
    len: usize,
) -> Result<Vec<usize>, TensorError> {
    if axis >= shape.len() {
        return Err(dim_err(format!("narrow axis {axis} out of bounds for {shape:?}")));
    }
    if start + len > shape[axis] {
        return Err(dim_err(format!(
            "narrow range {start}..{} out of bounds for axis {axis} of {shape:?}",
            start + len
        )));
    }
    let mut out = shape.to_vec();
    out[axis] = len;
    Ok(out)
}

/// Validates that `from` can be reshaped to `to` (equal element counts).
///
/// # Errors
///
/// Returns [`TensorError::ShapeDataMismatch`] when the element counts differ.
pub fn reshape_check(from: &[usize], to: &[usize]) -> Result<(), TensorError> {
    let (expected, actual) = (numel(to), numel(from));
    if expected != actual {
        return Err(TensorError::ShapeDataMismatch { expected, actual });
    }
    Ok(())
}

/// Output shape of `permute(axes)`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] unless `axes` is a permutation
/// of `0..shape.len()`.
pub fn permute_shape(shape: &[usize], axes: &[usize]) -> Result<Vec<usize>, TensorError> {
    if axes.len() != shape.len() {
        return Err(dim_err(format!("permute needs one entry per axis: {axes:?} for {shape:?}")));
    }
    let mut seen = vec![false; shape.len()];
    for &a in axes {
        if a >= shape.len() || seen[a] {
            return Err(dim_err(format!("permute axes {axes:?} are not a permutation")));
        }
        seen[a] = true;
    }
    Ok(axes.iter().map(|&a| shape[a]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[4]), vec![1]);
        assert_eq!(strides_for(&[2, 3]), vec![3, 1]);
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_conflict() {
        assert!(broadcast_shapes(&[2, 3], &[4, 3]).is_err());
        assert!(broadcast_shapes(&[5], &[4]).is_err());
    }

    #[test]
    fn numel_counts() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 5]), 0);
    }

    #[test]
    fn matmul_rule() {
        assert_eq!(matmul_shape(&[2, 3], &[3, 5]).unwrap(), vec![2, 5]);
        assert!(matmul_shape(&[2, 3], &[4, 5]).is_err());
        assert!(matmul_shape(&[2, 3, 4], &[4, 5]).is_err());
    }

    #[test]
    fn bmm_rule() {
        assert_eq!(bmm_shape(&[7, 2, 3], &[7, 3, 5]).unwrap(), vec![7, 2, 5]);
        assert!(bmm_shape(&[7, 2, 3], &[8, 3, 5]).is_err());
        assert!(bmm_shape(&[7, 2, 3], &[7, 4, 5]).is_err());
    }

    #[test]
    fn conv_rules_match_kernels() {
        assert_eq!(conv2d_shape(&[2, 3, 8, 8], &[16, 3, 3, 3], 2, 1).unwrap(), vec![2, 16, 4, 4]);
        assert!(conv2d_shape(&[2, 3, 8, 8], &[16, 4, 3, 3], 2, 1).is_err());
        assert!(conv2d_shape(&[2, 3, 2, 2], &[16, 3, 5, 5], 1, 0).is_err());
        assert_eq!(
            conv_transpose2d_shape(&[2, 3, 4, 4], &[3, 5, 2, 2], 2, 0).unwrap(),
            vec![2, 5, 8, 8]
        );
        assert!(conv_transpose2d_shape(&[2, 3, 4, 4], &[5, 3, 2, 2], 2, 0).is_err());
    }

    #[test]
    fn pool_and_upsample_rules() {
        assert_eq!(pool2d_shape(&[1, 2, 8, 8], 2).unwrap(), vec![1, 2, 4, 4]);
        assert!(pool2d_shape(&[1, 2, 9, 8], 2).is_err());
        assert_eq!(upsample2x_shape(&[1, 2, 3, 4]).unwrap(), vec![1, 2, 6, 8]);
    }

    #[test]
    fn concat_narrow_reshape_permute_rules() {
        assert_eq!(concat_shape(&[&[2, 3], &[2, 5]], 1).unwrap(), vec![2, 8]);
        assert!(concat_shape(&[&[2, 3], &[4, 5]], 1).is_err());
        assert!(concat_shape(&[], 0).is_err());
        assert_eq!(narrow_shape(&[2, 6], 1, 2, 3).unwrap(), vec![2, 3]);
        assert!(narrow_shape(&[2, 6], 1, 4, 3).is_err());
        assert!(reshape_check(&[2, 6], &[3, 4]).is_ok());
        assert!(reshape_check(&[2, 6], &[5]).is_err());
        assert_eq!(permute_shape(&[2, 3, 4], &[2, 0, 1]).unwrap(), vec![4, 2, 3]);
        assert!(permute_shape(&[2, 3, 4], &[0, 0, 1]).is_err());
    }
}
