//! Shape and stride helpers shared by the tensor kernels.

use crate::TensorError;

/// Computes row-major strides for a shape.
///
/// The last axis is contiguous (stride 1); zero-sized axes are permitted.
///
/// # Example
///
/// ```
/// assert_eq!(aero_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Computes the broadcast shape of two shapes under NumPy rules.
///
/// Shapes are right-aligned; each axis pair must be equal or contain a 1.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastMismatch`] when an axis pair conflicts.
///
/// # Example
///
/// ```
/// let out = aero_tensor::broadcast_shapes(&[2, 1, 4], &[3, 1])?;
/// assert_eq!(out, vec![2, 3, 4]);
/// # Ok::<(), aero_tensor::TensorError>(())
/// ```
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>, TensorError> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() { 1 } else { lhs[i - (rank - lhs.len())] };
        let r = if i < rank - rhs.len() { 1 } else { rhs[i - (rank - rhs.len())] };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::BroadcastMismatch { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
        };
    }
    Ok(out)
}

/// Number of elements implied by a shape (product of axes; empty shape = 1).
pub(crate) fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[4]), vec![1]);
        assert_eq!(strides_for(&[2, 3]), vec![3, 1]);
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_conflict() {
        assert!(broadcast_shapes(&[2, 3], &[4, 3]).is_err());
        assert!(broadcast_shapes(&[5], &[4]).is_err());
    }

    #[test]
    fn numel_counts() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 5]), 0);
    }
}
