//! Block quantization (q8) and the quantized matmul kernel.
//!
//! The serving-scale model artifact format (`aero-model`) stores large
//! weight tensors as **q8 blocks**: runs of [`Q8_BLOCK`] values along the
//! innermost dimension, each run carried as one `f32` scale plus
//! [`Q8_BLOCK`] signed bytes (`x ≈ scale * q`, `q ∈ [-127, 127]`). That
//! is 36 bytes per 32 weights — ~28% of the `f32` footprint — while the
//! worst-case per-element error is bounded by half a quantization step
//! (`block_max_abs / 254`).
//!
//! Blocks never cross a row boundary (a "row" is the innermost
//! dimension), so a `[m, k]` matrix quantizes to `m * ceil(k / 32)`
//! blocks and [`Q8Tensor::matmul`] can dequantize block-by-block inside
//! the same "ikj" accumulation order every other matmul-family kernel in
//! this crate uses. The parallel path shards output rows through
//! [`crate::par_kernels::run_units`] exactly like [`Tensor::matmul`], so
//! it is bit-identical to [`Q8Tensor::matmul_serial`] (the quarantined
//! oracle) at any thread count.
//!
//! Quantization itself is deterministic — scale selection and rounding
//! involve no ambient state — so the same `f32` tensor always produces
//! the same q8 bytes, which is what makes artifact export byte-stable.

use crate::par_kernels;
use crate::shape::matmul_shape;
use crate::tensor::Tensor;
use crate::TensorError;

/// Values per quantization block (one shared `f32` scale each).
pub const Q8_BLOCK: usize = 32;

/// A block-quantized tensor: `q8` values plus one `f32` scale per block.
///
/// Blocks run along the innermost dimension and never cross a row
/// boundary; the final block of a row is zero-padded. Scalars (rank 0)
/// quantize as a single one-element row.
#[derive(Debug, Clone, PartialEq)]
pub struct Q8Tensor {
    shape: Vec<usize>,
    /// One scale per block, row-major: row `r`'s blocks occupy
    /// `scales[r * blocks_per_row .. (r + 1) * blocks_per_row]`.
    scales: Vec<f32>,
    /// Quantized values, padded to whole blocks per row
    /// (`rows * blocks_per_row * Q8_BLOCK` entries).
    quants: Vec<i8>,
}

/// `ceil(row_len / Q8_BLOCK)`, with a one-block floor so rank-0 tensors
/// still occupy a block.
fn blocks_per_row(row_len: usize) -> usize {
    row_len.div_ceil(Q8_BLOCK).max(1)
}

impl Q8Tensor {
    /// Quantizes a tensor to q8 blocks. Deterministic: the same input
    /// always yields the same scales and bytes.
    #[must_use]
    pub fn quantize(t: &Tensor) -> Q8Tensor {
        let shape = t.shape().to_vec();
        let row_len = shape.last().copied().unwrap_or(1).max(1);
        let rows = t.numel() / row_len;
        let bpr = blocks_per_row(row_len);
        let mut scales = Vec::with_capacity(rows * bpr);
        let mut quants = vec![0i8; rows * bpr * Q8_BLOCK];
        let data = t.as_slice();
        for r in 0..rows {
            let row = &data[r * row_len..(r + 1) * row_len];
            for b in 0..bpr {
                let chunk = &row[b * Q8_BLOCK..row_len.min((b + 1) * Q8_BLOCK)];
                let max_abs = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
                scales.push(scale);
                if scale > 0.0 {
                    let out = &mut quants[(r * bpr + b) * Q8_BLOCK..];
                    for (o, &v) in out.iter_mut().zip(chunk) {
                        // round-half-away-from-zero, clamped to the q8 range
                        *o = (v / scale).round().clamp(-127.0, 127.0) as i8;
                    }
                }
            }
        }
        Q8Tensor { shape, scales, quants }
    }

    /// The logical (unquantized) shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Logical element count (`shape` product, not the padded q8 count).
    #[must_use]
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// The per-block scales, row-major.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The quantized values, padded to whole blocks per row.
    #[must_use]
    pub fn quants(&self) -> &[i8] {
        &self.quants
    }

    /// Rebuilds a [`Q8Tensor`] from its stored parts (the artifact
    /// loader's path).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when `scales` or
    /// `quants` do not match the block geometry `shape` implies.
    pub fn from_parts(
        shape: &[usize],
        scales: Vec<f32>,
        quants: Vec<i8>,
    ) -> Result<Q8Tensor, TensorError> {
        let row_len = shape.last().copied().unwrap_or(1).max(1);
        let numel: usize = shape.iter().product();
        let rows = numel / row_len;
        let bpr = blocks_per_row(row_len);
        if scales.len() != rows * bpr || quants.len() != rows * bpr * Q8_BLOCK {
            return Err(TensorError::DimensionMismatch {
                detail: format!(
                    "q8 from_parts: shape {shape:?} implies {} scales and {} quants, got {} and {}",
                    rows * bpr,
                    rows * bpr * Q8_BLOCK,
                    scales.len(),
                    quants.len()
                ),
            });
        }
        Ok(Q8Tensor { shape: shape.to_vec(), scales, quants })
    }

    /// Dequantizes back to a dense `f32` tensor.
    #[must_use]
    pub fn dequantize(&self) -> Tensor {
        let row_len = self.shape.last().copied().unwrap_or(1).max(1);
        let rows = self.numel() / row_len;
        let bpr = blocks_per_row(row_len);
        let mut out = Vec::with_capacity(self.numel());
        for r in 0..rows {
            for i in 0..row_len {
                let block = r * bpr + i / Q8_BLOCK;
                let q = self.quants[block * Q8_BLOCK + i % Q8_BLOCK];
                out.push(self.scales[block] * f32::from(q));
            }
        }
        Tensor::from_vec(out, &self.shape)
    }

    /// The worst-case and mean absolute dequantization error against the
    /// original tensor, `(max_abs_err, mean_abs_err)`. The artifact
    /// export report is built from this.
    ///
    /// # Panics
    ///
    /// Panics if `original` has a different shape.
    #[must_use]
    pub fn reconstruction_error(&self, original: &Tensor) -> (f32, f32) {
        assert_eq!(original.shape(), self.shape.as_slice(), "q8 error: shape mismatch");
        let deq = self.dequantize();
        let mut max_abs = 0.0f32;
        let mut sum_abs = 0.0f64;
        for (&a, &b) in original.as_slice().iter().zip(deq.as_slice()) {
            let e = (a - b).abs();
            max_abs = max_abs.max(e);
            sum_abs += f64::from(e);
        }
        let n = original.numel().max(1);
        (max_abs, (sum_abs / n as f64) as f32)
    }

    /// `self @ other` where `self` is a q8 `[m, k]` matrix and `other` a
    /// dense `f32` `[k, n]` matrix, sharded over output rows like
    /// [`Tensor::matmul`]. Each row dequantizes its q8 blocks on the fly
    /// inside the same "ikj" accumulation order, so the parallel result
    /// is bit-identical to [`Q8Tensor::matmul_serial`] at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2 and shapes agree (`[m, k] x [k, n]`).
    #[must_use]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let out_shape =
            matmul_shape(&self.shape, other.shape()).unwrap_or_else(|e| panic!("q8 matmul: {e}"));
        let (m, n) = (out_shape[0], out_shape[1]);
        let k = self.shape[1];
        let bpr = blocks_per_row(k);
        let mut out = vec![0.0f32; m * n];
        let b = other.as_slice();
        let be = crate::backend::active();
        par_kernels::run_slabs(&mut out, n, 2 * k, |row0, slab| {
            let rows = slab.len() / n;
            be.q8_matmul_slab(
                &self.scales[row0 * bpr..(row0 + rows) * bpr],
                &self.quants[row0 * bpr * Q8_BLOCK..(row0 + rows) * bpr * Q8_BLOCK],
                bpr,
                k,
                b,
                n,
                slab,
            );
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Single-threaded reference for [`Q8Tensor::matmul`]: the identical
    /// per-row kernel run without the worker pool. Exists as the bitwise
    /// oracle for the equivalence tests only — production call sites go
    /// through [`Q8Tensor::matmul`].
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2 and shapes agree.
    #[must_use]
    pub fn matmul_serial(&self, other: &Tensor) -> Tensor {
        let out_shape = matmul_shape(&self.shape, other.shape())
            .unwrap_or_else(|e| panic!("q8 matmul_serial: {e}"));
        let (m, n) = (out_shape[0], out_shape[1]);
        let k = self.shape[1];
        let bpr = blocks_per_row(k);
        let mut out = vec![0.0f32; m * n];
        let b = other.as_slice();
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            q8_row_kernel(
                &self.scales[i * bpr..(i + 1) * bpr],
                &self.quants[i * bpr * Q8_BLOCK..(i + 1) * bpr * Q8_BLOCK],
                k,
                b,
                out_row,
            );
        }
        Tensor::from_vec(out, &[m, n])
    }
}

/// Accumulates `out_row += dequant(a_row) @ b` for one output row,
/// dequantizing per block and streaming through the rows of `b` in
/// ascending `p` — the q8 twin of
/// [`crate::par_kernels::matmul_row_kernel`], defining the accumulation
/// order for both the serial oracle and the backend-dispatched path
/// (the blocked backend packs the identical `scale * q` products into
/// its tiles).
#[inline]
pub(crate) fn q8_row_kernel(
    scales: &[f32],
    quants: &[i8],
    k: usize,
    b: &[f32],
    out_row: &mut [f32],
) {
    let n = out_row.len();
    for p in 0..k {
        let block = p / Q8_BLOCK;
        let av = scales[block] * f32::from(quants[block * Q8_BLOCK + p % Q8_BLOCK]);
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += av * bv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_error_is_within_half_a_step() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[5, 77], &mut rng);
        let q = Q8Tensor::quantize(&t);
        let (max_err, mean_err) = q.reconstruction_error(&t);
        // Per block, |x - scale*q| <= scale/2 = block_max_abs/254; bound
        // globally by the tensor-wide max instead of per block.
        let global_max = t.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max_err <= global_max / 254.0 + 1e-6, "max_err {max_err}");
        assert!(mean_err <= max_err);
    }

    #[test]
    fn zeros_quantize_exactly() {
        let t = Tensor::zeros(&[3, 40]);
        let q = Q8Tensor::quantize(&t);
        assert_eq!(q.dequantize(), t);
        assert!(q.scales().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn quantization_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor::randn(&[4, 33], &mut rng);
        assert_eq!(Q8Tensor::quantize(&t), Q8Tensor::quantize(&t));
    }

    #[test]
    fn parts_round_trip_and_reject_mismatch() {
        let mut rng = StdRng::seed_from_u64(13);
        let t = Tensor::randn(&[2, 50], &mut rng);
        let q = Q8Tensor::quantize(&t);
        let back =
            Q8Tensor::from_parts(q.shape(), q.scales().to_vec(), q.quants().to_vec()).unwrap();
        assert_eq!(back, q);
        assert!(Q8Tensor::from_parts(&[2, 50], vec![0.0; 3], q.quants().to_vec()).is_err());
    }

    #[test]
    fn q8_matmul_matches_dequantized_dense_matmul() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = Tensor::randn(&[6, 70], &mut rng);
        let b = Tensor::randn(&[70, 9], &mut rng);
        let q = Q8Tensor::quantize(&a);
        let via_q8 = q.matmul(&b);
        let via_dense = q.dequantize().matmul(&b);
        // Same multiplications, but the dense path may sum in a different
        // sequence of rounding contexts; allow a tiny tolerance.
        for (x, y) in via_q8.as_slice().iter().zip(via_dense.as_slice()) {
            assert!((x - y).abs() <= 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn q8_matmul_parallel_is_bitwise_serial() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = Tensor::randn(&[40, 65], &mut rng);
        let b = Tensor::randn(&[65, 48], &mut rng);
        let q = Q8Tensor::quantize(&a);
        let oracle: Vec<u32> = q.matmul_serial(&b).as_slice().iter().map(|v| v.to_bits()).collect();
        for threads in [1, 2, 3, 8] {
            let got = crate::parallel::with_threads(threads, || q.matmul(&b));
            let bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, oracle, "diverged at {threads} threads");
        }
    }

    #[test]
    fn rank1_and_scalar_shapes_quantize() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        let q = Q8Tensor::quantize(&t);
        assert_eq!(q.dequantize().shape(), &[3]);
        let s = Tensor::from_vec(vec![0.5], &[1]);
        assert_eq!(Q8Tensor::quantize(&s).dequantize().shape(), &[1]);
    }
}
