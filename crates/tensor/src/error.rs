use std::error::Error;
use std::fmt;

/// Error type for fallible tensor operations.
///
/// Most tensor methods panic on shape mismatch (the convention of numeric
/// libraries, documented per-method under `# Panics`); the `try_` variants
/// and the linear-algebra routines that can fail numerically return this
/// type instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by a shape does not match the data length.
    ShapeDataMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes cannot be broadcast together.
    BroadcastMismatch {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// An operation required a different rank or dimension.
    DimensionMismatch {
        /// Human-readable description of the violated expectation.
        detail: String,
    },
    /// A numerical routine failed to converge or met a singular input.
    Numerical {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => {
                write!(f, "shape implies {expected} elements but {actual} were provided")
            }
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "shapes {lhs:?} and {rhs:?} cannot be broadcast together")
            }
            TensorError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            TensorError::Numerical { detail } => write!(f, "numerical failure: {detail}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::ShapeDataMismatch { expected: 4, actual: 3 };
        let msg = err.to_string();
        assert!(msg.contains('4') && msg.contains('3'));
        assert!(msg.chars().next().is_some_and(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
