//! Dense neural-network kernels: matmul, convolution, pooling, softmax.
//!
//! Convolutions use the im2col strategy: patches are gathered into a
//! matrix and the convolution reduces to one matmul, which keeps the inner
//! loop cache-friendly without unsafe code.
//!
//! Every kernel executes through the deterministic sharded layer in
//! [`crate::par_kernels`], fanning out over the thread count resolved by
//! [`crate::parallel::active_threads`]. Sharding assigns each output
//! region to exactly one thread running the identical serial inner loop,
//! so results are bit-identical at every thread count; the
//! `*_serial` methods are the independent single-threaded references the
//! equivalence suite compares against.

use crate::par_kernels::{self, ConvGeom};
use crate::shape::{bmm_shape, conv2d_shape, conv_transpose2d_shape, matmul_shape, pool2d_shape};
use crate::tensor::Tensor;
use crate::TensorError;

impl Tensor {
    /// Matrix product of two rank-2 tensors, sharded over output rows
    /// (bit-identical to [`Tensor::matmul_serial`] at any thread count).
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[k, n]` (see
    /// [`Tensor::try_matmul`] for the fallible variant).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.try_matmul(other).unwrap_or_else(|e| panic!("matmul: {e}"))
    }

    /// Fallible variant of [`Tensor::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] unless `self` is
    /// `[m, k]` and `other` is `[k, n]`.
    pub fn try_matmul(&self, other: &Tensor) -> crate::Result<Tensor> {
        let out_shape = matmul_shape(self.shape(), other.shape())?;
        let (m, n) = (out_shape[0], out_shape[1]);
        let k = self.shape()[1];
        let out = par_kernels::matmul(self.as_slice(), other.as_slice(), m, k, n);
        Ok(Tensor::from_vec(out, &[m, n]))
    }

    /// Single-threaded reference matmul: the exact accumulation order
    /// ([`Tensor::matmul`]'s "ikj" loop) run without the worker pool.
    ///
    /// Exists for the parallel-equivalence test suite and benchmarks
    /// only. Production call sites must go through [`Tensor::matmul`];
    /// `aero-analysis` flags `matmul_serial` uses outside this crate's
    /// tests (diagnostic `AD0110`).
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[k, n]`.
    pub fn matmul_serial(&self, other: &Tensor) -> Tensor {
        let out_shape = matmul_shape(self.shape(), other.shape())
            .unwrap_or_else(|e| panic!("matmul_serial: {e}"));
        let (m, n) = (out_shape[0], out_shape[1]);
        let k = self.shape()[1];
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        // ikj loop order: streams through b rows, accumulates into out rows.
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for p in 0..k {
                let av = a[i * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched matrix product of two rank-3 tensors `[b, m, k] x [b, k, n]`,
    /// sharded over all `b * m` output rows.
    ///
    /// # Panics
    ///
    /// Panics on rank or batch/inner dimension mismatch (see
    /// [`Tensor::try_bmm`] for the fallible variant).
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        self.try_bmm(other).unwrap_or_else(|e| panic!("bmm: {e}"))
    }

    /// Fallible variant of [`Tensor::bmm`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] on rank or batch/inner
    /// dimension mismatch.
    pub fn try_bmm(&self, other: &Tensor) -> crate::Result<Tensor> {
        let out_shape = bmm_shape(self.shape(), other.shape())?;
        let (b, m, n) = (out_shape[0], out_shape[1], out_shape[2]);
        let k = self.shape()[2];
        let out = par_kernels::bmm(self.as_slice(), other.as_slice(), b, m, k, n);
        Ok(Tensor::from_vec(out, &[b, m, n]))
    }

    /// Gathers sliding `kh`×`kw` patches of an `[n, c, h, w]` tensor into a
    /// `[n, c*kh*kw, oh*ow]` matrix (the "im2col" layout), sharded over
    /// `(batch, channel)` blocks.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-4 and the padded input fits at
    /// least one window (see [`Tensor::try_im2col`] for the fallible
    /// variant).
    pub fn im2col(&self, kh: usize, kw: usize, stride: usize, pad: usize) -> Tensor {
        self.try_im2col(kh, kw, stride, pad).unwrap_or_else(|e| panic!("im2col: {e}"))
    }

    /// Fallible variant of [`Tensor::im2col`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] unless the tensor is
    /// rank-4 and the padded input fits at least one window.
    pub fn try_im2col(
        &self,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> crate::Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::DimensionMismatch {
                detail: format!("im2col requires [n, c, h, w], got {:?}", self.shape()),
            });
        }
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let oh = crate::shape::conv_out_dim(h, kh, stride, pad)?;
        let ow = crate::shape::conv_out_dim(w, kw, stride, pad)?;
        let g = ConvGeom { n, c, h, w, kh, kw, stride, pad, oh, ow };
        let out = par_kernels::im2col(self.as_slice(), g);
        Ok(Tensor::from_vec(out, &[n, c * kh * kw, oh * ow]))
    }

    /// Scatter-adds an im2col matrix back to image layout (adjoint of
    /// [`Tensor::im2col`]), sharded over `(batch, channel)` output planes
    /// with the serial per-element accumulation order.
    ///
    /// # Panics
    ///
    /// Panics if the column layout is inconsistent with the target shape
    /// (see [`Tensor::try_col2im`] for the fallible variant).
    pub fn col2im(
        &self,
        out_shape: &[usize],
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        self.try_col2im(out_shape, kh, kw, stride, pad).unwrap_or_else(|e| panic!("col2im: {e}"))
    }

    /// Fallible variant of [`Tensor::col2im`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] if the column layout is
    /// inconsistent with the target shape.
    pub fn try_col2im(
        &self,
        out_shape: &[usize],
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> crate::Result<Tensor> {
        let dim_err = |detail: String| TensorError::DimensionMismatch { detail };
        if self.rank() != 3 {
            return Err(dim_err(format!(
                "col2im requires [n, c*kh*kw, oh*ow], got {:?}",
                self.shape()
            )));
        }
        if out_shape.len() != 4 {
            return Err(dim_err(format!("col2im target must be [n, c, h, w], got {out_shape:?}")));
        }
        let (n, c, h, w) = (out_shape[0], out_shape[1], out_shape[2], out_shape[3]);
        let oh = crate::shape::conv_out_dim(h, kh, stride, pad)?;
        let ow = crate::shape::conv_out_dim(w, kw, stride, pad)?;
        if self.shape()[0] != n {
            return Err(dim_err(format!(
                "col2im batch mismatch: columns have {} but target wants {n}",
                self.shape()[0]
            )));
        }
        if self.shape()[1] != c * kh * kw {
            return Err(dim_err(format!(
                "col2im channel-patch mismatch: columns have {} rows but c*kh*kw is {}",
                self.shape()[1],
                c * kh * kw
            )));
        }
        if self.shape()[2] != oh * ow {
            return Err(dim_err(format!(
                "col2im spatial mismatch: columns have {} positions but oh*ow is {}",
                self.shape()[2],
                oh * ow
            )));
        }
        let g = ConvGeom { n, c, h, w, kh, kw, stride, pad, oh, ow };
        let out = par_kernels::col2im(self.as_slice(), g);
        Ok(Tensor::from_vec(out, out_shape))
    }

    /// 2-D convolution of `[n, cin, h, w]` with weights `[cout, cin, kh, kw]`,
    /// executed by the ambient compute backend ([`crate::backend`]): an
    /// im2col gather plus a sharded batched matmul on the reference
    /// path, a direct tiled kernel for stride-1 1×1/3×3 on the blocked
    /// path — bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatches, including a bias whose
    /// length differs from `cout` (see [`Tensor::try_conv2d`] for the
    /// fallible variant).
    pub fn conv2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        self.try_conv2d(weight, bias, stride, pad).unwrap_or_else(|e| panic!("conv2d: {e}"))
    }

    /// Fallible variant of [`Tensor::conv2d`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] on rank/channel
    /// mismatches — including a `bias` whose element count differs from
    /// `out_channels`, which the panicking path used to let through in
    /// release builds (only a debug assert guarded it).
    pub fn try_conv2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> crate::Result<Tensor> {
        let out_shape = conv2d_shape(self.shape(), weight.shape(), stride, pad)?;
        let (n, cin) = (self.shape()[0], self.shape()[1]);
        let (cout, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
        let (oh, ow) = (out_shape[2], out_shape[3]);
        if let Some(bias) = bias {
            if bias.numel() != cout {
                return Err(TensorError::DimensionMismatch {
                    detail: format!(
                        "conv2d bias has {} elements but out_channels is {cout}",
                        bias.numel()
                    ),
                });
            }
        }
        let g = ConvGeom {
            n,
            c: cin,
            h: self.shape()[2],
            w: self.shape()[3],
            kh,
            kw,
            stride,
            pad,
            oh,
            ow,
        };
        let out_data = par_kernels::conv2d(self.as_slice(), weight.as_slice(), g, cout);
        let mut out = Tensor::from_vec(out_data, &out_shape);
        if let Some(bias) = bias {
            par_kernels::add_channel_bias(out.as_mut_slice(), bias.as_slice(), oh * ow);
        }
        Ok(out)
    }

    /// Single-threaded reference convolution: a fully serial im2col
    /// gather followed by per-batch [`Tensor::matmul_serial`] products
    /// in the same accumulation order [`Tensor::conv2d`] uses.
    ///
    /// Exists for the parallel-equivalence test suite and benchmarks
    /// only. Production call sites must go through [`Tensor::conv2d`];
    /// `aero-analysis` flags `conv2d_serial` uses outside this crate's
    /// tests (diagnostic `AD0110`).
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatches.
    pub fn conv2d_serial(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let out_shape = conv2d_shape(self.shape(), weight.shape(), stride, pad)
            .unwrap_or_else(|e| panic!("conv2d_serial: {e}"));
        let (n, cin) = (self.shape()[0], self.shape()[1]);
        let (cout, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
        let (oh, ow) = (out_shape[2], out_shape[3]);
        if let Some(bias) = bias {
            assert_eq!(bias.numel(), cout, "conv2d_serial bias must have cout elements");
        }
        let cols = self.im2col_serial(kh, kw, stride, pad);
        let wmat = weight.reshape(&[cout, cin * kh * kw]);
        let mut out = Tensor::zeros(&out_shape);
        for b in 0..n {
            let col_b = cols.narrow(0, b, 1).reshape(&[cin * kh * kw, oh * ow]);
            let res = wmat.matmul_serial(&col_b);
            out.as_mut_slice()[b * cout * oh * ow..(b + 1) * cout * oh * ow]
                .copy_from_slice(res.as_slice());
        }
        if let Some(bias) = bias {
            let bslice = bias.as_slice().to_vec();
            let plane = oh * ow;
            let data = out.as_mut_slice();
            for b in 0..n {
                for (co, &bv) in bslice.iter().enumerate() {
                    let base = (b * cout + co) * plane;
                    for v in &mut data[base..base + plane] {
                        *v += bv;
                    }
                }
            }
        }
        out
    }

    /// Serial im2col gather backing [`Tensor::conv2d_serial`].
    fn im2col_serial(&self, kh: usize, kw: usize, stride: usize, pad: usize) -> Tensor {
        assert_eq!(self.rank(), 4, "im2col requires [n, c, h, w]");
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let oh = crate::shape::conv_out_dim(h, kh, stride, pad)
            .unwrap_or_else(|e| panic!("im2col: {e}"));
        let ow = crate::shape::conv_out_dim(w, kw, stride, pad)
            .unwrap_or_else(|e| panic!("im2col: {e}"));
        let src = self.as_slice();
        let mut out = vec![0.0f32; n * c * kh * kw * oh * ow];
        let col_stride = oh * ow;
        for b in 0..n {
            for ch in 0..c {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let row =
                            ((ch * kh + ky) * kw + kx) * col_stride + b * c * kh * kw * col_stride;
                        for oy in 0..oh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for ox in 0..ow {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                out[row + oy * ow + ox] =
                                    src[((b * c + ch) * h + iy as usize) * w + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c * kh * kw, oh * ow])
    }

    /// Transposed 2-D convolution (fractionally strided) of `[n, cin, h, w]`
    /// with weights `[cin, cout, kh, kw]`.
    ///
    /// Output spatial size is `(h - 1) * stride - 2*pad + kh`.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatches (see
    /// [`Tensor::try_conv_transpose2d`] for the fallible variant).
    pub fn conv_transpose2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        self.try_conv_transpose2d(weight, bias, stride, pad)
            .unwrap_or_else(|e| panic!("conv_transpose2d: {e}"))
    }

    /// Fallible variant of [`Tensor::conv_transpose2d`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] on rank/channel
    /// mismatches, including a `bias` whose element count differs from
    /// the output channel count.
    pub fn try_conv_transpose2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> crate::Result<Tensor> {
        let out_shape = conv_transpose2d_shape(self.shape(), weight.shape(), stride, pad)?;
        let (n, cin, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let (cout, kh, kw) = (weight.shape()[1], weight.shape()[2], weight.shape()[3]);
        let (oh, ow) = (out_shape[2], out_shape[3]);
        if let Some(bias) = bias {
            if bias.numel() != cout {
                return Err(TensorError::DimensionMismatch {
                    detail: format!(
                        "conv_transpose2d bias has {} elements but out_channels is {cout}",
                        bias.numel()
                    ),
                });
            }
        }
        // cols[b] = W^T @ x[b]  with W viewed as [cin, cout*kh*kw]
        let wmat = weight.reshape(&[cin, cout * kh * kw]).transpose(); // [cout*kh*kw, cin]
        let cols = par_kernels::batched_matmul_shared_lhs(
            wmat.as_slice(),
            self.as_slice(),
            n,
            cout * kh * kw,
            cin,
            h * w,
        );
        // The col2im grid dims are the *input* spatial dims.
        let g = ConvGeom { n, c: cout, h: oh, w: ow, kh, kw, stride, pad, oh: h, ow: w };
        let out_data = par_kernels::col2im(&cols, g);
        let mut out = Tensor::from_vec(out_data, &out_shape);
        if let Some(bias) = bias {
            par_kernels::add_channel_bias(out.as_mut_slice(), bias.as_slice(), oh * ow);
        }
        Ok(out)
    }

    /// 2-D average pooling with square window `k` and stride `k`,
    /// sharded over `(batch, channel)` planes.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-4 and `h`, `w` divide by `k`
    /// (see [`Tensor::try_avg_pool2d`] for the fallible variant).
    pub fn avg_pool2d(&self, k: usize) -> Tensor {
        self.try_avg_pool2d(k).unwrap_or_else(|e| panic!("avg_pool2d: {e}"))
    }

    /// Fallible variant of [`Tensor::avg_pool2d`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] unless the tensor is
    /// rank-4 and `h`, `w` divide by `k`.
    pub fn try_avg_pool2d(&self, k: usize) -> crate::Result<Tensor> {
        let out_shape = pool2d_shape(self.shape(), k)?;
        let (h, w) = (self.shape()[2], self.shape()[3]);
        let (oh, ow) = (out_shape[2], out_shape[3]);
        let src = self.as_slice();
        let mut out = vec![0.0f32; out_shape.iter().product()];
        let inv = 1.0 / (k * k) as f32;
        par_kernels::run_units(&mut out, oh * ow, k * k, |bc, out_plane| {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += src[(bc * h + oy * k + ky) * w + ox * k + kx];
                        }
                    }
                    out_plane[oy * ow + ox] = acc * inv;
                }
            }
        });
        Ok(Tensor::from_vec(out, &out_shape))
    }

    /// 2-D max pooling with square window `k` and stride `k`, sharded
    /// over `(batch, channel)` planes.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-4 and `h`, `w` divide by `k`
    /// (see [`Tensor::try_max_pool2d`] for the fallible variant).
    pub fn max_pool2d(&self, k: usize) -> Tensor {
        self.try_max_pool2d(k).unwrap_or_else(|e| panic!("max_pool2d: {e}"))
    }

    /// Fallible variant of [`Tensor::max_pool2d`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] unless the tensor is
    /// rank-4 and `h`, `w` divide by `k`.
    pub fn try_max_pool2d(&self, k: usize) -> crate::Result<Tensor> {
        let out_shape = pool2d_shape(self.shape(), k)?;
        let (h, w) = (self.shape()[2], self.shape()[3]);
        let (oh, ow) = (out_shape[2], out_shape[3]);
        let src = self.as_slice();
        let mut out = vec![f32::NEG_INFINITY; out_shape.iter().product()];
        par_kernels::run_units(&mut out, oh * ow, k * k, |bc, out_plane| {
            for oy in 0..oh {
                for ox in 0..ow {
                    let dst = oy * ow + ox;
                    for ky in 0..k {
                        for kx in 0..k {
                            let v = src[(bc * h + oy * k + ky) * w + ox * k + kx];
                            if v > out_plane[dst] {
                                out_plane[dst] = v;
                            }
                        }
                    }
                }
            }
        });
        Ok(Tensor::from_vec(out, &out_shape))
    }

    /// Nearest-neighbour 2× upsampling of an `[n, c, h, w]` tensor,
    /// sharded over `(batch, channel)` planes.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-4 (see
    /// [`Tensor::try_upsample_nearest2x`] for the fallible variant).
    pub fn upsample_nearest2x(&self) -> Tensor {
        self.try_upsample_nearest2x().unwrap_or_else(|e| panic!("upsample_nearest2x: {e}"))
    }

    /// Fallible variant of [`Tensor::upsample_nearest2x`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] unless the tensor is
    /// rank-4.
    pub fn try_upsample_nearest2x(&self) -> crate::Result<Tensor> {
        let out_shape = crate::shape::upsample2x_shape(self.shape())?;
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let src = self.as_slice();
        let mut out = vec![0.0f32; n * c * 4 * h * w];
        let (oh, ow) = (out_shape[2], out_shape[3]);
        par_kernels::run_units(&mut out, oh * ow, 1, |bc, out_plane| {
            for y in 0..oh {
                for x in 0..ow {
                    out_plane[y * ow + x] = src[(bc * h + y / 2) * w + x / 2];
                }
            }
        });
        Ok(Tensor::from_vec(out, &out_shape))
    }

    /// Numerically stable softmax along the last axis, sharded over
    /// rows.
    ///
    /// # Panics
    ///
    /// Panics on a rank-0 tensor (see [`Tensor::try_softmax_last_axis`]
    /// for the fallible variant).
    pub fn softmax_last_axis(&self) -> Tensor {
        self.try_softmax_last_axis().unwrap_or_else(|e| panic!("softmax_last_axis: {e}"))
    }

    /// Fallible variant of [`Tensor::softmax_last_axis`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] for a rank-0 tensor.
    pub fn try_softmax_last_axis(&self) -> crate::Result<Tensor> {
        let Some(&last) = self.shape().last() else {
            return Err(TensorError::DimensionMismatch {
                detail: "softmax requires rank >= 1".to_string(),
            });
        };
        let mut out = self.clone();
        par_kernels::softmax(out.as_mut_slice(), last);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_serial_agrees_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn(&[7, 5], &mut rng);
        let b = Tensor::randn(&[5, 9], &mut rng);
        let par = a.matmul(&b);
        let ser = a.matmul_serial(&b);
        assert_eq!(par.shape(), ser.shape());
        for (x, y) in par.as_slice().iter().zip(ser.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn bmm_batches_independent() {
        let a = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 2, 2]);
        let b = Tensor::stack(&[&Tensor::eye(2), &Tensor::eye(2).mul_scalar(2.0)]);
        let c = a.bmm(&b);
        assert_eq!(c.narrow(0, 0, 1).reshape(&[2, 2]), a.narrow(0, 0, 1).reshape(&[2, 2]));
        assert_eq!(
            c.narrow(0, 1, 1).reshape(&[2, 2]).as_slice(),
            a.narrow(0, 1, 1).reshape(&[2, 2]).mul_scalar(2.0).as_slice()
        );
    }

    #[test]
    fn conv2d_identity_kernel() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let w = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let y = x.conv2d(&w, None, 1, 0);
        assert_eq!(y, x);
    }

    #[test]
    fn conv2d_box_filter_known() {
        // 3x3 all-ones kernel over a 3x3 all-ones image with pad 1:
        // the centre sees 9 ones, an edge sees 6, a corner sees 4.
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = x.conv2d(&w, None, 1, 1);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.get(&[0, 0, 1, 1]), 9.0);
        assert_eq!(y.get(&[0, 0, 0, 1]), 6.0);
        assert_eq!(y.get(&[0, 0, 0, 0]), 4.0);
    }

    #[test]
    fn conv2d_stride_and_bias() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[2, 1, 2, 2]);
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let y = x.conv2d(&w, Some(&b), 2, 0);
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        assert_eq!(y.get(&[0, 0, 0, 0]), 4.5);
        assert_eq!(y.get(&[0, 1, 0, 0]), 3.5);
    }

    #[test]
    fn conv2d_rejects_bias_length_mismatch_typed() {
        // Regression: the release build used to accept a wrong-length
        // bias silently (only a debug assert guarded it).
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[2, 1, 2, 2]);
        let bad_bias = Tensor::from_vec(vec![0.5, -0.5, 1.0], &[3]);
        match x.try_conv2d(&w, Some(&bad_bias), 2, 0) {
            Err(TensorError::DimensionMismatch { detail }) => {
                assert!(detail.contains('3') && detail.contains('2'), "detail: {detail}");
            }
            other => panic!("expected a typed bias mismatch, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "conv2d")]
    fn conv2d_panicking_path_rejects_bias_mismatch() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[2, 1, 2, 2]);
        let bad_bias = Tensor::from_vec(vec![0.5], &[1]);
        let _ = x.conv2d(&w, Some(&bad_bias), 2, 0);
    }

    #[test]
    fn conv2d_serial_agrees_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let b = Tensor::randn(&[4], &mut rng);
        let par = x.conv2d(&w, Some(&b), 1, 1);
        let ser = x.conv2d_serial(&w, Some(&b), 1, 1);
        assert_eq!(par.shape(), ser.shape());
        for (p, s) in par.as_slice().iter().zip(ser.as_slice()) {
            assert_eq!(p.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn conv_transpose_inverts_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        let w = Tensor::randn(&[3, 5, 2, 2], &mut rng);
        let y = x.conv_transpose2d(&w, None, 2, 0);
        assert_eq!(y.shape(), &[2, 5, 8, 8]);
    }

    #[test]
    fn conv_transpose_adjoint_of_conv() {
        // conv_transpose2d is defined as the adjoint of conv2d, so
        // <conv(x; W), y> == <x, conv_transpose(y; W)> with the same W
        // (conv reads it as [cout, cin, kh, kw]; the adjoint reads the
        // identical buffer as [cin_t = cout, cout_t = cin, kh, kw]).
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[1, 2, 6, 6], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let y = Tensor::randn(&[1, 3, 6, 6], &mut rng);
        let conv_x = x.conv2d(&w, None, 1, 1);
        let lhs: f32 = conv_x.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let back = y.conv_transpose2d(&w, None, 1, 1);
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn pooling_known_values() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let a = x.avg_pool2d(2);
        assert_eq!(a.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
        let m = x.max_pool2d(2);
        assert_eq!(m.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn upsample_doubles() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = x.upsample_nearest2x();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert_eq!(y.get(&[0, 0, 0, 1]), 1.0);
        assert_eq!(y.get(&[0, 0, 3, 3]), 4.0);
    }

    #[test]
    fn softmax_rows_normalize() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = x.softmax_last_axis();
        for row in s.as_slice().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!((s.get(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let s = x.softmax_last_axis();
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn try_variants_return_typed_shape_errors() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 5]);
        assert!(matches!(a.try_matmul(&b), Err(TensorError::DimensionMismatch { .. })));
        let x3 = Tensor::ones(&[2, 2, 2]);
        assert!(x3.try_bmm(&Tensor::ones(&[3, 2, 2])).is_err());
        assert!(x3.try_im2col(2, 2, 1, 0).is_err());
        assert!(x3.try_col2im(&[1, 1, 3, 3], 2, 2, 1, 0).is_err());
        let x4 = Tensor::ones(&[1, 1, 4, 4]);
        assert!(x4.try_avg_pool2d(3).is_err());
        assert!(x4.try_max_pool2d(0).is_err());
        assert!(x3.try_upsample_nearest2x().is_err());
        assert!(Tensor::from_vec(vec![1.0], &[]).try_softmax_last_axis().is_err());
        let bad_bias = Tensor::ones(&[3]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        assert!(x4.try_conv_transpose2d(&w, Some(&bad_bias), 1, 0).is_err());
    }

    #[test]
    fn try_variants_agree_bitwise_with_panicking_forms() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Tensor::randn(&[4, 3], &mut rng);
        let b = Tensor::randn(&[3, 5], &mut rng);
        assert_eq!(a.try_matmul(&b).unwrap(), a.matmul(&b));
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        assert_eq!(x.try_avg_pool2d(2).unwrap(), x.avg_pool2d(2));
        assert_eq!(x.try_max_pool2d(2).unwrap(), x.max_pool2d(2));
        assert_eq!(x.try_upsample_nearest2x().unwrap(), x.upsample_nearest2x());
        assert_eq!(x.try_softmax_last_axis().unwrap(), x.softmax_last_axis());
        assert_eq!(x.try_im2col(2, 2, 1, 0).unwrap(), x.im2col(2, 2, 1, 0));
    }

    #[test]
    fn im2col_col2im_roundtrip_counts() {
        // col2im(im2col(x)) multiplies each pixel by how many windows cover it.
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let cols = x.im2col(2, 2, 1, 0);
        let back = cols.col2im(&[1, 1, 3, 3], 2, 2, 1, 0);
        // centre pixel covered by 4 windows, corners by 1, edges by 2
        assert_eq!(back.get(&[0, 0, 1, 1]), 4.0);
        assert_eq!(back.get(&[0, 0, 0, 0]), 1.0);
        assert_eq!(back.get(&[0, 0, 0, 1]), 2.0);
    }
}
