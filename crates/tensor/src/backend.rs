//! Pluggable compute backends for the dense kernel hot path.
//!
//! [`crate::par_kernels`] owns *sharding* (how output rows are split over
//! threads); this module owns *how each shard is computed*. A
//! [`ComputeBackend`] receives a contiguous slab of output rows plus the
//! operands and fills it in. Two implementations ship:
//!
//! * **`Reference`** — the original straight-line row kernels, quarantined
//!   as the oracle the equivalence suite compares against.
//! * **`Blocked`** — register-tiled, cache-blocked microkernels: a packed
//!   [`MR`]×[`NR`] matmul tile with [`KC`]-deep k-panels, a direct
//!   im2col-free conv2d for stride-1 1×1/3×3 kernels, and a blocked
//!   q8×f32 matmul riding the same tiles.
//!
//! # Determinism argument
//!
//! Every kernel in this crate promises the *bit-identical* result of the
//! serial "ikj" reference loop: each output element `out[i][j]` is the
//! sum `Σ_p a[i][p] * b[p][j]` accumulated with `p` strictly ascending,
//! one `mul` + one `add` per term. The blocked backend preserves exactly
//! that per-element sequence:
//!
//! * Tiling over `i` and `j` only regroups *independent* output elements;
//!   it never touches the order of terms within one element.
//! * Within a tile, the microkernel loops `p` ascending and keeps one
//!   scalar accumulator lane per element, so each lane performs the same
//!   `acc += a*b` chain the reference does. Rust never contracts
//!   `mul`+`add` into a fused FMA, so autovectorization cannot change a
//!   single rounding.
//! * Blocking over `k` processes [`KC`]-deep panels in ascending order and
//!   spills/reloads the `f32` accumulator through the output buffer
//!   between panels — an exact value round-trip.
//! * The direct convolution visits `(cin, ky, kx)` in exactly the im2col
//!   row order and contributes an explicit `w * 0.0` term for every
//!   padded tap, so even non-finite weights propagate identically to the
//!   im2col-then-matmul reference.
//!
//! # Selection
//!
//! The active backend resolves like the thread policy in
//! [`crate::parallel`]: thread-local override ([`with_backend`], or
//! [`crate::parallel::adopt_thread_policy`] on snapshot hydration), then
//! the process-global default ([`set_global_backend`], the CLI's
//! `--backend` flag), then the `AERO_BACKEND` environment variable, and
//! finally [`BackendKind::Blocked`]. Because both backends are bitwise
//! equal, the choice is a pure performance knob and — deliberately — is
//! **never persisted** in checkpoints or model artifacts.

use crate::par_kernels::{self, ConvGeom};
use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows per matmul register tile (accumulator height).
pub const MR: usize = 4;
/// Columns per matmul register tile (accumulator width; two 16-lane
/// vectors on AVX-512, four 8-lane vectors on AVX2 — wide enough that
/// the `MR × NR` accumulator block keeps eight independent add chains
/// in flight).
pub const NR: usize = 32;
/// Depth of one k-panel: the `NR`-wide B tile for one panel is
/// `KC * NR` floats (32 KiB) and stays L1/L2-resident while every row
/// block streams past it.
pub const KC: usize = 256;
/// Output-channel block of the direct convolution microkernel.
const CO_B: usize = 4;
/// Output-column tile width of the direct convolution microkernel; with
/// [`CO_B`] rows the accumulator block matches the matmul microkernel's
/// register budget.
const OW_T: usize = 32;

/// Which compute backend the dense kernels run on. Purely a performance
/// knob: both backends are bit-identical on every kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The original straight-line row kernels — the equivalence oracle.
    Reference,
    /// Register-tiled, cache-blocked microkernels (the default).
    Blocked,
}

impl BackendKind {
    /// Every selectable backend, in oracle-first order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Reference, BackendKind::Blocked];

    /// Stable lower-case name (`"reference"` / `"blocked"`), accepted
    /// back by [`FromStr`](std::str::FromStr) and the CLI `--backend`
    /// flag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Reference => "reference",
            BackendKind::Blocked => "blocked",
        }
    }

    fn encode(self) -> u8 {
        match self {
            BackendKind::Reference => 1,
            BackendKind::Blocked => 2,
        }
    }

    fn decode(v: u8) -> Option<BackendKind> {
        match v {
            1 => Some(BackendKind::Reference),
            2 => Some(BackendKind::Blocked),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" | "ref" => Ok(BackendKind::Reference),
            "blocked" => Ok(BackendKind::Blocked),
            other => Err(format!("unknown backend '{other}' (expected 'reference' or 'blocked')")),
        }
    }
}

/// Per-shard compute strategy for the dense kernels.
///
/// The sharding layer hands every implementation the same contiguous
/// output slabs, so a backend only decides *how* a slab is filled — and
/// every implementation must produce the bit-identical result of the
/// serial ikj reference (see the module docs for why the blocked tiles
/// satisfy this).
///
/// Callers never hold a backend directly: dispatch goes through
/// [`crate::par_kernels`], which resolves the ambient choice per kernel
/// call. `aero-analysis` flags concrete backend references outside this
/// crate (diagnostic `AD0112`).
pub trait ComputeBackend: Sync {
    /// Which [`BackendKind`] this implementation is.
    fn kind(&self) -> BackendKind;

    /// Fills `out` (a slab of `out.len() / n` rows) with
    /// `a[rows, k] @ b[k, n]`, accumulating each element over ascending
    /// `p`. `a` holds exactly the slab's rows; `out` arrives zeroed.
    fn matmul_slab(&self, a: &[f32], b: &[f32], k: usize, n: usize, out: &mut [f32]);

    /// Q8 variant of [`ComputeBackend::matmul_slab`]: the left rows are
    /// q8 blocks (`bpr` blocks per row, see [`crate::quant`]),
    /// dequantized on the fly as `scale * f32::from(q)` inside the same
    /// ascending-`p` order.
    #[allow(clippy::too_many_arguments)]
    fn q8_matmul_slab(
        &self,
        scales: &[f32],
        quants: &[i8],
        bpr: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    );

    /// Numerically stable softmax over each `n`-length row of `rows`,
    /// fused into one sweep per pass (max fold, exp+sum, normalize) with
    /// the reference's exact reduction order.
    fn softmax_slab(&self, rows: &mut [f32], n: usize);

    /// Full (bias-free) convolution `[n, cin, h, w] ⊛ [cout, cin, kh, kw]
    /// -> [n, cout, oh, ow]`, sharding internally via
    /// [`crate::par_kernels`]. The default is the im2col-then-matmul
    /// strategy; backends may override with a direct path as long as the
    /// per-element term order matches im2col exactly.
    fn conv2d(&self, src: &[f32], weight: &[f32], g: ConvGeom, cout: usize) -> Vec<f32> {
        conv2d_im2col(src, weight, g, cout)
    }
}

/// The shared im2col-then-matmul convolution strategy: gather patches,
/// then one batched matmul against the reshaped weight. The inner matmul
/// re-dispatches through [`crate::par_kernels`], which resolves back to
/// the ambient backend (always the caller, since backends are only
/// reached through dispatch).
fn conv2d_im2col(src: &[f32], weight: &[f32], g: ConvGeom, cout: usize) -> Vec<f32> {
    let cols = par_kernels::im2col(src, g);
    par_kernels::batched_matmul_shared_lhs(weight, &cols, g.n, cout, g.c * g.kh * g.kw, g.oh * g.ow)
}

// ---------------------------------------------------------------------------
// Reference backend: the quarantined serial row kernels.
// ---------------------------------------------------------------------------

/// The oracle backend: per-row straight-line loops, one output row at a
/// time, exactly as the pre-backend kernels computed them.
struct ReferenceBackend;

impl ComputeBackend for ReferenceBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Reference
    }

    fn matmul_slab(&self, a: &[f32], b: &[f32], k: usize, n: usize, out: &mut [f32]) {
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            par_kernels::matmul_row_kernel(&a[i * k..(i + 1) * k], b, out_row);
        }
    }

    fn q8_matmul_slab(
        &self,
        scales: &[f32],
        quants: &[i8],
        bpr: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let qb = crate::quant::Q8_BLOCK;
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            crate::quant::q8_row_kernel(
                &scales[i * bpr..(i + 1) * bpr],
                &quants[i * bpr * qb..(i + 1) * bpr * qb],
                k,
                b,
                out_row,
            );
        }
    }

    fn softmax_slab(&self, rows: &mut [f32], n: usize) {
        for row in rows.chunks_mut(n) {
            softmax_row_kernel(row);
        }
    }
}

/// One fused softmax sweep over a row: sequential max fold, exp+sum
/// pass, then an in-place division by the sum. Both backends share this
/// exact kernel — the reduction order (left-to-right `f32::max` fold,
/// left-to-right sum, per-element division rather than a reciprocal
/// multiply) is part of the bitwise contract and must not be reordered.
#[inline]
pub(crate) fn softmax_row_kernel(row: &mut [f32]) {
    let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - mx).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

// ---------------------------------------------------------------------------
// Blocked backend: packed register tiles and a direct convolution.
// ---------------------------------------------------------------------------

/// Register-tiled cache-blocked backend. See the module docs for the
/// tiling scheme and the determinism argument.
struct BlockedBackend;

impl ComputeBackend for BlockedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Blocked
    }

    fn matmul_slab(&self, a: &[f32], b: &[f32], k: usize, n: usize, out: &mut [f32]) {
        blocked_matmul_slab(
            |i, panel, kk, kc| pack_a_panel(a, i, k, kk, kc, panel),
            a,
            b,
            k,
            n,
            out,
        );
    }

    fn q8_matmul_slab(
        &self,
        scales: &[f32],
        quants: &[i8],
        bpr: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let qb = crate::quant::Q8_BLOCK;
        let rows = out.len() / n;
        if n < NR || rows < MR {
            // Tiles cannot fill; the per-row oracle loop is already optimal.
            ReferenceBackend.q8_matmul_slab(scales, quants, bpr, k, b, n, out);
            return;
        }
        // Dequantize the A panel while packing: the packed value is the
        // exact `scale * f32::from(q)` the row kernel would form, so the
        // per-element multiply/add sequence is unchanged.
        let pack = |i: usize, panel: &mut [f32], kk: usize, kc: usize| {
            for r in 0..MR {
                let row = i + r;
                let s = &scales[row * bpr..(row + 1) * bpr];
                let q = &quants[row * bpr * qb..(row + 1) * bpr * qb];
                for p in 0..kc {
                    let col = kk + p;
                    panel[p * MR + r] = s[col / qb] * f32::from(q[col]);
                }
            }
        };
        let row_tail = |row: usize, out_row: &mut [f32]| {
            crate::quant::q8_row_kernel(
                &scales[row * bpr..(row + 1) * bpr],
                &quants[row * bpr * qb..(row + 1) * bpr * qb],
                k,
                b,
                out_row,
            );
        };
        blocked_tiles(pack, row_tail, b, k, n, out);
    }

    fn softmax_slab(&self, rows: &mut [f32], n: usize) {
        for row in rows.chunks_mut(n) {
            softmax_row_kernel(row);
        }
    }

    fn conv2d(&self, src: &[f32], weight: &[f32], g: ConvGeom, cout: usize) -> Vec<f32> {
        let direct = g.stride == 1 && g.kh == g.kw && (g.kh == 1 || g.kh == 3);
        if !direct {
            return conv2d_im2col(src, weight, g, cout);
        }
        let plane = g.oh * g.ow;
        let mut out = vec![0.0f32; g.n * cout * plane];
        if cout == 0 {
            return out;
        }
        par_kernels::run_slabs(&mut out, plane, 2 * g.c * g.kh * g.kw, |plane0, slab| {
            // Per-slab staging of the current batch's zero-padded input
            // planes: every tap of the microkernel then reads a
            // contiguous row, and the explicit zeros keep the padded
            // taps' `w * 0.0` terms (see `stage_padded_planes`).
            let mut padded = vec![0.0f32; g.c * (g.h + 2 * g.pad) * (g.w + 2 * g.pad)];
            let mut staged = usize::MAX;
            par_kernels::for_batch_chunks(plane0, slab, plane, cout, |batch, co0, ncos, chunk| {
                if staged != batch {
                    stage_padded_planes(src, g, batch, &mut padded);
                    staged = batch;
                }
                let mut co = 0;
                while co < ncos {
                    let cb = (ncos - co).min(CO_B);
                    direct_conv_block(
                        &padded,
                        weight,
                        g,
                        co0 + co,
                        cb,
                        &mut chunk[co * plane..(co + cb) * plane],
                    );
                    co += cb;
                }
            });
        });
        out
    }
}

/// Dense packer: `panel[p * MR + r] = a[(i + r) * k + kk + p]`.
#[inline]
fn pack_a_panel(a: &[f32], i: usize, k: usize, kk: usize, kc: usize, panel: &mut [f32]) {
    for r in 0..MR {
        let a_row = &a[(i + r) * k + kk..][..kc];
        for (p, &v) in a_row.iter().enumerate() {
            panel[p * MR + r] = v;
        }
    }
}

/// Dense blocked slab: full-width rows fall back to the reference row
/// kernel when tiles cannot fill.
fn blocked_matmul_slab(
    pack: impl Fn(usize, &mut [f32], usize, usize),
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let rows = out.len() / n;
    if n < NR || rows < MR {
        ReferenceBackend.matmul_slab(a, b, k, n, out);
        return;
    }
    let row_tail = |row: usize, out_row: &mut [f32]| {
        par_kernels::matmul_row_kernel(&a[row * k..(row + 1) * k], b, out_row);
    };
    blocked_tiles(pack, row_tail, b, k, n, out);
}

/// The shared tiling driver: walks `KC`-deep k-panels outermost, packing
/// *every* `MR`-row A block for the panel up front, then sweeps `NR`-wide
/// column tiles with the row blocks innermost — so each `KC`×`NR` B tile
/// is loaded once per panel and stays cache-resident while all packed
/// rows stream past it. Tail rows run `row_tail` (the reference row loop)
/// and tail columns run the scalar column loop — both visit `p` in the
/// identical ascending order, so every element of `out` sees the
/// reference accumulation sequence regardless of which path produced it.
fn blocked_tiles(
    pack: impl Fn(usize, &mut [f32], usize, usize),
    row_tail: impl Fn(usize, &mut [f32]),
    b: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let rows = out.len() / n;
    let full_rows = rows - rows % MR;
    let full_cols = n - n % NR;
    let mut apack = vec![0.0f32; full_rows * KC.min(k)];
    let mut bpack = vec![0.0f32; KC.min(k) * NR];
    let mut kk = 0;
    while kk < k {
        let kc = (k - kk).min(KC);
        for ib in 0..full_rows / MR {
            pack(ib * MR, &mut apack[ib * kc * MR..][..kc * MR], kk, kc);
        }
        let b_panel = &b[kk * n..(kk + kc) * n];
        let first = kk == 0;
        let mut j = 0;
        while j < full_cols {
            // Pack the NR-wide B tile contiguous once per panel; every
            // row block then streams it with sequential loads.
            for p in 0..kc {
                bpack[p * NR..][..NR].copy_from_slice(&b_panel[p * n + j..][..NR]);
            }
            let mut i = 0;
            while i < full_rows {
                let panel = &apack[(i / MR) * kc * MR..][..kc * MR];
                micro_tile(panel, &bpack[..kc * NR], n, j, first, &mut out[i * n..]);
                i += MR;
            }
            j += NR;
        }
        if full_cols < n {
            // Column tail: scalar sweep over the leftover columns of
            // every packed row block, p ascending.
            let mut i = 0;
            while i < full_rows {
                let panel = &apack[(i / MR) * kc * MR..][..kc * MR];
                for r in 0..MR {
                    let out_row = &mut out[(i + r) * n..][..n];
                    for p in 0..kc {
                        let av = panel[p * MR + r];
                        let b_row = &b_panel[p * n..][..n];
                        for c in full_cols..n {
                            out_row[c] += av * b_row[c];
                        }
                    }
                }
                i += MR;
            }
        }
        kk += kc;
    }
    for row in full_rows..rows {
        row_tail(row, &mut out[row * n..(row + 1) * n]);
    }
    // k == 0 never enters the panel loop, leaving the zeroed slab — the
    // empty sum, exactly as the reference row kernel computes it.
}

/// The `MR`×`NR` register microkernel for one k-panel. Accumulators live
/// in a fixed-size stack tile (so the compiler keeps them in vector
/// registers) and both operands arrive packed contiguous; panels after
/// the first reload the partial sums from `out` — an exact `f32`
/// round-trip that preserves the accumulation chain.
#[inline]
fn micro_tile(panel: &[f32], bpack: &[f32], n: usize, j: usize, first: bool, out_rows: &mut [f32]) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, lane) in acc.iter_mut().enumerate() {
            lane.copy_from_slice(&out_rows[r * n + j..][..NR]);
        }
    }
    for (b_vec, a_vec) in bpack.chunks_exact(NR).zip(panel.chunks_exact(MR)) {
        let mut b_reg = [0.0f32; NR];
        b_reg.copy_from_slice(b_vec);
        for (r, lane) in acc.iter_mut().enumerate() {
            let av = a_vec[r];
            for (o, &bv) in lane.iter_mut().zip(&b_reg) {
                *o += av * bv;
            }
        }
    }
    for (r, lane) in acc.iter().enumerate() {
        out_rows[r * n + j..][..NR].copy_from_slice(lane);
    }
}

/// Stages one batch's input channels into zero-padded planes
/// (`[c, h + 2*pad, w + 2*pad]`), so every tap of the direct microkernel
/// reads a contiguous row slice with no bounds logic. The explicit zeros
/// are load-bearing for bitwise equality: a padded tap must contribute
/// the same `w * 0.0` term the im2col reference materialises, so
/// non-finite weights poison the border identically.
fn stage_padded_planes(src: &[f32], g: ConvGeom, batch: usize, padded: &mut [f32]) {
    let (ph, pw) = (g.h + 2 * g.pad, g.w + 2 * g.pad);
    padded.fill(0.0);
    for cin in 0..g.c {
        for y in 0..g.h {
            let row = &src[((batch * g.c + cin) * g.h + y) * g.w..][..g.w];
            padded[(cin * ph + y + g.pad) * pw + g.pad..][..g.w].copy_from_slice(row);
        }
    }
}

/// Direct (im2col-free) convolution of one `co0..co0+cb` output-channel
/// block over one staged batch. Packs the block's weights tap-major
/// (one contiguous `CO_B`-vector per tap, mirroring the matmul A panel),
/// then sweeps width-specialised register tiles across each output row —
/// the const tile widths are what let the compiler fully unroll the
/// accumulator lanes. Every tile visits `(cin, ky, kx)` in exactly the
/// im2col row order.
fn direct_conv_block(
    padded: &[f32],
    weight: &[f32],
    g: ConvGeom,
    co0: usize,
    cb: usize,
    out_block: &mut [f32],
) {
    let taps = g.c * g.kh * g.kw;
    let mut wpack = vec![0.0f32; taps * CO_B];
    for r in 0..cb {
        for (t, &w) in weight[(co0 + r) * taps..][..taps].iter().enumerate() {
            wpack[t * CO_B + r] = w;
        }
    }
    for oy in 0..g.oh {
        let mut ox0 = 0;
        while ox0 < g.ow {
            let left = g.ow - ox0;
            if left >= OW_T {
                conv_tile::<OW_T>(padded, &wpack, g, cb, oy, ox0, out_block);
                ox0 += OW_T;
            } else if left >= 16 {
                conv_tile::<16>(padded, &wpack, g, cb, oy, ox0, out_block);
                ox0 += 16;
            } else if left >= 8 {
                conv_tile::<8>(padded, &wpack, g, cb, oy, ox0, out_block);
                ox0 += 8;
            } else if left >= 4 {
                conv_tile::<4>(padded, &wpack, g, cb, oy, ox0, out_block);
                ox0 += 4;
            } else {
                conv_tile::<1>(padded, &wpack, g, cb, oy, ox0, out_block);
                ox0 += 1;
            }
        }
    }
}

/// One `TW`-wide × `cb`-channel register tile of the direct convolution:
/// for each tap, one contiguous `TW`-float load from the padded plane and
/// one packed `CO_B`-float weight load feed the `CO_B × TW` accumulator
/// block. `TW` is a const so the lane loops fully unroll.
#[inline]
fn conv_tile<const TW: usize>(
    padded: &[f32],
    wpack: &[f32],
    g: ConvGeom,
    cb: usize,
    oy: usize,
    ox0: usize,
    out_block: &mut [f32],
) {
    let plane = g.oh * g.ow;
    let (ph, pw) = (g.h + 2 * g.pad, g.w + 2 * g.pad);
    let mut acc = [[0.0f32; TW]; CO_B];
    let mut wv = wpack.chunks_exact(CO_B);
    for cin in 0..g.c {
        for ky in 0..g.kh {
            let row = &padded[(cin * ph + oy + ky) * pw + ox0..];
            for kx in 0..g.kw {
                let xrow = &row[kx..][..TW];
                let w = wv.next().expect("one packed weight vector per tap");
                for (r, lane) in acc.iter_mut().enumerate().take(cb) {
                    let wr = w[r];
                    for (o, &x) in lane.iter_mut().zip(xrow) {
                        *o += wr * x;
                    }
                }
            }
        }
    }
    for (r, lane) in acc.iter().enumerate().take(cb) {
        out_block[r * plane + oy * g.ow + ox0..][..TW].copy_from_slice(lane);
    }
}

// ---------------------------------------------------------------------------
// Ambient selection (mirrors crate::parallel's thread policy).
// ---------------------------------------------------------------------------

static REFERENCE: ReferenceBackend = ReferenceBackend;
static BLOCKED: BlockedBackend = BlockedBackend;

static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(0);

thread_local! {
    static LOCAL_BACKEND: Cell<u8> = const { Cell::new(0) };
}

fn env_default_backend() -> BackendKind {
    static DEFAULT: OnceLock<BackendKind> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("AERO_BACKEND")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(BackendKind::Blocked)
    })
}

/// The backend kernels on the current thread dispatch to.
///
/// Resolution order: thread-local override ([`with_backend`] /
/// [`crate::parallel::adopt_thread_policy`]), then the process-global
/// default ([`set_global_backend`]), then `AERO_BACKEND` (read once),
/// then [`BackendKind::Blocked`].
#[must_use]
pub fn active_backend() -> BackendKind {
    let local = LOCAL_BACKEND.with(Cell::get);
    if let Some(kind) = BackendKind::decode(local) {
        return kind;
    }
    let global = GLOBAL_BACKEND.load(Ordering::Relaxed);
    if let Some(kind) = BackendKind::decode(global) {
        return kind;
    }
    env_default_backend()
}

/// Sets the process-global backend (the CLI's `--backend` flag).
/// Thread-local overrides still win on their threads.
pub fn set_global_backend(kind: BackendKind) {
    GLOBAL_BACKEND.store(kind.encode(), Ordering::Relaxed);
}

/// Installs `kind` as the current thread's backend for the rest of the
/// thread's lifetime (snapshot hydration path; see
/// [`crate::parallel::adopt_thread_policy`]).
pub(crate) fn adopt_backend(kind: BackendKind) {
    LOCAL_BACKEND.with(|c| c.set(kind.encode()));
}

/// Runs `f` with the current thread's backend temporarily set to `kind`,
/// restoring the previous choice on exit — including on panic.
pub fn with_backend<R>(kind: BackendKind, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_BACKEND.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_BACKEND.with(|c| {
        let p = c.get();
        c.set(kind.encode());
        p
    });
    let _restore = Restore(prev);
    f()
}

/// The trait object for the currently active backend. Dispatch-layer
/// internal: kernels resolve this per call, so a scoped [`with_backend`]
/// or an adopted snapshot policy takes effect immediately.
pub(crate) fn active() -> &'static dyn ComputeBackend {
    match active_backend() {
        BackendKind::Reference => &REFERENCE,
        BackendKind::Blocked => &BLOCKED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn ref_matmul(a: &[f32], b: &[f32], rows: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * n];
        ReferenceBackend.matmul_slab(a, b, k, n, &mut out);
        out
    }

    #[test]
    fn kind_round_trips_through_str() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.as_str().parse::<BackendKind>().unwrap(), kind);
        }
        assert_eq!("REF".parse::<BackendKind>().unwrap(), BackendKind::Reference);
        assert!("simd".parse::<BackendKind>().is_err());
    }

    #[test]
    fn with_backend_scopes_and_restores() {
        let outer = active_backend();
        let inner = with_backend(BackendKind::Reference, || {
            assert_eq!(active_backend(), BackendKind::Reference);
            with_backend(BackendKind::Blocked, active_backend)
        });
        assert_eq!(inner, BackendKind::Blocked);
        assert_eq!(active_backend(), outer);
    }

    #[test]
    fn with_backend_restores_after_panic() {
        let outer = active_backend();
        let caught = std::panic::catch_unwind(|| {
            with_backend(BackendKind::Reference, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(active_backend(), outer);
    }

    #[test]
    fn blocked_slab_matches_reference_at_tile_boundaries() {
        // Dims straddling MR/NR/KC: ±1 of each tile edge plus degenerate
        // single row/col and k = 0.
        let dims = [1usize, 3, 4, 5, 31, 32, 33];
        let ks = [0usize, 1, 7, KC - 1, KC, KC + 1];
        for &rows in &dims {
            for &n in &dims {
                for &k in &ks {
                    let a: Vec<f32> =
                        (0..rows * k).map(|v| (v as f32).mul_add(0.37, -3.0).sin()).collect();
                    let b: Vec<f32> =
                        (0..k * n).map(|v| (v as f32).mul_add(0.23, 1.0).cos()).collect();
                    let want = ref_matmul(&a, &b, rows, k, n);
                    let mut got = vec![0.0f32; rows * n];
                    BlockedBackend.matmul_slab(&a, &b, k, n, &mut got);
                    assert_eq!(bits(&got), bits(&want), "rows={rows} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn blocked_softmax_matches_reference() {
        let mut a: Vec<f32> = (0..96).map(|v| ((v * 37) % 17) as f32 - 8.0).collect();
        let mut b = a.clone();
        ReferenceBackend.softmax_slab(&mut a, 12);
        BlockedBackend.softmax_slab(&mut b, 12);
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn direct_conv_handles_nonfinite_weights_at_padding() {
        // An infinite weight must poison padded border outputs in both
        // backends identically: im2col materialises the padding zeros
        // and multiplies them by the weight (`Inf * 0.0 = NaN`), so the
        // direct path has to form the same explicit zero terms instead
        // of skipping out-of-bounds taps. Interior outputs see only
        // `Inf * positive` terms and stay `+Inf` — which is what makes
        // this an actual probe of the padding terms.
        let g = ConvGeom { n: 1, c: 1, h: 5, w: 5, kh: 3, kw: 3, stride: 1, pad: 1, oh: 5, ow: 5 };
        let src: Vec<f32> = (0..25).map(|v| v as f32 * 0.5 + 1.0).collect();
        let mut weight = vec![1.0f32; 9];
        weight[0] = f32::INFINITY;
        // The im2col path's inner matmul re-dispatches through the
        // ambient backend, so pin it to the oracle for the reference run.
        let want =
            with_backend(BackendKind::Reference, || ReferenceBackend.conv2d(&src, &weight, g, 1));
        let got = BlockedBackend.conv2d(&src, &weight, g, 1);
        assert!(want[0].is_nan(), "padded corner must see Inf * 0.0");
        assert!(want[12].is_infinite(), "interior must stay infinite, not NaN");
        assert_eq!(bits(&got), bits(&want));
    }
}
