//! Deterministic sharded CPU kernels for the tensor hot path.
//!
//! Every kernel here is parallelised the same way: the **output** buffer
//! is split into disjoint, contiguous units (matmul rows, im2col blocks,
//! image planes), contiguous ranges of units are handed to scoped std
//! threads, and each range is produced by a [`crate::backend`]
//! implementation whose per-element accumulation order is the *identical*
//! serial reference sequence. No thread ever writes or accumulates into
//! another thread's unit, so the per-element floating-point accumulation
//! order is fixed by construction and the parallel result is
//! **bit-identical** to the serial one at any thread count *and* under
//! either backend — the property `crates/tensor/tests/par_equivalence.rs`
//! proves exhaustively and `DESIGN.md` §10/§15 document.
//!
//! This module owns *sharding and dispatch*; the per-slab compute
//! strategy lives behind the [`crate::backend::ComputeBackend`] trait
//! (the `Reference` oracle row kernels vs. the register-tiled `Blocked`
//! microkernels).
//!
//! The fan-out width comes from the ambient policy in
//! [`crate::parallel`] (`active_threads`), clamped by [`planned_threads`]:
//! a work-size floor, the machine's physical core count, and a per-thread
//! work budget, so small kernels never pay thread-spawn overhead and no
//! kernel oversubscribes the cores it actually has. Because sharding
//! cannot change numerics, the plan is a pure performance heuristic and
//! needs no determinism carve-out.

use crate::parallel::{active_threads, effective_cores};
use std::ops::Range;

/// Records one kernel invocation plus the number of output elements it
/// produced under `tensor.<kernel>.calls` / `tensor.<kernel>.elements`.
/// `aero_obs::counter!` caches the handle per call site, so the cost is
/// two relaxed atomic adds. Observation never feeds back into
/// computation — see the determinism note in `aero_obs`'s crate docs.
macro_rules! record_kernel {
    ($calls:literal, $elements:literal, $n:expr) => {
        aero_obs::counter!($calls).inc();
        aero_obs::counter!($elements).add($n as u64);
    };
}

/// Minimum estimated scalar-op count before a kernel fans out; below
/// this, thread-spawn overhead dominates any speedup. Retuned upward
/// (16 Ki → 256 Ki) after BENCH_kernels.json showed conv2d and the UNet
/// denoise step *losing* to serial under the old gate.
const PAR_WORK_THRESHOLD: usize = 256 * 1024;

/// Once a kernel fans out, each spawned thread should own at least this
/// many estimated scalar ops — otherwise the spawn cost outweighs the
/// shard it amortises over.
const PAR_WORK_PER_THREAD: usize = 128 * 1024;

/// Elementwise ops are far cheaper per element than matmul rows, so they
/// use a higher element-count threshold before fanning out.
const ELEM_PAR_THRESHOLD: usize = 64 * 1024;

/// Splits `units` work units into at most `shards` contiguous,
/// near-even ranges covering `0..units` in order. The first
/// `units % shards` ranges get one extra unit. Returns fewer ranges
/// when there are fewer units than shards; never returns an empty
/// range.
#[must_use]
pub fn shard_ranges(units: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, units.max(1));
    if units == 0 {
        return Vec::new();
    }
    let base = units / shards;
    let extra = units % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// The thread count the dispatcher would fan out over for `work`
/// estimated scalar ops: 1 below [`PAR_WORK_THRESHOLD`], otherwise the
/// ambient [`active_threads`] clamped to the machine's physical cores
/// (oversubscribing a compute-bound kernel never wins) and to one thread
/// per [`PAR_WORK_PER_THREAD`] ops.
///
/// Public as introspection for the dispatcher regression tests and
/// benchmarks; kernels call it internally.
#[must_use]
pub fn planned_threads(work: usize) -> usize {
    if work < PAR_WORK_THRESHOLD {
        return 1;
    }
    let budget = (work / PAR_WORK_PER_THREAD).max(1);
    active_threads().min(effective_cores()).min(budget).max(1)
}

/// Runs `kernel(unit_index, unit_out)` over every `unit_len`-sized chunk
/// of `out`, fanning contiguous unit ranges out over scoped threads when
/// the estimated work (`out.len() * flops_per_elem`) is large enough.
///
/// Each unit is written by exactly one thread with the same inner loop
/// the single-threaded path runs, so scheduling cannot affect a single
/// output bit.
pub(crate) fn run_units<F>(out: &mut [f32], unit_len: usize, flops_per_elem: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() || unit_len == 0 {
        return;
    }
    debug_assert_eq!(out.len() % unit_len, 0, "output must be whole units");
    let units = out.len() / unit_len;
    let threads = planned_threads(out.len().saturating_mul(flops_per_elem.max(1))).min(units);
    if threads <= 1 {
        aero_obs::counter!("tensor.dispatch.serial").inc();
        for (u, unit_out) in out.chunks_mut(unit_len).enumerate() {
            kernel(u, unit_out);
        }
        return;
    }
    aero_obs::counter!("tensor.dispatch.parallel").inc();
    std::thread::scope(|s| {
        let kernel = &kernel;
        let mut rest = out;
        for range in shard_ranges(units, threads) {
            let (chunk, tail) = rest.split_at_mut(range.len() * unit_len);
            rest = tail;
            let start = range.start;
            s.spawn(move || {
                for (off, unit_out) in chunk.chunks_mut(unit_len).enumerate() {
                    kernel(start + off, unit_out);
                }
            });
        }
    });
}

/// Runs `kernel(first_unit, slab)` over contiguous ranges of
/// `unit_len`-sized units of `out` — one call per shard (or a single
/// call covering everything on the serial path), in contrast to
/// [`run_units`]'s per-unit calls. This is the granularity the blocked
/// backend needs: a slab of whole output rows it can tile and pack
/// across.
///
/// Shards are disjoint and contiguous and the per-slab kernels preserve
/// the serial per-element accumulation order, so scheduling cannot
/// affect a single output bit.
pub(crate) fn run_slabs<F>(out: &mut [f32], unit_len: usize, flops_per_elem: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() || unit_len == 0 {
        return;
    }
    debug_assert_eq!(out.len() % unit_len, 0, "output must be whole units");
    let units = out.len() / unit_len;
    let threads = planned_threads(out.len().saturating_mul(flops_per_elem.max(1))).min(units);
    if threads <= 1 {
        aero_obs::counter!("tensor.dispatch.serial").inc();
        kernel(0, out);
        return;
    }
    aero_obs::counter!("tensor.dispatch.parallel").inc();
    std::thread::scope(|s| {
        let kernel = &kernel;
        let mut rest = out;
        for range in shard_ranges(units, threads) {
            let (chunk, tail) = rest.split_at_mut(range.len() * unit_len);
            rest = tail;
            let start = range.start;
            s.spawn(move || kernel(start, chunk));
        }
    });
}

/// Splits a slab that may straddle batch boundaries into per-batch row
/// chunks: `f(batch, first_row_in_batch, rows, chunk)` for each maximal
/// run of rows belonging to one batch. `row0` is the slab's first global
/// row, `n` the row length, and `rows_per_batch` the batch height.
pub(crate) fn for_batch_chunks(
    row0: usize,
    slab: &mut [f32],
    n: usize,
    rows_per_batch: usize,
    mut f: impl FnMut(usize, usize, usize, &mut [f32]),
) {
    let mut row = row0;
    let mut rest = slab;
    while !rest.is_empty() {
        let batch = row / rows_per_batch;
        let r = row % rows_per_batch;
        let take = (rows_per_batch - r).min(rest.len() / n);
        let (chunk, tail) = rest.split_at_mut(take * n);
        f(batch, r, take, chunk);
        rest = tail;
        row += take;
    }
}

/// Fills `out` by running `fill(start_index, chunk)` over contiguous
/// chunks, one per thread. Used for elementwise map/zip where the unit
/// is a single element and per-unit dispatch would be pure overhead.
pub(crate) fn fill_chunked<F>(out: &mut [f32], fill: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        return;
    }
    let threads = if out.len() < ELEM_PAR_THRESHOLD {
        1
    } else {
        active_threads().min(effective_cores()).min(out.len())
    };
    if threads <= 1 {
        aero_obs::counter!("tensor.dispatch.serial").inc();
        fill(0, out);
        return;
    }
    aero_obs::counter!("tensor.dispatch.parallel").inc();
    std::thread::scope(|s| {
        let fill = &fill;
        let mut rest = out;
        for range in shard_ranges(rest.len(), threads) {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let start = range.start;
            s.spawn(move || fill(start, chunk));
        }
    });
}

/// Accumulates `out_row += a_row @ b` for one output row, streaming
/// through the rows of `b` in ascending `p` (the "ikj" order). This one
/// loop defines the accumulation order for *every* matmul-family kernel
/// — serial reference, parallel matmul, bmm, and the batched conv
/// matmuls all bottom out here, which is what makes them mutually
/// bit-identical.
#[inline]
pub(crate) fn matmul_row_kernel(a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    let n = out_row.len();
    for (p, &av) in a_row.iter().enumerate() {
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += av * bv;
        }
    }
}

/// `[m, k] @ [k, n]` sharded over output rows, each slab computed by the
/// ambient [`crate::backend`].
pub(crate) fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    record_kernel!("tensor.matmul.calls", "tensor.matmul.elements", m * n);
    let mut out = vec![0.0f32; m * n];
    let be = crate::backend::active();
    run_slabs(&mut out, n, 2 * k, |row0, slab| {
        let rows = slab.len() / n;
        be.matmul_slab(&a[row0 * k..(row0 + rows) * k], b, k, n, slab);
    });
    out
}

/// Batched `[nb, m, k] @ [nb, k, n]` sharded over all `nb * m` output
/// rows, so small batches of large matrices and large batches of small
/// matrices both spread evenly.
pub(crate) fn bmm(a: &[f32], b: &[f32], nb: usize, m: usize, k: usize, n: usize) -> Vec<f32> {
    record_kernel!("tensor.bmm.calls", "tensor.bmm.elements", nb * m * n);
    let mut out = vec![0.0f32; nb * m * n];
    if m == 0 {
        return out;
    }
    let be = crate::backend::active();
    run_slabs(&mut out, n, 2 * k, |row0, slab| {
        for_batch_chunks(row0, slab, n, m, |batch, i, rows, chunk| {
            be.matmul_slab(
                &a[(batch * m + i) * k..][..rows * k],
                &b[batch * k * n..][..k * n],
                k,
                n,
                chunk,
            );
        });
    });
    out
}

/// `out[b] = a @ rhs[b]` with one shared left matrix `a: [rows, k]` and
/// `nb` right blocks `rhs[b]: [k, n]`, sharded over all `nb * rows`
/// output rows. This is the conv2d inner product: `a` is the reshaped
/// weight and `rhs` the im2col matrix.
pub(crate) fn batched_matmul_shared_lhs(
    a: &[f32],
    rhs: &[f32],
    nb: usize,
    rows: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    record_kernel!("tensor.conv_matmul.calls", "tensor.conv_matmul.elements", nb * rows * n);
    let mut out = vec![0.0f32; nb * rows * n];
    if rows == 0 {
        return out;
    }
    let be = crate::backend::active();
    run_slabs(&mut out, n, 2 * k, |row0, slab| {
        for_batch_chunks(row0, slab, n, rows, |batch, r, nrows, chunk| {
            be.matmul_slab(&a[r * k..][..nrows * k], &rhs[batch * k * n..][..k * n], k, n, chunk);
        });
    });
    out
}

/// Full 2-D convolution (bias applied by the caller), strategy chosen by
/// the ambient [`crate::backend`]: im2col-then-matmul on the reference
/// path, a direct tiled kernel for stride-1 1×1/3×3 on the blocked path.
pub(crate) fn conv2d(src: &[f32], weight: &[f32], g: ConvGeom, cout: usize) -> Vec<f32> {
    crate::backend::active().conv2d(src, weight, g, cout)
}

/// Numerically stable softmax over each `n`-length row of `data`,
/// sharded over rows and computed by the ambient [`crate::backend`].
pub(crate) fn softmax(data: &mut [f32], n: usize) {
    let be = crate::backend::active();
    run_slabs(data, n, 16, |_, slab| be.softmax_slab(slab, n));
}

/// Geometry of a conv2d/col2im problem, grouped so the kernels below
/// stay within sane argument counts. Public because it appears in the
/// [`crate::backend::ComputeBackend`] convolution signature; constructed
/// only by this crate's ops layer.
#[derive(Debug, Clone, Copy)]
pub struct ConvGeom {
    /// Batch size.
    pub n: usize,
    /// Channels of the *image-layout* side ([`col2im`]'s output, [`im2col`]'s input).
    pub c: usize,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// Output-grid height (`conv_out_dim(h, kh, stride, pad)`).
    pub oh: usize,
    /// Output-grid width.
    pub ow: usize,
}

/// Gathers sliding patches into the `[n, c*kh*kw, oh*ow]` im2col layout,
/// sharded over `(batch, channel)` blocks — each block is a contiguous
/// `kh*kw*oh*ow` slice of the output, written by exactly one thread.
/// Pure gather (no accumulation), so sharding is trivially exact.
pub(crate) fn im2col(src: &[f32], g: ConvGeom) -> Vec<f32> {
    let col_stride = g.oh * g.ow;
    let unit = g.kh * g.kw * col_stride;
    record_kernel!("tensor.im2col.calls", "tensor.im2col.elements", g.n * g.c * unit);
    let mut out = vec![0.0f32; g.n * g.c * unit];
    run_units(&mut out, unit, 2, |bc, block| {
        im2col_block(src, g, bc / g.c, bc % g.c, block);
    });
    out
}

fn im2col_block(src: &[f32], g: ConvGeom, b: usize, ch: usize, block: &mut [f32]) {
    let col_stride = g.oh * g.ow;
    for ky in 0..g.kh {
        for kx in 0..g.kw {
            let row = (ky * g.kw + kx) * col_stride;
            for oy in 0..g.oh {
                let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                if iy < 0 || iy >= g.h as isize {
                    continue;
                }
                for ox in 0..g.ow {
                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                    if ix < 0 || ix >= g.w as isize {
                        continue;
                    }
                    block[row + oy * g.ow + ox] =
                        src[((b * g.c + ch) * g.h + iy as usize) * g.w + ix as usize];
                }
            }
        }
    }
}

/// Scatter-adds an im2col matrix back to `[n, c, h, w]` image layout
/// (the adjoint of [`im2col`]), sharded over `(batch, channel)` output
/// planes. Every plane sums only its own channel's patch rows, visited
/// in the same `ky, kx, oy, ox` order as the serial loop, so each
/// output element sees the identical accumulation sequence regardless
/// of thread count.
pub(crate) fn col2im(src: &[f32], g: ConvGeom) -> Vec<f32> {
    let plane = g.h * g.w;
    record_kernel!("tensor.col2im.calls", "tensor.col2im.elements", g.n * g.c * plane);
    let mut out = vec![0.0f32; g.n * g.c * plane];
    run_units(&mut out, plane, 2 * g.kh * g.kw, |bc, out_plane| {
        col2im_plane(src, g, bc / g.c, bc % g.c, out_plane);
    });
    out
}

fn col2im_plane(src: &[f32], g: ConvGeom, b: usize, ch: usize, out_plane: &mut [f32]) {
    let col_stride = g.oh * g.ow;
    for ky in 0..g.kh {
        for kx in 0..g.kw {
            let row =
                ((ch * g.kh + ky) * g.kw + kx) * col_stride + b * g.c * g.kh * g.kw * col_stride;
            for oy in 0..g.oh {
                let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                if iy < 0 || iy >= g.h as isize {
                    continue;
                }
                for ox in 0..g.ow {
                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                    if ix < 0 || ix >= g.w as isize {
                        continue;
                    }
                    out_plane[iy as usize * g.w + ix as usize] += src[row + oy * g.ow + ox];
                }
            }
        }
    }
}

/// Adds one bias value per channel plane of an `[n, cout, oh, ow]`
/// buffer, sharded over `(batch, channel)` planes.
pub(crate) fn add_channel_bias(data: &mut [f32], bias: &[f32], plane: usize) {
    let cout = bias.len();
    if cout == 0 {
        return;
    }
    run_units(data, plane, 1, |bc, chunk| {
        let bv = bias[bc % cout];
        for v in chunk {
            *v += bv;
        }
    });
}

/// Elementwise map into a fresh buffer, chunk-parallel above the
/// elementwise threshold.
pub(crate) fn map_into<F>(src: &[f32], f: F) -> Vec<f32>
where
    F: Fn(f32) -> f32 + Sync,
{
    record_kernel!("tensor.elementwise.calls", "tensor.elementwise.elements", src.len());
    let mut out = vec![0.0f32; src.len()];
    fill_chunked(&mut out, |start, chunk| {
        let len = chunk.len();
        for (o, &v) in chunk.iter_mut().zip(&src[start..start + len]) {
            *o = f(v);
        }
    });
    out
}

/// Elementwise in-place map, chunk-parallel above the elementwise
/// threshold.
pub(crate) fn map_inplace<F>(data: &mut [f32], f: F)
where
    F: Fn(f32) -> f32 + Sync,
{
    record_kernel!("tensor.elementwise.calls", "tensor.elementwise.elements", data.len());
    fill_chunked(data, |_, chunk| {
        for v in chunk {
            *v = f(*v);
        }
    });
}

/// Elementwise binary op over two same-length buffers, chunk-parallel
/// above the elementwise threshold.
pub(crate) fn zip_same<F>(a: &[f32], b: &[f32], f: F) -> Vec<f32>
where
    F: Fn(f32, f32) -> f32 + Sync,
{
    debug_assert_eq!(a.len(), b.len());
    record_kernel!("tensor.elementwise.calls", "tensor.elementwise.elements", a.len());
    let mut out = vec![0.0f32; a.len()];
    fill_chunked(&mut out, |start, chunk| {
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = f(a[start + i], b[start + i]);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{with_assumed_cores, with_threads};

    #[test]
    fn planned_threads_respects_threshold_cores_and_budget() {
        with_threads(8, || {
            with_assumed_cores(8, || {
                assert_eq!(planned_threads(PAR_WORK_THRESHOLD - 1), 1, "below the fan-out floor");
                assert_eq!(
                    planned_threads(PAR_WORK_THRESHOLD),
                    PAR_WORK_THRESHOLD / PAR_WORK_PER_THREAD,
                    "just past the floor, the per-thread budget caps the width"
                );
                assert_eq!(planned_threads(8 * PAR_WORK_PER_THREAD), 8);
                assert_eq!(planned_threads(usize::MAX), 8, "ambient threads cap");
            });
            with_assumed_cores(3, || {
                assert_eq!(planned_threads(usize::MAX), 3, "physical cores cap");
            });
        });
    }

    #[test]
    fn bench_conv_shape_stays_serial_on_single_core() {
        // Regression for BENCH_kernels.json: the [2,16,32,32] ⊛
        // [32,16,3,3] conv matmul used to fan out even on a one-core
        // machine, losing ~1.4× to serial. The physical-core clamp must
        // keep it serial there while still fanning out on real cores.
        let work = 2 * 32 * (32 * 32) * 2 * (16 * 3 * 3);
        with_threads(4, || {
            with_assumed_cores(1, || assert_eq!(planned_threads(work), 1));
            with_assumed_cores(4, || assert_eq!(planned_threads(work), 4));
        });
    }

    #[test]
    fn run_slabs_covers_each_unit_exactly_once() {
        let mut out = vec![0.0f32; 12];
        run_slabs(&mut out, 3, usize::MAX, |first, slab| {
            for (off, unit) in slab.chunks_mut(3).enumerate() {
                for v in unit.iter_mut() {
                    *v += (first + off + 1) as f32;
                }
            }
        });
        assert_eq!(out, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn for_batch_chunks_splits_at_batch_boundaries() {
        // 3 batches of 2 rows (n = 1): a slab starting mid-batch at row
        // 1 and covering rows 1..=4 must split as [1], [2, 3], [4].
        let mut slab = vec![0.0f32; 4];
        let mut seen = Vec::new();
        for_batch_chunks(1, &mut slab, 1, 2, |batch, first, rows, chunk| {
            seen.push((batch, first, rows, chunk.len()));
        });
        assert_eq!(seen, vec![(0, 1, 1, 1), (1, 0, 2, 2), (2, 0, 1, 1)]);
    }

    #[test]
    fn shard_ranges_cover_exactly_in_order() {
        for units in [0usize, 1, 2, 7, 8, 9, 100] {
            for shards in [1usize, 2, 3, 8] {
                let ranges = shard_ranges(units, shards);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "ranges must be contiguous");
                    assert!(!r.is_empty(), "no empty shards");
                    next = r.end;
                }
                assert_eq!(next, units, "ranges must cover all units");
                assert!(ranges.len() <= shards);
            }
        }
    }

    #[test]
    fn shard_ranges_near_even() {
        let ranges = shard_ranges(10, 4);
        let lens: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn run_units_visits_every_unit_once() {
        let mut out = vec![0.0f32; 12];
        run_units(&mut out, 3, usize::MAX, |u, unit| {
            for v in unit.iter_mut() {
                *v += (u + 1) as f32;
            }
        });
        assert_eq!(out, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn run_units_handles_empty_and_degenerate() {
        let mut empty: Vec<f32> = Vec::new();
        run_units(&mut empty, 4, 1, |_, _| panic!("no units to visit"));
        let mut out = vec![0.0f32; 4];
        run_units(&mut out, 0, 1, |_, _| panic!("zero-length units are skipped"));
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn matmul_small_known_values() {
        // [[1,2,3],[4,5,6]] @ [[7,8],[9,10],[11,12]]
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        for t in 1..=4 {
            let out = with_threads(t, || matmul(&a, &b, 2, 3, 2));
            assert_eq!(out, vec![58.0, 64.0, 139.0, 154.0], "threads={t}");
        }
    }

    #[test]
    fn kernels_report_to_global_registry() {
        let snap = |name: &str| aero_obs::global().snapshot().counter(name).unwrap_or(0);
        let (calls, elems, serial) = (
            snap("tensor.matmul.calls"),
            snap("tensor.matmul.elements"),
            snap("tensor.dispatch.serial"),
        );
        let out = matmul(&[1.0, 2.0], &[3.0, 4.0], 1, 2, 1);
        assert_eq!(out, vec![11.0]);
        // Counters are process-global and other tests run concurrently,
        // so assert monotone growth, not exact deltas.
        assert!(snap("tensor.matmul.calls") > calls);
        assert!(snap("tensor.matmul.elements") > elems);
        assert!(snap("tensor.dispatch.serial") > serial);
    }

    #[test]
    fn fill_chunked_covers_with_correct_offsets() {
        let mut out = vec![0.0f32; 1000];
        fill_chunked(&mut out, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as f32;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }
}
