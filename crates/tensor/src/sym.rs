//! Symbolic shapes for static analysis.
//!
//! A [`ShapeSpec`] is a shape whose axes may be concrete ([`Dim::Fixed`])
//! or symbolic ([`Dim::Sym`], e.g. a batch size `B` that is unknown until
//! runtime). The `sym_*` functions mirror the concrete shape rules in
//! [`crate::shape`] — whenever every axis is fixed they *delegate* to the
//! concrete rule, so the analyzer and the runtime kernels can never
//! disagree about geometry.
//!
//! This module is consumed by `aero-nn` (the `Module::infer_shape` hook)
//! and by `aero-analysis` (the static shape-inference pass).

use crate::shape;
use crate::TensorError;
use std::fmt;

/// One axis of a symbolic shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Dim {
    /// A concrete extent.
    Fixed(usize),
    /// A named symbolic extent (equal only to a symbol of the same name).
    Sym(String),
}

impl Dim {
    /// Creates a symbolic dimension with the given name.
    pub fn sym(name: &str) -> Self {
        Dim::Sym(name.to_string())
    }

    /// The concrete extent, if this dimension is fixed.
    pub fn as_fixed(&self) -> Option<usize> {
        match self {
            Dim::Fixed(n) => Some(*n),
            Dim::Sym(_) => None,
        }
    }
}

impl From<usize> for Dim {
    fn from(n: usize) -> Self {
        Dim::Fixed(n)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Fixed(n) => write!(f, "{n}"),
            Dim::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A shape whose axes may be concrete or symbolic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeSpec {
    dims: Vec<Dim>,
}

impl ShapeSpec {
    /// Builds a spec from a list of dimensions.
    pub fn new(dims: Vec<Dim>) -> Self {
        ShapeSpec { dims }
    }

    /// Builds a fully concrete spec.
    pub fn fixed(shape: &[usize]) -> Self {
        ShapeSpec { dims: shape.iter().map(|&n| Dim::Fixed(n)).collect() }
    }

    /// A spec with a leading symbolic batch axis followed by fixed axes.
    pub fn batched(batch: &str, rest: &[usize]) -> Self {
        let mut dims = vec![Dim::sym(batch)];
        dims.extend(rest.iter().map(|&n| Dim::Fixed(n)));
        ShapeSpec { dims }
    }

    /// The axes of this spec.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The concrete shape, if every axis is fixed.
    pub fn as_fixed(&self) -> Option<Vec<usize>> {
        self.dims.iter().map(Dim::as_fixed).collect()
    }

    /// Symbolic element count: the product of fixed extents plus the
    /// multiset of symbolic names. Two specs can be reshaped into each
    /// other iff these match.
    fn sym_numel(&self) -> (usize, Vec<&str>) {
        let mut coeff = 1usize;
        let mut syms: Vec<&str> = Vec::new();
        for d in &self.dims {
            match d {
                Dim::Fixed(n) => coeff *= n,
                Dim::Sym(s) => syms.push(s),
            }
        }
        syms.sort_unstable();
        (coeff, syms)
    }
}

impl fmt::Display for ShapeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

fn dim_err(detail: String) -> TensorError {
    TensorError::DimensionMismatch { detail }
}

/// Whether two dimensions are provably equal (same fixed extent or same
/// symbol). `Fixed` vs `Sym` is conservatively *not* equal.
pub fn dim_eq(a: &Dim, b: &Dim) -> bool {
    match (a, b) {
        (Dim::Fixed(x), Dim::Fixed(y)) => x == y,
        (Dim::Sym(x), Dim::Sym(y)) => x == y,
        _ => false,
    }
}

/// Symbolic broadcast of two specs under NumPy rules.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastMismatch`] (fully fixed) or
/// [`TensorError::DimensionMismatch`] (symbolic conflict).
pub fn sym_broadcast(lhs: &ShapeSpec, rhs: &ShapeSpec) -> Result<ShapeSpec, TensorError> {
    if let (Some(l), Some(r)) = (lhs.as_fixed(), rhs.as_fixed()) {
        return Ok(ShapeSpec::fixed(&shape::broadcast_shapes(&l, &r)?));
    }
    let rank = lhs.rank().max(rhs.rank());
    let one = Dim::Fixed(1);
    let mut out = Vec::with_capacity(rank);
    for i in 0..rank {
        let l = if i < rank - lhs.rank() { &one } else { &lhs.dims[i - (rank - lhs.rank())] };
        let r = if i < rank - rhs.rank() { &one } else { &rhs.dims[i - (rank - rhs.rank())] };
        let d = if dim_eq(l, r) {
            l.clone()
        } else if *l == one {
            r.clone()
        } else if *r == one {
            l.clone()
        } else {
            return Err(dim_err(format!("shapes {lhs} and {rhs} cannot be broadcast together")));
        };
        out.push(d);
    }
    Ok(ShapeSpec::new(out))
}

/// Symbolic rank-2 matrix product `[m, k] x [k, n] -> [m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] on rank or inner-dimension
/// conflict.
pub fn sym_matmul(lhs: &ShapeSpec, rhs: &ShapeSpec) -> Result<ShapeSpec, TensorError> {
    if let (Some(l), Some(r)) = (lhs.as_fixed(), rhs.as_fixed()) {
        return Ok(ShapeSpec::fixed(&shape::matmul_shape(&l, &r)?));
    }
    if lhs.rank() != 2 || rhs.rank() != 2 {
        return Err(dim_err(format!("matmul requires rank-2 operands, got {lhs} x {rhs}")));
    }
    if !dim_eq(&lhs.dims[1], &rhs.dims[0]) {
        return Err(dim_err(format!("matmul inner dimensions differ: {lhs} x {rhs}")));
    }
    Ok(ShapeSpec::new(vec![lhs.dims[0].clone(), rhs.dims[1].clone()]))
}

/// Symbolic batched matrix product `[b, m, k] x [b, k, n] -> [b, m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] on rank, batch, or
/// inner-dimension conflict.
pub fn sym_bmm(lhs: &ShapeSpec, rhs: &ShapeSpec) -> Result<ShapeSpec, TensorError> {
    if let (Some(l), Some(r)) = (lhs.as_fixed(), rhs.as_fixed()) {
        return Ok(ShapeSpec::fixed(&shape::bmm_shape(&l, &r)?));
    }
    if lhs.rank() != 3 || rhs.rank() != 3 {
        return Err(dim_err(format!("bmm requires rank-3 operands, got {lhs} x {rhs}")));
    }
    if !dim_eq(&lhs.dims[0], &rhs.dims[0]) {
        return Err(dim_err(format!("bmm batch dimensions differ: {lhs} x {rhs}")));
    }
    if !dim_eq(&lhs.dims[2], &rhs.dims[1]) {
        return Err(dim_err(format!("bmm inner dimensions differ: {lhs} x {rhs}")));
    }
    Ok(ShapeSpec::new(vec![lhs.dims[0].clone(), lhs.dims[1].clone(), rhs.dims[2].clone()]))
}

fn fixed_spatial(spec: &ShapeSpec, what: &str) -> Result<(usize, usize), TensorError> {
    match (spec.dims[2].as_fixed(), spec.dims[3].as_fixed()) {
        (Some(h), Some(w)) => Ok((h, w)),
        _ => Err(dim_err(format!("{what} requires fixed spatial extents, got {spec}"))),
    }
}

/// Symbolic `conv2d`: input `[b, cin, h, w]` (batch may be symbolic,
/// channels/spatial must be fixed) with concrete weight `[cout, cin, kh, kw]`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] on rank/channel conflicts or
/// when the kernel does not fit the padded input.
pub fn sym_conv2d(
    input: &ShapeSpec,
    weight: &[usize],
    stride: usize,
    pad: usize,
) -> Result<ShapeSpec, TensorError> {
    if let Some(i) = input.as_fixed() {
        return Ok(ShapeSpec::fixed(&shape::conv2d_shape(&i, weight, stride, pad)?));
    }
    if input.rank() != 4 {
        return Err(dim_err(format!("conv2d input must be [n, cin, h, w], got {input}")));
    }
    if weight.len() != 4 {
        return Err(dim_err(format!("conv2d weight must be [cout, cin, kh, kw], got {weight:?}")));
    }
    if !dim_eq(&input.dims[1], &Dim::Fixed(weight[1])) {
        return Err(dim_err(format!(
            "conv2d channel mismatch: input {input} has {} channels, weight expects {}",
            input.dims[1], weight[1]
        )));
    }
    let (h, w) = fixed_spatial(input, "conv2d")?;
    let oh = shape::conv_out_dim(h, weight[2], stride, pad)?;
    let ow = shape::conv_out_dim(w, weight[3], stride, pad)?;
    Ok(ShapeSpec::new(vec![
        input.dims[0].clone(),
        Dim::Fixed(weight[0]),
        Dim::Fixed(oh),
        Dim::Fixed(ow),
    ]))
}

/// Symbolic `conv_transpose2d`: input `[b, cin, h, w]` with concrete weight
/// `[cin, cout, kh, kw]`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] on rank/channel conflicts or
/// when the parameters imply a non-positive output extent.
pub fn sym_conv_transpose2d(
    input: &ShapeSpec,
    weight: &[usize],
    stride: usize,
    pad: usize,
) -> Result<ShapeSpec, TensorError> {
    if let Some(i) = input.as_fixed() {
        return Ok(ShapeSpec::fixed(&shape::conv_transpose2d_shape(&i, weight, stride, pad)?));
    }
    if input.rank() != 4 {
        return Err(dim_err(format!("conv_transpose2d input must be [n, cin, h, w], got {input}")));
    }
    if weight.len() != 4 {
        return Err(dim_err(format!(
            "conv_transpose2d weight must be [cin, cout, kh, kw], got {weight:?}"
        )));
    }
    let (h, w) = fixed_spatial(input, "conv_transpose2d")?;
    let probe = vec![1, input.dims[1].as_fixed().unwrap_or(weight[0]), h, w];
    if !dim_eq(&input.dims[1], &Dim::Fixed(weight[0])) {
        return Err(dim_err(format!(
            "conv_transpose2d channel mismatch: input {input} has {} channels, weight expects {}",
            input.dims[1], weight[0]
        )));
    }
    let out = shape::conv_transpose2d_shape(&probe, weight, stride, pad)?;
    Ok(ShapeSpec::new(vec![
        input.dims[0].clone(),
        Dim::Fixed(out[1]),
        Dim::Fixed(out[2]),
        Dim::Fixed(out[3]),
    ]))
}

/// Symbolic square pooling with window and stride `k`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] unless the input is rank-4
/// with fixed spatial extents dividing exactly by `k`.
pub fn sym_pool2d(input: &ShapeSpec, k: usize) -> Result<ShapeSpec, TensorError> {
    if let Some(i) = input.as_fixed() {
        return Ok(ShapeSpec::fixed(&shape::pool2d_shape(&i, k)?));
    }
    if input.rank() != 4 {
        return Err(dim_err(format!("pooling requires [n, c, h, w], got {input}")));
    }
    let (h, w) = fixed_spatial(input, "pooling")?;
    let out = shape::pool2d_shape(&[1, 1, h, w], k)?;
    Ok(ShapeSpec::new(vec![
        input.dims[0].clone(),
        input.dims[1].clone(),
        Dim::Fixed(out[2]),
        Dim::Fixed(out[3]),
    ]))
}

/// Symbolic nearest-neighbour 2x upsampling.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] unless the input is rank-4
/// with fixed spatial extents.
pub fn sym_upsample2x(input: &ShapeSpec) -> Result<ShapeSpec, TensorError> {
    if let Some(i) = input.as_fixed() {
        return Ok(ShapeSpec::fixed(&shape::upsample2x_shape(&i)?));
    }
    if input.rank() != 4 {
        return Err(dim_err(format!("upsample requires [n, c, h, w], got {input}")));
    }
    let (h, w) = fixed_spatial(input, "upsample")?;
    Ok(ShapeSpec::new(vec![
        input.dims[0].clone(),
        input.dims[1].clone(),
        Dim::Fixed(h * 2),
        Dim::Fixed(w * 2),
    ]))
}

/// Symbolic concatenation along `axis`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the list is empty, the
/// axis is out of bounds, an off-axis extent differs, or the axis extent
/// cannot be summed (symbolic on more than one operand).
pub fn sym_concat(specs: &[&ShapeSpec], axis: usize) -> Result<ShapeSpec, TensorError> {
    let Some(first) = specs.first() else {
        return Err(dim_err("concat requires at least one tensor".to_string()));
    };
    if axis >= first.rank() {
        return Err(dim_err(format!("concat axis {axis} out of bounds for {first}")));
    }
    let mut out = first.dims.to_vec();
    for s in &specs[1..] {
        if s.rank() != first.rank() {
            return Err(dim_err(format!("concat rank mismatch: {first} vs {s}")));
        }
        for (ax, (a, b)) in first.dims.iter().zip(s.dims.iter()).enumerate() {
            if ax != axis && !dim_eq(a, b) {
                return Err(dim_err(format!(
                    "concat off-axis extent mismatch at axis {ax}: {first} vs {s}"
                )));
            }
        }
        out[axis] = match (&out[axis], &s.dims[axis]) {
            (Dim::Fixed(a), Dim::Fixed(b)) => Dim::Fixed(a + b),
            _ => {
                return Err(dim_err(format!(
                    "concat cannot sum symbolic extents along axis {axis}: {first} vs {s}"
                )))
            }
        };
    }
    Ok(ShapeSpec::new(out))
}

/// Symbolic `narrow(axis, start, len)`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the axis is out of
/// bounds, the range overruns a fixed extent, or the extent is symbolic.
pub fn sym_narrow(
    spec: &ShapeSpec,
    axis: usize,
    start: usize,
    len: usize,
) -> Result<ShapeSpec, TensorError> {
    if axis >= spec.rank() {
        return Err(dim_err(format!("narrow axis {axis} out of bounds for {spec}")));
    }
    match spec.dims[axis] {
        Dim::Fixed(n) => {
            shape::narrow_shape(&[n], 0, start, len)?;
        }
        Dim::Sym(_) => {
            return Err(dim_err(format!(
                "narrow cannot bound-check symbolic axis {axis} of {spec}"
            )))
        }
    }
    let mut out = spec.dims.clone();
    out[axis] = Dim::Fixed(len);
    Ok(ShapeSpec::new(out))
}

/// Validates a symbolic reshape: element counts (fixed coefficient plus
/// multiset of symbols) must match.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the symbolic element
/// counts provably differ.
pub fn sym_reshape(from: &ShapeSpec, to: &ShapeSpec) -> Result<ShapeSpec, TensorError> {
    if let (Some(f), Some(t)) = (from.as_fixed(), to.as_fixed()) {
        shape::reshape_check(&f, &t)?;
        return Ok(to.clone());
    }
    if from.sym_numel() != to.sym_numel() {
        return Err(dim_err(format!("reshape of {from} to {to} changes element count")));
    }
    Ok(to.clone())
}

/// Symbolic `permute(axes)`.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] unless `axes` is a
/// permutation of `0..rank`.
pub fn sym_permute(spec: &ShapeSpec, axes: &[usize]) -> Result<ShapeSpec, TensorError> {
    let probe: Vec<usize> = vec![1; spec.rank()];
    shape::permute_shape(&probe, axes)?;
    Ok(ShapeSpec::new(axes.iter().map(|&a| spec.dims[a].clone()).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(rest: &[usize]) -> ShapeSpec {
        ShapeSpec::batched("B", rest)
    }

    #[test]
    fn display_reads_naturally() {
        assert_eq!(b(&[4, 8, 8]).to_string(), "[B, 4, 8, 8]");
        assert_eq!(ShapeSpec::fixed(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn fixed_specs_delegate_to_concrete_rules() {
        let m = sym_matmul(&ShapeSpec::fixed(&[2, 3]), &ShapeSpec::fixed(&[3, 5])).unwrap();
        assert_eq!(m, ShapeSpec::fixed(&[2, 5]));
        assert!(sym_matmul(&ShapeSpec::fixed(&[2, 3]), &ShapeSpec::fixed(&[4, 5])).is_err());
    }

    #[test]
    fn symbolic_batch_flows_through_matmul() {
        let x = b(&[6]);
        let w = ShapeSpec::fixed(&[6, 10]);
        let y = sym_matmul(&x, &w).unwrap();
        assert_eq!(y, b(&[10]));
        assert!(sym_matmul(&b(&[7]), &w).is_err());
    }

    #[test]
    fn symbolic_broadcast_rules() {
        let x = b(&[8, 4, 4]);
        let s = b(&[8, 1, 1]);
        assert_eq!(sym_broadcast(&x, &s).unwrap(), x);
        let conflict = b(&[9, 1, 1]);
        assert!(sym_broadcast(&x, &conflict).is_err());
        // Sym vs Fixed in the same axis is conservatively rejected.
        let fixed_batch = ShapeSpec::fixed(&[2, 8, 4, 4]);
        assert!(sym_broadcast(&x, &fixed_batch).is_err());
    }

    #[test]
    fn symbolic_conv_and_pool() {
        let x = b(&[3, 8, 8]);
        let y = sym_conv2d(&x, &[16, 3, 3, 3], 2, 1).unwrap();
        assert_eq!(y, b(&[16, 4, 4]));
        assert!(sym_conv2d(&x, &[16, 4, 3, 3], 2, 1).is_err());
        assert_eq!(sym_pool2d(&y, 2).unwrap(), b(&[16, 2, 2]));
        assert!(sym_pool2d(&b(&[16, 5, 4]), 2).is_err());
        assert_eq!(sym_upsample2x(&y).unwrap(), b(&[16, 8, 8]));
        let t = sym_conv_transpose2d(&b(&[3, 4, 4]), &[3, 5, 2, 2], 2, 0).unwrap();
        assert_eq!(t, b(&[5, 8, 8]));
    }

    #[test]
    fn symbolic_reshape_tracks_symbol_multiset() {
        let from = b(&[8, 4, 4]);
        let to = b(&[8, 16]);
        assert_eq!(sym_reshape(&from, &to).unwrap(), to);
        assert!(sym_reshape(&from, &b(&[8, 15])).is_err());
        // Symbol replaced by a fixed extent is not provably equal.
        assert!(sym_reshape(&from, &ShapeSpec::fixed(&[2, 8, 16])).is_err());
    }

    #[test]
    fn symbolic_concat_and_narrow() {
        let a = b(&[4, 8, 8]);
        let c = sym_concat(&[&a, &a], 1).unwrap();
        assert_eq!(c, b(&[8, 8, 8]));
        assert!(sym_concat(&[&a, &b(&[4, 9, 8])], 1).is_err());
        assert!(sym_concat(&[&a, &a], 0).is_err(), "cannot sum symbolic batch");
        assert_eq!(sym_narrow(&a, 1, 0, 2).unwrap(), b(&[2, 8, 8]));
        assert!(sym_narrow(&a, 0, 0, 1).is_err());
    }

    #[test]
    fn symbolic_permute() {
        let a = b(&[4, 8, 9]);
        let p = sym_permute(&a, &[0, 3, 1, 2]).unwrap();
        assert_eq!(p, b(&[9, 4, 8]));
        assert!(sym_permute(&a, &[0, 0, 1, 2]).is_err());
    }
}
