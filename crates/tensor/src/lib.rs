//! Minimal ND `f32` tensor library backing the AeroDiffusion reproduction.
//!
//! This crate provides the dense numerical substrate every other crate in
//! the workspace builds on: an owned, row-major [`Tensor`] with NumPy-style
//! broadcasting, the convolution/matmul/pooling kernels needed by the
//! neural-network crate, and the small dense linear-algebra routines
//! (symmetric eigendecomposition, matrix square root) needed by the FID
//! metric.
//!
//! The design goal is *correct and predictable* first: everything is
//! plain safe Rust over `Vec<f32>`, seeded and deterministic. The dense
//! kernels additionally fan out over scoped std threads through
//! [`par_kernels`], sharded so the parallel result is bit-identical to
//! the serial reference at any thread count (policy in [`parallel`]).
//!
//! # Example
//!
//! ```
//! use aero_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

pub mod backend;
mod error;
mod linalg;
mod ops;
pub mod par_kernels;
pub mod parallel;
pub mod quant;
mod shape;
pub mod sym;
mod tensor;

pub use backend::BackendKind;
pub use error::TensorError;
pub use linalg::{cholesky, covariance, matrix_sqrt_psd, symmetric_eigen, trace};
pub use parallel::ParallelConfig;
pub use quant::{Q8Tensor, Q8_BLOCK};
pub use shape::{
    bmm_shape, broadcast_shapes, concat_shape, conv2d_shape, conv_out_dim, conv_transpose2d_shape,
    matmul_shape, narrow_shape, permute_shape, pool2d_shape, reshape_check, strides_for,
    upsample2x_shape,
};
pub use tensor::Tensor;

/// Convenience result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
