//! Small dense linear-algebra routines needed by the evaluation metrics.
//!
//! FID requires the trace of a matrix square root of a product of
//! covariance matrices; we compute symmetric square roots via a cyclic
//! Jacobi eigendecomposition, which is simple, robust, and plenty fast for
//! the ≤128-dimensional feature covariances used in this reproduction.

use crate::tensor::Tensor;
use crate::TensorError;

/// Result of a symmetric eigendecomposition: `a == v * diag(w) * v^T`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in unspecified order.
    pub eigenvalues: Vec<f32>,
    /// Column-eigenvector matrix `v` (shape `[n, n]`).
    pub eigenvectors: Tensor,
}

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] for non-square input and
/// [`TensorError::Numerical`] if the sweep limit is exhausted before
/// off-diagonals vanish.
///
/// # Example
///
/// ```
/// use aero_tensor::{symmetric_eigen, Tensor};
///
/// let a = Tensor::from_vec(vec![2.0, 1.0, 1.0, 2.0], &[2, 2]);
/// let eig = symmetric_eigen(&a)?;
/// let mut w = eig.eigenvalues.clone();
/// w.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
/// assert!((w[0] - 1.0).abs() < 1e-4 && (w[1] - 3.0).abs() < 1e-4);
/// # Ok::<(), aero_tensor::TensorError>(())
/// ```
pub fn symmetric_eigen(a: &Tensor) -> Result<SymmetricEigen, TensorError> {
    if a.rank() != 2 || a.shape()[0] != a.shape()[1] {
        return Err(TensorError::DimensionMismatch {
            detail: format!("symmetric_eigen requires a square matrix, got {:?}", a.shape()),
        });
    }
    let n = a.shape()[0];
    let mut m = a.as_slice().to_vec();
    let mut v = Tensor::eye(n).into_vec();
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        // f32 round-off floors the achievable off-diagonal norm at about
        // 1e-6 of the matrix scale; demanding more never converges.
        if off.sqrt() < 1e-5 * (1.0 + frobenius(&m)) {
            let eigenvalues = (0..n).map(|i| m[i * n + i]).collect();
            return Ok(SymmetricEigen { eigenvalues, eigenvectors: Tensor::from_vec(v, &[n, n]) });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides: m = G^T m G.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(TensorError::Numerical { detail: "jacobi eigendecomposition did not converge".into() })
}

fn frobenius(m: &[f32]) -> f32 {
    m.iter().map(|&v| v * v).sum::<f32>().sqrt()
}

/// Symmetric positive-semidefinite matrix square root.
///
/// Negative eigenvalues caused by round-off are clamped to zero.
///
/// # Errors
///
/// Propagates failures from [`symmetric_eigen`].
pub fn matrix_sqrt_psd(a: &Tensor) -> Result<Tensor, TensorError> {
    let eig = symmetric_eigen(a)?;
    let n = eig.eigenvalues.len();
    let v = &eig.eigenvectors;
    let mut d = Tensor::zeros(&[n, n]);
    for (i, &w) in eig.eigenvalues.iter().enumerate() {
        d.set(&[i, i], w.max(0.0).sqrt());
    }
    Ok(v.matmul(&d).matmul(&v.transpose()))
}

/// Cholesky factor `l` of a symmetric positive-definite matrix (`a = l l^T`).
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] for non-square input and
/// [`TensorError::Numerical`] if a pivot is non-positive.
pub fn cholesky(a: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 || a.shape()[0] != a.shape()[1] {
        return Err(TensorError::DimensionMismatch {
            detail: format!("cholesky requires a square matrix, got {:?}", a.shape()),
        });
    }
    let n = a.shape()[0];
    let src = a.as_slice();
    let mut l = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = src[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(TensorError::Numerical {
                        detail: format!("non-positive pivot {sum} at row {i}"),
                    });
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(Tensor::from_vec(l, &[n, n]))
}

/// Trace of a square matrix.
///
/// # Panics
///
/// Panics for non-square input.
pub fn trace(a: &Tensor) -> f32 {
    assert!(a.rank() == 2 && a.shape()[0] == a.shape()[1], "trace requires a square matrix");
    let n = a.shape()[0];
    (0..n).map(|i| a.as_slice()[i * n + i]).sum()
}

/// Sample mean and covariance of row-vector samples `x` of shape `[n, d]`.
///
/// Uses the unbiased (n−1) normalization when `n > 1`.
///
/// # Panics
///
/// Panics unless `x` is rank-2 with at least one row.
pub fn covariance(x: &Tensor) -> (Tensor, Tensor) {
    assert_eq!(x.rank(), 2, "covariance requires [n, d] samples");
    let (n, d) = (x.shape()[0], x.shape()[1]);
    assert!(n > 0, "covariance requires at least one sample");
    let mean = x.mean_axis(0);
    let centered = x.sub(&mean.reshape(&[1, d]));
    let denom = if n > 1 { (n - 1) as f32 } else { 1.0 };
    let cov = centered.transpose().matmul(&centered).mul_scalar(1.0 / denom);
    (mean, cov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_spd(n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[n, n], &mut rng);
        // a a^T + n I is symmetric positive definite.
        a.matmul(&a.transpose()).add(&Tensor::eye(n).mul_scalar(n as f32))
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = random_spd(6, 3);
        let eig = symmetric_eigen(&a).unwrap();
        let n = 6;
        let mut d = Tensor::zeros(&[n, n]);
        for (i, &w) in eig.eigenvalues.iter().enumerate() {
            d.set(&[i, i], w);
        }
        let rec = eig.eigenvectors.matmul(&d).matmul(&eig.eigenvectors.transpose());
        let err = rec.sub(&a).abs().max();
        assert!(err < 1e-3, "reconstruction error {err}");
    }

    #[test]
    fn eigen_vectors_orthonormal() {
        let a = random_spd(5, 4);
        let eig = symmetric_eigen(&a).unwrap();
        let vtv = eig.eigenvectors.transpose().matmul(&eig.eigenvectors);
        let err = vtv.sub(&Tensor::eye(5)).abs().max();
        assert!(err < 1e-4, "orthonormality error {err}");
    }

    #[test]
    fn eigen_rejects_non_square() {
        assert!(symmetric_eigen(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn sqrt_squares_back() {
        let a = random_spd(4, 5);
        let s = matrix_sqrt_psd(&a).unwrap();
        let err = s.matmul(&s).sub(&a).abs().max();
        assert!(err < 1e-2, "sqrt error {err}");
    }

    #[test]
    fn sqrt_of_identity() {
        let s = matrix_sqrt_psd(&Tensor::eye(3)).unwrap();
        assert!(s.sub(&Tensor::eye(3)).abs().max() < 1e-5);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = random_spd(5, 6);
        let l = cholesky(&a).unwrap();
        let err = l.matmul(&l.transpose()).sub(&a).abs().max();
        assert!(err < 1e-2, "cholesky error {err}");
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Tensor::from_vec(vec![-1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn trace_known() {
        let a = Tensor::from_vec(vec![1.0, 9.0, 9.0, 2.0], &[2, 2]);
        assert_eq!(trace(&a), 3.0);
    }

    #[test]
    fn covariance_of_identical_rows_is_zero() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0], &[3, 2]);
        let (mean, cov) = covariance(&x);
        assert_eq!(mean.as_slice(), &[1.0, 2.0]);
        assert!(cov.abs().max() < 1e-6);
    }

    #[test]
    fn covariance_diagonal_for_independent_axes() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(&[4000, 2], &mut rng);
        let (_, cov) = covariance(&x);
        assert!((cov.get(&[0, 0]) - 1.0).abs() < 0.1);
        assert!((cov.get(&[1, 1]) - 1.0).abs() < 0.1);
        assert!(cov.get(&[0, 1]).abs() < 0.1);
    }
}
