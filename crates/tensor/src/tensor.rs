//! The owned, row-major ND tensor type.

use crate::shape::{
    broadcast_shapes, concat_shape, narrow_shape, numel, permute_shape, reshape_check, strides_for,
};
use crate::TensorError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An owned, contiguous, row-major `f32` tensor of arbitrary rank.
///
/// `Tensor` is a plain value type: cloning copies the buffer, all
/// operations return new tensors, and every constructor/operation is
/// deterministic given the caller-supplied RNG. A rank-0 tensor holds a
/// single scalar.
///
/// # Example
///
/// ```
/// use aero_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
/// let y = x.map(|v| v * 2.0);
/// assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Default for Tensor {
    /// A rank-0 tensor holding `0.0`.
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl Tensor {
    // ---------------------------------------------------------------- ctor

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        Self::try_from_vec(data, shape).expect("data length must match shape")
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts differ.
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected = numel(shape);
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch { expected, actual: data.len() });
        }
        Ok(Tensor { data, shape: shape.to_vec() })
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { data: vec![0.0; numel(shape)], shape: shape.to_vec() }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor { data: vec![value; numel(shape)], shape: shape.to_vec() }
    }

    /// A rank-0 tensor holding one scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: vec![] }
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Values `0, 1, …, n-1` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        Tensor { data: (0..n).map(|i| i as f32).collect(), shape: vec![n] }
    }

    /// `n` evenly spaced values from `start` to `end` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n > 0, "linspace requires n > 0");
        if n == 1 {
            return Tensor::from_vec(vec![start], &[1]);
        }
        let step = (end - start) / (n - 1) as f32;
        Tensor { data: (0..n).map(|i| start + step * i as f32).collect(), shape: vec![n] }
    }

    /// Standard-normal samples drawn from `rng` (Box–Muller).
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
            let u2: f32 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor { data, shape: shape.to_vec() }
    }

    /// Uniform samples in `[lo, hi)` drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        assert!(lo < hi, "rand_uniform requires lo < hi");
        let n = numel(shape);
        Tensor { data: (0..n).map(|_| rng.gen_range(lo..hi)).collect(), shape: shape.to_vec() }
    }

    // ------------------------------------------------------------ accessors

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// A view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    /// The single value of a rank-0 or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires exactly one element");
        self.data[0]
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let strides = strides_for(&self.shape);
        index
            .iter()
            .zip(&self.shape)
            .zip(&strides)
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bounds for axis of size {d}");
                i * s
            })
            .sum()
    }

    // ------------------------------------------------------------- reshape

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        reshape_check(&self.shape, shape)
            .unwrap_or_else(|e| panic!("reshape of {:?} to {shape:?}: {e}", self.shape));
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// Flattens into a rank-1 tensor.
    pub fn flatten(&self) -> Self {
        Tensor { data: self.data.clone(), shape: vec![self.data.len()] }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.rank(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                data[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor { data, shape: vec![c, r] }
    }

    /// Permutes axes.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is not a permutation of `0..rank`.
    pub fn permute(&self, axes: &[usize]) -> Self {
        let new_shape = permute_shape(&self.shape, axes).unwrap_or_else(|e| panic!("permute: {e}"));
        let old_strides = strides_for(&self.shape);
        let new_strides = strides_for(&new_shape);
        let mut data = vec![0.0; self.data.len()];
        for (flat, slot) in data.iter_mut().enumerate() {
            // Decompose flat index in new layout, recompose in old layout.
            let mut rem = flat;
            let mut old_flat = 0;
            for (k, &ns) in new_strides.iter().enumerate() {
                let idx = rem / ns;
                rem %= ns;
                old_flat += idx * old_strides[axes[k]];
            }
            *slot = self.data[old_flat];
        }
        Tensor { data, shape: new_shape }
    }

    /// Materializes a broadcast of this tensor to `shape`.
    ///
    /// # Panics
    ///
    /// Panics if this tensor cannot broadcast to `shape`.
    pub fn broadcast_to(&self, shape: &[usize]) -> Self {
        let target = broadcast_shapes(&self.shape, shape)
            .unwrap_or_else(|e| panic!("broadcast_to failed: {e}"));
        assert_eq!(
            target, shape,
            "tensor of shape {:?} does not broadcast to {:?}",
            self.shape, shape
        );
        let rank = shape.len();
        let offset = rank - self.rank();
        let src_strides = strides_for(&self.shape);
        let dst_strides = strides_for(shape);
        let mut data = vec![0.0; numel(shape)];
        for (flat, slot) in data.iter_mut().enumerate() {
            let mut rem = flat;
            let mut src = 0;
            for (k, &ds) in dst_strides.iter().enumerate() {
                let idx = rem / ds;
                rem %= ds;
                if k >= offset && self.shape[k - offset] != 1 {
                    src += idx * src_strides[k - offset];
                }
            }
            *slot = self.data[src];
        }
        Tensor { data, shape: shape.to_vec() }
    }

    /// Selects a contiguous range along an axis.
    ///
    /// # Panics
    ///
    /// Panics if `axis` or `start + len` is out of bounds.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Self {
        let new_shape =
            narrow_shape(&self.shape, axis, start, len).unwrap_or_else(|e| panic!("narrow: {e}"));
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(numel(&new_shape));
        for o in 0..outer {
            let base = o * self.shape[axis] * inner + start * inner;
            data.extend_from_slice(&self.data[base..base + len * inner]);
        }
        Tensor { data, shape: new_shape }
    }

    /// Concatenates tensors along an axis.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or shapes differ off-axis.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Self {
        let shapes: Vec<&[usize]> = tensors.iter().map(|t| t.shape.as_slice()).collect();
        let new_shape = concat_shape(&shapes, axis).unwrap_or_else(|e| panic!("concat: {e}"));
        let first = tensors[0];
        let outer: usize = first.shape[..axis].iter().product();
        let inner: usize = first.shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(numel(&new_shape));
        for o in 0..outer {
            for t in tensors {
                let chunk = t.shape[axis] * inner;
                data.extend_from_slice(&t.data[o * chunk..(o + 1) * chunk]);
            }
        }
        Tensor { data, shape: new_shape }
    }

    /// Stacks rank-matched tensors along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or shapes differ.
    pub fn stack(tensors: &[&Tensor]) -> Self {
        assert!(!tensors.is_empty(), "stack requires at least one tensor");
        let shape = tensors[0].shape.clone();
        let mut data = Vec::with_capacity(tensors.len() * tensors[0].numel());
        for t in tensors {
            assert_eq!(t.shape, shape, "stack shape mismatch");
            data.extend_from_slice(&t.data);
        }
        let mut new_shape = vec![tensors.len()];
        new_shape.extend(shape);
        Tensor { data, shape: new_shape }
    }

    /// Selects rows along an axis by index.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Self {
        assert!(axis < self.rank(), "axis out of bounds");
        let mut parts: Vec<Tensor> = Vec::with_capacity(indices.len());
        for &i in indices {
            parts.push(self.narrow(axis, i, 1));
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat(&refs, axis)
    }

    // ---------------------------------------------------------- elementwise

    /// Applies `f` to every element (chunk-parallel for large tensors;
    /// chunking preserves element order, so the result is bit-identical
    /// at any thread count).
    pub fn map<F: Fn(f32) -> f32 + Sync>(&self, f: F) -> Self {
        Tensor { data: crate::par_kernels::map_into(&self.data, f), shape: self.shape.clone() }
    }

    /// Applies `f` in place to every element (chunk-parallel for large
    /// tensors).
    pub fn map_inplace<F: Fn(f32) -> f32 + Sync>(&mut self, f: F) {
        crate::par_kernels::map_inplace(&mut self.data, f);
    }

    /// Broadcasting binary operation (chunk-parallel for large tensors).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn zip<F: Fn(f32, f32) -> f32 + Sync>(&self, other: &Tensor, f: F) -> Self {
        if self.shape == other.shape {
            let data = crate::par_kernels::zip_same(&self.data, &other.data, f);
            return Tensor { data, shape: self.shape.clone() };
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape)
            .unwrap_or_else(|e| panic!("zip failed: {e}"));
        let a = self.broadcast_to(&out_shape);
        let b = other.broadcast_to(&out_shape);
        let data = crate::par_kernels::zip_same(&a.data, &b.data, f);
        Tensor { data, shape: out_shape }
    }

    /// Elementwise (broadcasting) addition.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise (broadcasting) division.
    pub fn div(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|v| -v)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Self {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Self {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Self {
        self.map(f32::sqrt)
    }

    /// Elementwise power.
    pub fn powf(&self, p: f32) -> Self {
        self.map(|v| v.powf(p))
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|v| v.clamp(lo, hi))
    }

    // ------------------------------------------------------------ reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(!self.data.is_empty(), "min of empty tensor");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn var(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.data.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / self.data.len() as f32
    }

    /// Sum along `axis`, dropping that axis.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of bounds.
    pub fn sum_axis(&self, axis: usize) -> Self {
        self.reduce_axis(axis, 0.0, |acc, v| acc + v)
    }

    /// Mean along `axis`, dropping that axis.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of bounds.
    pub fn mean_axis(&self, axis: usize) -> Self {
        let n = self.shape[axis] as f32;
        self.sum_axis(axis).map(|v| v / n)
    }

    /// Maximum along `axis`, dropping that axis.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of bounds.
    pub fn max_axis(&self, axis: usize) -> Self {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum along the last axis; shape drops that axis.
    ///
    /// # Panics
    ///
    /// Panics on a rank-0 tensor.
    pub fn argmax_last_axis(&self) -> Vec<usize> {
        assert!(self.rank() >= 1, "argmax requires rank >= 1");
        let last = *self.shape.last().expect("nonzero rank");
        assert!(last > 0, "argmax along empty axis");
        self.data
            .chunks(last)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    fn reduce_axis<F: Fn(f32, f32) -> f32>(&self, axis: usize, init: f32, f: F) -> Self {
        assert!(axis < self.rank(), "axis out of bounds");
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut new_shape = self.shape.clone();
        new_shape.remove(axis);
        let mut data = vec![init; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                for i in 0..inner {
                    let src = o * mid * inner + m * inner + i;
                    let dst = o * inner + i;
                    data[dst] = f(data[dst], self.data[src]);
                }
            }
        }
        Tensor { data, shape: new_shape }
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-1 or the lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot requires rank-1 tensors");
        assert_eq!(other.rank(), 1, "dot requires rank-1 tensors");
        assert_eq!(self.numel(), other.numel(), "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum()
    }

    /// Euclidean (L2) norm of all elements.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }
}

impl std::ops::Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs)
    }
}

impl std::ops::Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs)
    }
}

impl std::ops::Mul for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs)
    }
}

impl std::ops::Div for &Tensor {
    type Output = Tensor;
    fn div(self, rhs: &Tensor) -> Tensor {
        Tensor::div(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.get(&[1, 2]), 6.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    fn try_from_vec_rejects_mismatch() {
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn eye_and_arange() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[1, 1]), 1.0);
        assert_eq!(i.get(&[0, 2]), 0.0);
        assert_eq!(Tensor::arange(4).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.as_slice()[0], 0.0);
        assert!((t.as_slice()[4] - 1.0).abs() < 1e-6);
        assert!((t.as_slice()[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        assert!((t.var() - 1.0).abs() < 0.1, "var {}", t.var());
    }

    #[test]
    fn transpose_and_permute_agree() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert_eq!(t.transpose(), t.permute(&[1, 0]));
        assert_eq!(t.transpose().shape(), &[3, 2]);
        assert_eq!(t.transpose().get(&[2, 1]), 5.0);
    }

    #[test]
    fn permute_rank3() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.get(&[3, 1, 2]), t.get(&[1, 2, 3]));
    }

    #[test]
    fn broadcast_to_materializes() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = t.broadcast_to(&[2, 3]);
        assert_eq!(b.as_slice(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn zip_broadcasts() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let c = a.add(&b);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
    }

    #[test]
    fn narrow_middle_axis() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let n = t.narrow(1, 1, 2);
        assert_eq!(n.shape(), &[2, 2, 4]);
        assert_eq!(n.get(&[0, 0, 0]), t.get(&[0, 1, 0]));
        assert_eq!(n.get(&[1, 1, 3]), t.get(&[1, 2, 3]));
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn stack_adds_axis() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn index_select_rows() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]);
        let s = t.index_select(0, &[2, 0]);
        assert_eq!(s.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.sum_axis(0).as_slice(), &[4.0, 6.0]);
        assert_eq!(t.sum_axis(1).as_slice(), &[3.0, 7.0]);
        assert_eq!(t.mean_axis(1).as_slice(), &[1.5, 3.5]);
        assert_eq!(t.max_axis(0).as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn argmax_last_axis_rows() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.3, 0.1], &[2, 3]);
        assert_eq!(t.argmax_last_axis(), vec![1, 1]);
    }

    #[test]
    fn operators_delegate() {
        let a = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!((&a + &b).as_slice(), &[3.0, 6.0]);
        assert_eq!((&a - &b).as_slice(), &[1.0, 2.0]);
        assert_eq!((&a * &b).as_slice(), &[2.0, 8.0]);
        assert_eq!((&a / &b).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        assert_eq!(a.dot(&b), 7.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
        assert_eq!(Tensor::default().item(), 0.0);
    }
}
