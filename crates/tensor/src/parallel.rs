//! Thread-count selection and the ambient parallel policy for the
//! deterministic kernel layer ([`crate::par_kernels`]).
//!
//! Every dense kernel in this crate asks [`active_threads`] how wide to
//! fan out. The answer is resolved from three layers, most specific
//! first:
//!
//! 1. a **thread-local override** installed by [`with_threads`] or
//!    [`adopt_thread_policy`] (serving workers adopt the policy carried
//!    by the pipeline snapshot they hydrate),
//! 2. a **process-global default** set once by [`set_global_threads`]
//!    (the CLI's `--threads` flag),
//! 3. the **environment default**: `AERO_THREADS` if set and valid,
//!    otherwise [`suggested_threads`] capped at [`MAX_KERNEL_THREADS`].
//!
//! Because the kernels are bit-identical at every thread count (see
//! `DESIGN.md` §10), this policy only ever changes wall-clock time —
//! never a single output bit — so it is safe to resolve it ambiently
//! instead of threading a handle through every call site.

use crate::backend::BackendKind;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default cap on kernel worker threads; oversubscribing tiny matmuls
/// past this point only adds spawn overhead.
pub const MAX_KERNEL_THREADS: usize = 8;

/// Hard ceiling accepted from any configuration source.
const THREADS_CEILING: usize = 64;

/// The parallel execution policy for a pipeline: how many worker
/// threads the tensor kernels may fan out over, and which
/// [`BackendKind`] computes each shard.
///
/// Carried by `PipelineSnapshot` so training, sampling, and every
/// serving worker run under one policy. Purely a performance knob —
/// kernel outputs are bit-identical at any thread count and under
/// either backend, which is also why the backend choice is **never
/// persisted**: checkpoints and model artifacts store no backend, so a
/// run checkpointed under one backend resumes bit-identically under the
/// other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
    backend: BackendKind,
}

impl ParallelConfig {
    /// A policy with exactly `threads` workers (clamped to `1..=64`) and
    /// the ambient backend ([`crate::backend::active_backend`]).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.clamp(1, THREADS_CEILING),
            backend: crate::backend::active_backend(),
        }
    }

    /// The single-threaded policy (ambient backend).
    #[must_use]
    pub fn serial() -> Self {
        ParallelConfig::with_threads(1)
    }

    /// The policy resolved from the environment: `AERO_THREADS` if set
    /// to a positive integer, otherwise [`suggested_threads`] capped at
    /// [`MAX_KERNEL_THREADS`]; backend from `AERO_BACKEND` (via the
    /// ambient resolution chain).
    #[must_use]
    pub fn from_env() -> Self {
        ParallelConfig::with_threads(env_default_threads())
    }

    /// The configured worker-thread count (always at least 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured compute backend.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// This policy with the backend replaced by `backend`.
    #[must_use]
    pub fn with_backend(self, backend: BackendKind) -> Self {
        ParallelConfig { backend, ..self }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::from_env()
    }
}

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn env_default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("AERO_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .map_or_else(|| suggested_threads(MAX_KERNEL_THREADS), |n| n.min(THREADS_CEILING))
    })
}

/// The thread count kernels on the current thread should fan out over.
///
/// Resolution order: thread-local override, then the process-global
/// default, then the environment default (`AERO_THREADS`, read once).
#[must_use]
pub fn active_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local != 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    env_default_threads()
}

/// Sets the process-global kernel thread count (clamped to `1..=64`).
/// Thread-local overrides installed by [`with_threads`] or
/// [`adopt_thread_policy`] still win on their threads.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads.clamp(1, THREADS_CEILING), Ordering::Relaxed);
}

/// Installs `config` as the current thread's kernel policy — thread
/// count *and* compute backend — for the rest of the thread's lifetime.
/// Serving workers call this right after hydrating a snapshot so
/// replicas run under the snapshot's policy.
pub fn adopt_thread_policy(config: ParallelConfig) {
    LOCAL_THREADS.with(|c| c.set(config.threads()));
    crate::backend::adopt_backend(config.backend());
}

/// Runs `f` with the current thread's kernel policy temporarily set to
/// `threads` (clamped to `1..=64`), restoring the previous policy on
/// exit — including on panic, so tests can assert unwinding behaviour
/// without poisoning later tests on the same thread.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(|c| {
        let p = c.get();
        c.set(threads.clamp(1, THREADS_CEILING));
        p
    });
    let _restore = Restore(prev);
    f()
}

/// Suggested worker-thread count: the machine's available parallelism,
/// clamped to `cap`. Always at least 1 (`available_parallelism` returns a
/// `NonZero`, and the 4-thread fallback plus the clamp keep the result
/// positive), so callers can divide by it directly.
///
/// # Panics
///
/// Panics if `cap == 0` — a zero-width pool is always a caller bug.
#[must_use]
pub fn suggested_threads(cap: usize) -> usize {
    assert!(cap > 0, "thread cap must be positive");
    std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(4).min(cap)
}

thread_local! {
    static ASSUMED_CORES: Cell<usize> = const { Cell::new(0) };
}

/// The machine's physical parallelism, cached once. The kernel
/// dispatcher clamps fan-out to this: spawning more compute-bound
/// threads than cores only adds context-switch overhead (the exact
/// regression BENCH_kernels.json exposed on a one-core host).
fn machine_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(4)
    })
}

/// The core count the dispatcher plans against: a scoped
/// [`with_assumed_cores`] override if one is installed, otherwise the
/// real machine parallelism.
#[must_use]
pub fn effective_cores() -> usize {
    let assumed = ASSUMED_CORES.with(Cell::get);
    if assumed != 0 {
        assumed
    } else {
        machine_cores()
    }
}

/// Runs `f` pretending the machine has `cores` cores (clamped to at
/// least 1), restoring the real value on exit — including on panic.
///
/// Test/bench hook only: it lets the equivalence suite and CI exercise
/// the parallel dispatch paths on small hosts where the physical-core
/// clamp would otherwise keep every kernel serial. Production code must
/// never install an assumption — oversubscribing real cores is exactly
/// what the clamp exists to prevent.
pub fn with_assumed_cores<R>(cores: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            ASSUMED_CORES.with(|c| c.set(self.0));
        }
    }
    let prev = ASSUMED_CORES.with(|c| {
        let p = c.get();
        c.set(cores.max(1));
        p
    });
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_positive_and_capped() {
        for cap in [1, 2, 8, 64] {
            let n = suggested_threads(cap);
            assert!(n >= 1 && n <= cap, "cap {cap} gave {n}");
        }
    }

    #[test]
    fn cap_one_serializes() {
        assert_eq!(suggested_threads(1), 1);
    }

    #[test]
    #[should_panic(expected = "thread cap must be positive")]
    fn zero_cap_panics() {
        let _ = suggested_threads(0);
    }

    #[test]
    fn config_clamps_to_at_least_one() {
        assert_eq!(ParallelConfig::with_threads(0).threads(), 1);
        assert_eq!(ParallelConfig::with_threads(4).threads(), 4);
        assert_eq!(ParallelConfig::with_threads(10_000).threads(), 64);
        assert_eq!(ParallelConfig::serial().threads(), 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = active_threads();
        let inner = with_threads(3, || {
            assert_eq!(active_threads(), 3);
            with_threads(5, active_threads)
        });
        assert_eq!(inner, 5);
        assert_eq!(active_threads(), outer, "override must be scoped");
    }

    #[test]
    fn with_threads_restores_after_panic() {
        let outer = active_threads();
        let caught = std::panic::catch_unwind(|| {
            with_threads(7, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(active_threads(), outer);
    }

    #[test]
    fn adopt_policy_pins_a_worker_thread() {
        let got = std::thread::spawn(|| {
            adopt_thread_policy(ParallelConfig::with_threads(6));
            active_threads()
        })
        .join()
        .expect("worker");
        assert_eq!(got, 6);
    }

    #[test]
    fn adopt_policy_pins_backend_too() {
        let got = std::thread::spawn(|| {
            adopt_thread_policy(
                ParallelConfig::with_threads(2).with_backend(BackendKind::Reference),
            );
            crate::backend::active_backend()
        })
        .join()
        .expect("worker");
        assert_eq!(got, BackendKind::Reference);
    }

    #[test]
    fn config_carries_ambient_backend_and_override() {
        let cfg = crate::backend::with_backend(BackendKind::Reference, || {
            ParallelConfig::with_threads(3)
        });
        assert_eq!(cfg.backend(), BackendKind::Reference);
        assert_eq!(cfg.with_backend(BackendKind::Blocked).backend(), BackendKind::Blocked);
        assert_eq!(cfg.with_backend(BackendKind::Blocked).threads(), 3);
    }

    #[test]
    fn assumed_cores_scopes_and_restores() {
        let real = effective_cores();
        assert!(real >= 1);
        let inner = with_assumed_cores(5, || {
            assert_eq!(effective_cores(), 5);
            with_assumed_cores(0, effective_cores)
        });
        assert_eq!(inner, 1, "zero clamps to one core");
        assert_eq!(effective_cores(), real, "override must be scoped");
    }

    #[test]
    fn active_threads_is_positive() {
        assert!(active_threads() >= 1);
    }
}
