//! Thread-count selection shared by every crate that fans work out over
//! std threads (dataset rendering, the serving worker pool).

/// Suggested worker-thread count: the machine's available parallelism,
/// clamped to `cap`. Always at least 1 (`available_parallelism` returns a
/// `NonZero`, and the 4-thread fallback plus the clamp keep the result
/// positive), so callers can divide by it directly.
///
/// # Panics
///
/// Panics if `cap == 0` — a zero-width pool is always a caller bug.
#[must_use]
pub fn suggested_threads(cap: usize) -> usize {
    assert!(cap > 0, "thread cap must be positive");
    std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(4).min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_positive_and_capped() {
        for cap in [1, 2, 8, 64] {
            let n = suggested_threads(cap);
            assert!(n >= 1 && n <= cap, "cap {cap} gave {n}");
        }
    }

    #[test]
    fn cap_one_serializes() {
        assert_eq!(suggested_threads(1), 1);
    }

    #[test]
    #[should_panic(expected = "thread cap must be positive")]
    fn zero_cap_panics() {
        let _ = suggested_threads(0);
    }
}
