//! Backend-vs-oracle and parallel-vs-serial equivalence suite for the
//! dense kernel layer.
//!
//! Every assertion here is **byte-for-byte** (`f32::to_bits`), not
//! approximate: the determinism contract of `aero_tensor::par_kernels`
//! is that every dispatched kernel produces the *identical* bit pattern
//! as the single-threaded reference — at every thread count (each output
//! region is written by exactly one thread) **and under every compute
//! backend** (the blocked tiles preserve the per-element accumulation
//! order of the reference row loops, see `backend.rs`). Shapes, strides,
//! and padding are randomized in the proptest style of `properties.rs`;
//! thread counts sweep 1–8 — beyond the container's core count on
//! purpose: oversubscription must not change a single bit either.
//!
//! The dispatcher clamps fan-out to the machine's physical cores, so on
//! a small CI host the parallel paths would never actually run; the
//! sweeps below install `with_assumed_cores(8)` to force genuine
//! fan-out regardless of the host.
//!
//! Small kernels stay below the fan-out work threshold and run serially
//! no matter the policy; the shape ranges below deliberately straddle
//! the threshold so both the gated and the fanned-out paths are hit.
//! Tile-boundary adversaries (dims ±1 of the MR/NR register tile and
//! the KC k-panel, k = 0, single rows/columns, K not a multiple of the
//! q8 block) are pinned explicitly at the bottom.

use aero_tensor::backend::{with_backend, BackendKind, KC, MR, NR};
use aero_tensor::parallel::{with_assumed_cores, with_threads};
use aero_tensor::{Q8Tensor, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The bit pattern of a tensor, for exact comparisons.
fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn assert_bitwise_eq(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    assert_eq!(bits(got), bits(want), "{what}: bit pattern diverged");
}

/// Runs `f` under `backend` at `threads`, pretending the machine has 8
/// cores so the dispatcher's physical-core clamp cannot silently
/// serialize the sweep on a small CI host.
fn run_under<R>(backend: BackendKind, threads: usize, f: impl FnOnce() -> R) -> R {
    with_assumed_cores(8, || with_backend(backend, || with_threads(threads, f)))
}

/// Sweeps `f` over both backends × threads 1–8 and asserts each result
/// is bit-identical to `reference`.
fn assert_all_backends_bitwise<F>(reference: &Tensor, what: &str, f: F)
where
    F: Fn() -> Tensor,
{
    for backend in BackendKind::ALL {
        for threads in 1..=8 {
            let got = run_under(backend, threads, &f);
            assert_eq!(got.shape(), reference.shape(), "{what}: shape ({backend}, {threads}t)");
            assert_eq!(
                bits(&got),
                bits(reference),
                "{what}: diverged under {backend} at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_serial_at_every_thread_count(
        m in 1usize..48,
        k in 0usize..32,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let reference = a.matmul_serial(&b);
        assert_all_backends_bitwise(&reference, "matmul", || a.matmul(&b));
    }

    #[test]
    fn matmul_tile_adversaries_match_serial_under_both_backends(
        mi in 0usize..6,
        ki in 0usize..7,
        ni in 0usize..6,
        seed in 0u64..1000,
    ) {
        // Dims pinned to ±1 of the register tile (MR×NR), the k-panel
        // depth (KC), and non-multiples of the q8 block — the edges
        // where packed-tail handling could silently reorder terms.
        let m = [1usize, MR - 1, MR, MR + 1, 2 * MR + 1, 13][mi];
        let k = [0usize, 1, 31, 33, KC - 1, KC, KC + 1][ki];
        let n = [1usize, NR - 1, NR, NR + 1, 2 * NR - 1, 2 * NR + 1][ni];
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let reference = a.matmul_serial(&b);
        assert_all_backends_bitwise(&reference, "matmul tile adversary", || a.matmul(&b));
    }

    #[test]
    fn q8_matmul_matches_serial_under_both_backends(
        mi in 0usize..5,
        ki in 0usize..6,
        ni in 0usize..5,
        seed in 0u64..1000,
    ) {
        // K straddles the q8 block (32) so dequantized panel packing
        // crosses scale boundaries mid-panel.
        let m = [1usize, 3, MR, MR + 1, 9][mi];
        let k = [1usize, 31, 32, 33, 65, 96][ki];
        let n = [1usize, NR - 1, NR, NR + 1, 40][ni];
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let q = Q8Tensor::quantize(&a);
        let reference = q.matmul_serial(&b);
        assert_all_backends_bitwise(&reference, "q8 matmul", || q.matmul(&b));
    }

    #[test]
    fn softmax_matches_reference_under_both_backends(
        rows in 1usize..40,
        cols in 1usize..48,
        si in 0usize..3,
        seed in 0u64..1000,
    ) {
        let scale = [1.0f32, 8.0, 64.0][si];
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[rows, cols], &mut rng).mul_scalar(scale);
        let reference = run_under(BackendKind::Reference, 1, || x.softmax_last_axis());
        assert_all_backends_bitwise(&reference, "softmax", || x.softmax_last_axis());
    }

    #[test]
    fn bmm_matches_per_batch_serial_matmul(
        nb in 1usize..5,
        m in 1usize..12,
        k in 0usize..10,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[nb, m, k], &mut rng);
        let b = Tensor::randn(&[nb, k, n], &mut rng);
        // Independent reference: batches multiplied one by one with the
        // serial kernel, concatenated in order.
        let mut reference = Tensor::zeros(&[nb, m, n]);
        for i in 0..nb {
            let lhs = a.narrow(0, i, 1).reshape(&[m, k]);
            let rhs = b.narrow(0, i, 1).reshape(&[k, n]);
            let prod = lhs.matmul_serial(&rhs);
            reference.as_mut_slice()[i * m * n..(i + 1) * m * n]
                .copy_from_slice(prod.as_slice());
        }
        assert_all_backends_bitwise(&reference, "bmm", || a.bmm(&b));
    }

    #[test]
    fn conv2d_matches_serial_over_random_strides_and_padding(
        n in 1usize..3,
        cin in 1usize..5,
        cout in 1usize..7,
        h in 3usize..13,
        w in 3usize..13,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        // kh, kw < 4 <= h, w (+ padding), so every window fits.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[n, cin, h, w], &mut rng);
        let wt = Tensor::randn(&[cout, cin, kh, kw], &mut rng);
        let b = Tensor::randn(&[cout], &mut rng);
        let reference = x.conv2d_serial(&wt, Some(&b), stride, pad);
        // kh/kw sample 1..4 and stride 1..3, so this sweep crosses both
        // the blocked backend's direct path (stride-1 1×1/3×3, any pad)
        // and its im2col fallback (2×2, rectangular, strided).
        let what = format!("conv2d {h}x{w} k{kh}x{kw} s{stride} p{pad}");
        assert_all_backends_bitwise(&reference, &what, || x.conv2d(&wt, Some(&b), stride, pad));
    }

    #[test]
    fn conv_transpose2d_is_thread_count_invariant(
        n in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        h in 2usize..8,
        w in 2usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        // col2im scatter-adds overlapping windows, the one kernel where
        // accumulation *order* (not just partitioning) must be pinned.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[n, cin, h, w], &mut rng);
        let wt = Tensor::randn(&[cin, cout, k, k], &mut rng);
        let b = Tensor::randn(&[cout], &mut rng);
        let reference =
            run_under(BackendKind::Reference, 1, || x.conv_transpose2d(&wt, Some(&b), stride, 0));
        assert_all_backends_bitwise(&reference, "conv_transpose2d", || {
            x.conv_transpose2d(&wt, Some(&b), stride, 0)
        });
    }

    #[test]
    fn softmax_attention_chain_is_thread_count_invariant(
        b in 1usize..3,
        t in 1usize..24,
        d in 1usize..16,
        seed in 0u64..1000,
    ) {
        // The attention hot path as the nn crate runs it: scores = q k^T
        // (bmm), softmax over the last axis, then the value product.
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::randn(&[b, t, d], &mut rng);
        let key = Tensor::randn(&[b, t, d], &mut rng);
        let v = Tensor::randn(&[b, t, d], &mut rng);
        let attn = || {
            let scores = q.bmm(&key.permute(&[0, 2, 1])).mul_scalar(1.0 / (d as f32).sqrt());
            scores.softmax_last_axis().bmm(&v)
        };
        let reference = run_under(BackendKind::Reference, 1, attn);
        assert_all_backends_bitwise(&reference, "attention chain", attn);
    }

    #[test]
    fn im2col_col2im_roundtrip_is_thread_count_invariant(
        n in 1usize..3,
        c in 1usize..4,
        h in 3usize..10,
        w in 3usize..10,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        // k < 4 <= h, w (+ padding), so every window fits.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[n, c, h, w], &mut rng);
        let run = |threads: usize| {
            with_assumed_cores(8, || with_threads(threads, || {
                let cols = x.im2col(k, k, stride, pad);
                let back = cols.col2im(&[n, c, h, w], k, k, stride, pad);
                (cols, back)
            }))
        };
        let (cols_ref, back_ref) = run(1);
        for threads in 2..=8 {
            let (cols, back) = run(threads);
            prop_assert_eq!(bits(&cols), bits(&cols_ref), "im2col diverged at {}", threads);
            prop_assert_eq!(bits(&back), bits(&back_ref), "col2im diverged at {}", threads);
        }
    }

    #[test]
    fn pooling_and_upsample_are_thread_count_invariant(
        n in 1usize..3,
        c in 1usize..5,
        hw in 1usize..6,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (h, w) = (hw * k, hw * k);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[n, c, h, w], &mut rng);
        let pools = || (x.avg_pool2d(k), x.max_pool2d(k), x.upsample_nearest2x());
        let reference = with_threads(1, pools);
        for threads in 2..=8 {
            let (avg, mx, up) = with_assumed_cores(8, || with_threads(threads, pools));
            prop_assert_eq!(bits(&avg), bits(&reference.0), "avg_pool diverged at {}", threads);
            prop_assert_eq!(bits(&mx), bits(&reference.1), "max_pool diverged at {}", threads);
            prop_assert_eq!(bits(&up), bits(&reference.2), "upsample diverged at {}", threads);
        }
    }
}

// ---- degenerate shapes the sharding/tiling math must survive exactly ----

#[test]
fn matmul_zero_inner_dim_is_all_zeros_under_both_backends() {
    let a = Tensor::zeros(&[5, 0]);
    let b = Tensor::zeros(&[0, 7]);
    for backend in BackendKind::ALL {
        for threads in 1..=8 {
            let out = run_under(backend, threads, || a.matmul(&b));
            assert_eq!(out.shape(), &[5, 7]);
            assert!(
                out.as_slice().iter().all(|&v| v.to_bits() == 0.0f32.to_bits()),
                "k = 0 must yield the empty sum under {backend}"
            );
        }
    }
}

#[test]
fn single_row_and_single_col_matmul_match_serial() {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::randn(&[1, 33], &mut rng);
    let b = Tensor::randn(&[33, 129], &mut rng);
    assert_all_backends_bitwise(&a.matmul_serial(&b), "single-row matmul", || a.matmul(&b));
    let c = Tensor::randn(&[37, 33], &mut rng);
    let d = Tensor::randn(&[33, 1], &mut rng);
    assert_all_backends_bitwise(&c.matmul_serial(&d), "single-col matmul", || c.matmul(&d));
}

#[test]
fn one_by_one_conv_matches_serial() {
    let mut rng = StdRng::seed_from_u64(8);
    let x = Tensor::randn(&[2, 3, 5, 5], &mut rng);
    let w = Tensor::randn(&[4, 3, 1, 1], &mut rng);
    let b = Tensor::randn(&[4], &mut rng);
    let reference = x.conv2d_serial(&w, Some(&b), 1, 0);
    assert_all_backends_bitwise(&reference, "1x1 conv", || x.conv2d(&w, Some(&b), 1, 0));
}

#[test]
fn wide_direct_conv_with_padding_matches_serial() {
    // Width far past the direct kernel's 16-column tile, with padding,
    // so interior fast-path tiles, border gather tiles, and the ragged
    // final tile all occur in one output row.
    let mut rng = StdRng::seed_from_u64(14);
    let x = Tensor::randn(&[1, 3, 7, 41], &mut rng);
    let w = Tensor::randn(&[5, 3, 3, 3], &mut rng);
    let b = Tensor::randn(&[5], &mut rng);
    let reference = x.conv2d_serial(&w, Some(&b), 1, 1);
    assert_all_backends_bitwise(&reference, "wide 3x3 conv", || x.conv2d(&w, Some(&b), 1, 1));
}

#[test]
fn large_matmul_above_fanout_threshold_matches_serial() {
    // Big enough that the worker pool genuinely engages under the
    // assumed-8-core override (out.len() * 2k well past the retuned
    // work threshold) rather than the gated path.
    let mut rng = StdRng::seed_from_u64(9);
    let a = Tensor::randn(&[96, 704], &mut rng);
    let b = Tensor::randn(&[704, 96], &mut rng);
    let reference = a.matmul_serial(&b);
    assert_all_backends_bitwise(&reference, "large matmul", || a.matmul(&b));
}

#[test]
fn elementwise_map_and_zip_fan_out_bit_identically() {
    // Above the elementwise threshold (64 Ki elements) so the chunked
    // path really runs; chunking preserves element order exactly.
    let mut rng = StdRng::seed_from_u64(10);
    let a = Tensor::randn(&[80_000], &mut rng);
    let b = Tensor::randn(&[80_000], &mut rng);
    let elems = || (a.map(|v| (v * 1.7).tanh()), a.mul(&b));
    let reference = with_threads(1, elems);
    for threads in [2, 4, 8] {
        let got = with_assumed_cores(8, || with_threads(threads, elems));
        assert_bitwise_eq(&got.0, &reference.0, "map");
        assert_bitwise_eq(&got.1, &reference.1, "zip");
    }
}

#[test]
fn large_softmax_above_threshold_is_backend_and_thread_invariant() {
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::randn(&[512, 64], &mut rng).mul_scalar(6.0);
    let reference = run_under(BackendKind::Reference, 1, || x.softmax_last_axis());
    assert_all_backends_bitwise(&reference, "softmax", || x.softmax_last_axis());
}
