//! Parallel-vs-serial equivalence suite for the sharded kernel layer.
//!
//! Every assertion here is **byte-for-byte** (`f32::to_bits`), not
//! approximate: the determinism contract of `aero_tensor::par_kernels`
//! is that the parallel kernels produce the *identical* bit pattern as
//! the single-threaded reference at every thread count, because each
//! output region is written by exactly one thread running the identical
//! serial inner loop. Shapes, strides, and padding are randomized in
//! the proptest style of `properties.rs`, and thread counts sweep 1–8 —
//! beyond the container's core count on purpose: oversubscription must
//! not change a single bit either.
//!
//! Small kernels stay below the fan-out work threshold and run serially
//! no matter the policy; the shape ranges below deliberately straddle
//! the threshold so both the gated and the fanned-out paths are hit.

use aero_tensor::parallel::with_threads;
use aero_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The bit pattern of a tensor, for exact comparisons.
fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn assert_bitwise_eq(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    assert_eq!(bits(got), bits(want), "{what}: bit pattern diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_serial_at_every_thread_count(
        m in 1usize..48,
        k in 0usize..32,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let reference = a.matmul_serial(&b);
        for threads in 1..=8 {
            let par = with_threads(threads, || a.matmul(&b));
            prop_assert_eq!(par.shape(), reference.shape());
            prop_assert_eq!(
                bits(&par), bits(&reference),
                "matmul [{}, {}] x [{}, {}] diverged at {} threads",
                m, k, k, n, threads
            );
        }
    }

    #[test]
    fn bmm_matches_per_batch_serial_matmul(
        nb in 1usize..5,
        m in 1usize..12,
        k in 0usize..10,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[nb, m, k], &mut rng);
        let b = Tensor::randn(&[nb, k, n], &mut rng);
        // Independent reference: batches multiplied one by one with the
        // serial kernel, concatenated in order.
        let mut reference = Tensor::zeros(&[nb, m, n]);
        for i in 0..nb {
            let lhs = a.narrow(0, i, 1).reshape(&[m, k]);
            let rhs = b.narrow(0, i, 1).reshape(&[k, n]);
            let prod = lhs.matmul_serial(&rhs);
            reference.as_mut_slice()[i * m * n..(i + 1) * m * n]
                .copy_from_slice(prod.as_slice());
        }
        for threads in 1..=8 {
            let par = with_threads(threads, || a.bmm(&b));
            prop_assert_eq!(
                bits(&par), bits(&reference),
                "bmm [{}, {}, {}] diverged at {} threads", nb, m, k, threads
            );
        }
    }

    #[test]
    fn conv2d_matches_serial_over_random_strides_and_padding(
        n in 1usize..3,
        cin in 1usize..5,
        cout in 1usize..7,
        h in 3usize..13,
        w in 3usize..13,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        // kh, kw < 4 <= h, w (+ padding), so every window fits.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[n, cin, h, w], &mut rng);
        let wt = Tensor::randn(&[cout, cin, kh, kw], &mut rng);
        let b = Tensor::randn(&[cout], &mut rng);
        let reference = x.conv2d_serial(&wt, Some(&b), stride, pad);
        for threads in 1..=8 {
            let par = with_threads(threads, || x.conv2d(&wt, Some(&b), stride, pad));
            prop_assert_eq!(
                bits(&par), bits(&reference),
                "conv2d {}x{} k{}x{} s{} p{} diverged at {} threads",
                h, w, kh, kw, stride, pad, threads
            );
        }
    }

    #[test]
    fn conv_transpose2d_is_thread_count_invariant(
        n in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        h in 2usize..8,
        w in 2usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        // col2im scatter-adds overlapping windows, the one kernel where
        // accumulation *order* (not just partitioning) must be pinned.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[n, cin, h, w], &mut rng);
        let wt = Tensor::randn(&[cin, cout, k, k], &mut rng);
        let b = Tensor::randn(&[cout], &mut rng);
        let reference = with_threads(1, || x.conv_transpose2d(&wt, Some(&b), stride, 0));
        for threads in 2..=8 {
            let par = with_threads(threads, || x.conv_transpose2d(&wt, Some(&b), stride, 0));
            prop_assert_eq!(
                bits(&par), bits(&reference),
                "conv_transpose2d diverged at {} threads", threads
            );
        }
    }

    #[test]
    fn softmax_attention_chain_is_thread_count_invariant(
        b in 1usize..3,
        t in 1usize..24,
        d in 1usize..16,
        seed in 0u64..1000,
    ) {
        // The attention hot path as the nn crate runs it: scores = q k^T
        // (bmm), softmax over the last axis, then the value product.
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::randn(&[b, t, d], &mut rng);
        let key = Tensor::randn(&[b, t, d], &mut rng);
        let v = Tensor::randn(&[b, t, d], &mut rng);
        let attn = |threads: usize| {
            with_threads(threads, || {
                let scores = q.bmm(&key.permute(&[0, 2, 1])).mul_scalar(1.0 / (d as f32).sqrt());
                scores.softmax_last_axis().bmm(&v)
            })
        };
        let reference = attn(1);
        for threads in 2..=8 {
            let par = attn(threads);
            prop_assert_eq!(
                bits(&par), bits(&reference),
                "attention chain diverged at {} threads", threads
            );
        }
    }

    #[test]
    fn im2col_col2im_roundtrip_is_thread_count_invariant(
        n in 1usize..3,
        c in 1usize..4,
        h in 3usize..10,
        w in 3usize..10,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        // k < 4 <= h, w (+ padding), so every window fits.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[n, c, h, w], &mut rng);
        let run = |threads: usize| {
            with_threads(threads, || {
                let cols = x.im2col(k, k, stride, pad);
                let back = cols.col2im(&[n, c, h, w], k, k, stride, pad);
                (cols, back)
            })
        };
        let (cols_ref, back_ref) = run(1);
        for threads in 2..=8 {
            let (cols, back) = run(threads);
            prop_assert_eq!(bits(&cols), bits(&cols_ref), "im2col diverged at {}", threads);
            prop_assert_eq!(bits(&back), bits(&back_ref), "col2im diverged at {}", threads);
        }
    }

    #[test]
    fn pooling_and_upsample_are_thread_count_invariant(
        n in 1usize..3,
        c in 1usize..5,
        hw in 1usize..6,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (h, w) = (hw * k, hw * k);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[n, c, h, w], &mut rng);
        let reference = with_threads(1, || {
            (x.avg_pool2d(k), x.max_pool2d(k), x.upsample_nearest2x())
        });
        for threads in 2..=8 {
            let (avg, mx, up) = with_threads(threads, || {
                (x.avg_pool2d(k), x.max_pool2d(k), x.upsample_nearest2x())
            });
            prop_assert_eq!(bits(&avg), bits(&reference.0), "avg_pool diverged at {}", threads);
            prop_assert_eq!(bits(&mx), bits(&reference.1), "max_pool diverged at {}", threads);
            prop_assert_eq!(bits(&up), bits(&reference.2), "upsample diverged at {}", threads);
        }
    }
}

// ---- degenerate shapes the sharding math must survive exactly ----

#[test]
fn matmul_zero_inner_dim_is_all_zeros_at_every_thread_count() {
    let a = Tensor::zeros(&[5, 0]);
    let b = Tensor::zeros(&[0, 7]);
    for threads in 1..=8 {
        let out = with_threads(threads, || a.matmul(&b));
        assert_eq!(out.shape(), &[5, 7]);
        assert!(out.as_slice().iter().all(|&v| v.to_bits() == 0.0f32.to_bits()));
    }
}

#[test]
fn single_row_matmul_matches_serial() {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::randn(&[1, 33], &mut rng);
    let b = Tensor::randn(&[33, 129], &mut rng);
    let reference = a.matmul_serial(&b);
    for threads in 1..=8 {
        let par = with_threads(threads, || a.matmul(&b));
        assert_bitwise_eq(&par, &reference, "single-row matmul");
    }
}

#[test]
fn one_by_one_conv_matches_serial() {
    let mut rng = StdRng::seed_from_u64(8);
    let x = Tensor::randn(&[2, 3, 5, 5], &mut rng);
    let w = Tensor::randn(&[4, 3, 1, 1], &mut rng);
    let b = Tensor::randn(&[4], &mut rng);
    let reference = x.conv2d_serial(&w, Some(&b), 1, 0);
    for threads in 1..=8 {
        let par = with_threads(threads, || x.conv2d(&w, Some(&b), 1, 0));
        assert_bitwise_eq(&par, &reference, "1x1 conv");
    }
}

#[test]
fn large_matmul_above_fanout_threshold_matches_serial() {
    // Big enough that the worker pool genuinely engages (out.len() *
    // 2k well past the work threshold) rather than the gated path.
    let mut rng = StdRng::seed_from_u64(9);
    let a = Tensor::randn(&[96, 64], &mut rng);
    let b = Tensor::randn(&[64, 96], &mut rng);
    let reference = a.matmul_serial(&b);
    for threads in [2, 3, 4, 5, 8] {
        let par = with_threads(threads, || a.matmul(&b));
        assert_bitwise_eq(&par, &reference, "large matmul");
    }
}

#[test]
fn elementwise_map_and_zip_fan_out_bit_identically() {
    // Above the elementwise threshold (64 Ki elements) so the chunked
    // path really runs; chunking preserves element order exactly.
    let mut rng = StdRng::seed_from_u64(10);
    let a = Tensor::randn(&[80_000], &mut rng);
    let b = Tensor::randn(&[80_000], &mut rng);
    let reference = with_threads(1, || (a.map(|v| (v * 1.7).tanh()), a.mul(&b)));
    for threads in [2, 4, 8] {
        let got = with_threads(threads, || (a.map(|v| (v * 1.7).tanh()), a.mul(&b)));
        assert_bitwise_eq(&got.0, &reference.0, "map");
        assert_bitwise_eq(&got.1, &reference.1, "zip");
    }
}

#[test]
fn large_softmax_above_threshold_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::randn(&[256, 64], &mut rng).mul_scalar(6.0);
    let reference = with_threads(1, || x.softmax_last_axis());
    for threads in [2, 4, 8] {
        let par = with_threads(threads, || x.softmax_last_axis());
        assert_bitwise_eq(&par, &reference, "softmax");
    }
}
