//! Property-based tests for q8 block quantization: round-trip error
//! bounds over random tensors, determinism, and the parallel/serial
//! bitwise contract of the quantized matmul.

use aero_tensor::{parallel, Q8Tensor, Tensor, Q8_BLOCK};
use proptest::prelude::*;

fn tensor_values() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1000.0f32..1000.0, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per block, dequantization error is at most half a quantization
    /// step: |x - scale * q| <= scale / 2 = block_max_abs / 254.
    #[test]
    fn round_trip_error_bounded_per_block(data in tensor_values()) {
        let n = data.len();
        let t = Tensor::from_vec(data.clone(), &[n]);
        let q = Q8Tensor::quantize(&t);
        let deq = q.dequantize();
        for (b, chunk) in t.as_slice().chunks(Q8_BLOCK).enumerate() {
            let max_abs = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let bound = max_abs / 254.0 + max_abs * 1e-6;
            for (i, (&x, &y)) in
                chunk.iter().zip(&deq.as_slice()[b * Q8_BLOCK..]).enumerate()
            {
                let err = (x - y).abs();
                prop_assert!(
                    err <= bound,
                    "block {b} elem {i}: |{x} - {y}| = {err} > {bound}"
                );
            }
        }
    }

    /// Quantizing twice (and re-quantizing the dequantized tensor's own
    /// dequantization) is stable — the fixed point is reached after one
    /// round trip.
    #[test]
    fn quantize_is_deterministic_and_idempotent_after_one_trip(data in tensor_values()) {
        let n = data.len();
        let t = Tensor::from_vec(data.clone(), &[n]);
        let q1 = Q8Tensor::quantize(&t);
        let q2 = Q8Tensor::quantize(&t);
        prop_assert_eq!(&q1, &q2);
        let deq = q1.dequantize();
        let q3 = Q8Tensor::quantize(&deq);
        prop_assert_eq!(q3.dequantize(), deq);
    }

    /// Blocks never cross row boundaries: quantizing a [rows, cols]
    /// tensor equals quantizing each row independently.
    #[test]
    fn rows_quantize_independently(
        rows in 1usize..5,
        cols in 1usize..70,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[rows, cols], &mut rng).mul_scalar(50.0);
        let whole = Q8Tensor::quantize(&t).dequantize();
        for r in 0..rows {
            let row =
                Tensor::from_vec(t.as_slice()[r * cols..(r + 1) * cols].to_vec(), &[1, cols]);
            let row_deq = Q8Tensor::quantize(&row).dequantize();
            prop_assert_eq!(
                &whole.as_slice()[r * cols..(r + 1) * cols],
                row_deq.as_slice(),
                "row {} dequantized differently in the full tensor", r
            );
        }
    }

    /// The q8 matmul is bit-identical to its serial oracle at any thread
    /// count, the same contract the dense kernels uphold.
    #[test]
    fn q8_matmul_parallel_matches_serial_bitwise(
        m in 1usize..6,
        k in 1usize..80,
        n in 1usize..6,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Q8Tensor::quantize(&Tensor::randn(&[m, k], &mut rng));
        let b = Tensor::randn(&[k, n], &mut rng);
        let serial = a.matmul_serial(&b);
        let par = parallel::with_threads(threads, || a.matmul(&b));
        let sb: Vec<u32> = serial.as_slice().iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u32> = par.as_slice().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(sb, pb);
    }

    /// Stored parts survive a round trip through from_parts — the path
    /// the artifact loader takes.
    #[test]
    fn parts_round_trip(data in tensor_values()) {
        let n = data.len();
        let q = Q8Tensor::quantize(&Tensor::from_vec(data.clone(), &[n]));
        let back = Q8Tensor::from_parts(
            q.shape(),
            q.scales().to_vec(),
            q.quants().to_vec(),
        ).unwrap();
        prop_assert_eq!(back, q);
    }
}
