//! Property-based tests for tensor invariants.

use aero_tensor::{broadcast_shapes, covariance, matrix_sqrt_psd, Tensor};
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn broadcast_is_commutative(a in small_shape(), b in small_shape()) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        prop_assert_eq!(ab.is_ok(), ba.is_ok());
        if let (Ok(x), Ok(y)) = (ab, ba) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn broadcast_with_self_is_identity(a in small_shape()) {
        prop_assert_eq!(broadcast_shapes(&a, &a).unwrap(), a);
    }

    #[test]
    fn reshape_preserves_data(data in prop::collection::vec(-100.0f32..100.0, 1..30)) {
        let n = data.len();
        let t = Tensor::from_vec(data.clone(), &[n]);
        let r = t.reshape(&[1, n]).reshape(&[n, 1]).flatten();
        prop_assert_eq!(r.as_slice(), &data[..]);
    }

    #[test]
    fn softmax_rows_sum_to_one(rows in 1usize..5, cols in 1usize..6, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[rows, cols], &mut rng).mul_scalar(10.0);
        let s = t.softmax_last_axis();
        for row in s.as_slice().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn add_commutes_under_broadcast(seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[3, 1, 4], &mut rng);
        let b = Tensor::randn(&[2, 4], &mut rng);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn matmul_identity_is_noop(n in 1usize..6, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[n, n], &mut rng);
        let prod = a.matmul(&Tensor::eye(n));
        let err = prod.sub(&a).abs().max();
        prop_assert!(err < 1e-5);
    }

    #[test]
    fn transpose_is_involution(r in 1usize..6, c in 1usize..6, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[r, c], &mut rng);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matrix_sqrt_round_trip(n in 1usize..5, seed in 0u64..200) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[n, n], &mut rng);
        let spd = a.matmul(&a.transpose()).add(&Tensor::eye(n).mul_scalar(0.5));
        let s = matrix_sqrt_psd(&spd).unwrap();
        let err = s.matmul(&s).sub(&spd).abs().max();
        let scale = spd.abs().max().max(1.0);
        prop_assert!(err < 1e-2 * scale, "err={} scale={}", err, scale);
    }

    #[test]
    fn covariance_is_symmetric_psd_diag(seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[16, 3], &mut rng);
        let (_, cov) = covariance(&x);
        for i in 0..3 {
            prop_assert!(cov.get(&[i, i]) >= 0.0);
            for j in 0..3 {
                prop_assert!((cov.get(&[i, j]) - cov.get(&[j, i])).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn narrow_concat_round_trip(seed in 0u64..500, split in 1usize..4) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[4, 5], &mut rng);
        let split = split.min(3);
        let a = t.narrow(0, 0, split);
        let b = t.narrow(0, split, 4 - split);
        prop_assert_eq!(Tensor::concat(&[&a, &b], 0), t);
    }
}

// ---- shape-rule edge cases: zero-sized axes, rank-0, strides ----

fn shape_with_zeros() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..4, 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strides_are_row_major(shape in shape_with_zeros()) {
        use aero_tensor::strides_for;
        let s = strides_for(&shape);
        prop_assert_eq!(s.len(), shape.len());
        if let Some(&last) = s.last() {
            prop_assert_eq!(last, 1);
        }
        for i in 0..shape.len().saturating_sub(1) {
            prop_assert_eq!(s[i], s[i + 1] * shape[i + 1]);
        }
        // For fully positive shapes the last element's linear offset is
        // numel - 1.
        if shape.iter().all(|&d| d > 0) {
            let numel: usize = shape.iter().product();
            let offset: usize =
                shape.iter().zip(&s).map(|(&d, &st)| (d - 1) * st).sum();
            prop_assert_eq!(offset, numel - 1);
        }
    }

    #[test]
    fn rank0_broadcasts_with_anything(a in shape_with_zeros()) {
        let out = broadcast_shapes(&[], &a).unwrap();
        prop_assert_eq!(out, a);
    }

    #[test]
    fn zero_axes_survive_broadcast_with_ones(a in shape_with_zeros()) {
        let ones = vec![1usize; a.len()];
        let out = broadcast_shapes(&a, &ones).unwrap();
        prop_assert_eq!(out, a);
    }

    #[test]
    fn zero_axis_against_wider_axis_is_rejected(n in 2usize..5) {
        prop_assert!(broadcast_shapes(&[0], &[n]).is_err());
    }

    #[test]
    fn broadcast_is_absorbing(a in shape_with_zeros(), b in shape_with_zeros()) {
        // broadcast(broadcast(a, b), a) == broadcast(a, b): the joint
        // shape absorbs its inputs.
        if let Ok(ab) = broadcast_shapes(&a, &b) {
            prop_assert_eq!(broadcast_shapes(&ab, &a).unwrap(), ab);
        }
    }

    #[test]
    fn broadcast_then_reduce_round_trips(m in 1usize..5, k in 1usize..5, seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        // Broadcasting [m] against [k, m] then summing the broadcast axis
        // must recover k copies of the original vector.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m], &mut rng);
        let wide = a.add(&Tensor::zeros(&[k, m]));
        prop_assert_eq!(wide.shape(), &[k, m]);
        let reduced = wide.sum_axis(0);
        let expect = a.mul_scalar(k as f32);
        for (x, y) in reduced.as_slice().iter().zip(expect.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4 * k as f32);
        }
    }
}
