//! The single-file binary artifact format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "AMDL" | u32 format_version | u32 kv_count | u32 tensor_count
//! u64 data_offset                       (absolute, 32-byte aligned)
//! kv section      per entry: u32 key_len | key | u32 val_len | val
//!                 (entries sorted by key — renders byte-stable)
//! tensor table    per entry: u32 name_len | name | u8 dtype |
//!                 u32 rank | u32 dims[rank] |
//!                 u64 offset (relative to data section) | u64 byte_len
//! zero padding to data_offset
//! data section    payloads, each at a 32-byte-aligned offset
//! u32 crc32       over every preceding byte
//! ```
//!
//! The trailing CRC (via `aero_nn::integrity::crc32`) is verified
//! **before** any other byte is interpreted, so a bit flip anywhere —
//! header, metadata, tensor data — surfaces as a typed
//! [`ModelError::Corrupt`], never as a garbage model or a panic. The
//! format version is `aerodiffusion`'s [`PIPELINE_FORMAT_VERSION`], the
//! same constant the directory-manifest layer uses, so the two
//! persistence layers cannot silently diverge.
//!
//! `f32` payloads are raw little-endian values. `q8` payloads are the
//! per-block scales (`f32`) followed by the padded quantized values
//! (`i8`), with block geometry implied by the tensor's shape (see
//! [`aero_tensor::quant`]).

use crate::mmap::ArtifactBytes;
use crate::ModelError;
use aero_nn::integrity::{crc32, write_atomic};
use aero_tensor::{Q8Tensor, Tensor, Q8_BLOCK};
use aerodiffusion::PIPELINE_FORMAT_VERSION;
use std::collections::BTreeMap;
use std::path::Path;

const MAGIC: &[u8; 4] = b"AMDL";

/// Alignment of the data section and of every payload within it.
pub const DATA_ALIGN: usize = 32;

/// magic + version + kv_count + tensor_count + data_offset.
const HEADER_LEN: usize = 4 + 4 + 4 + 4 + 8;

/// Element encoding of one stored tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// Raw little-endian `f32` values.
    F32,
    /// Block-quantized q8: per-block `f32` scales then padded `i8`
    /// values (see [`aero_tensor::quant`]).
    Q8,
}

impl DType {
    fn to_byte(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::Q8 => 1,
        }
    }

    fn from_byte(b: u8) -> Result<DType, ModelError> {
        match b {
            0 => Ok(DType::F32),
            1 => Ok(DType::Q8),
            other => Err(ModelError::corrupt(format!("unknown dtype byte {other}"))),
        }
    }
}

/// One entry of the tensor-info table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorInfo {
    /// Unique tensor name (`<module>.<index>` for pipeline exports).
    pub name: String,
    /// Element encoding.
    pub dtype: DType,
    /// Logical shape.
    pub shape: Vec<usize>,
    /// Payload offset relative to the data section, 32-byte aligned.
    pub offset: u64,
    /// Payload length in bytes.
    pub byte_len: u64,
}

/// Per-row q8 geometry for `shape`: `(rows, row_len, blocks_per_row)`,
/// matching [`aero_tensor::quant`].
fn q8_geometry(shape: &[usize]) -> (usize, usize, usize) {
    let row_len = shape.last().copied().unwrap_or(1).max(1);
    let numel: usize = shape.iter().product();
    let rows = numel / row_len;
    let bpr = row_len.div_ceil(Q8_BLOCK).max(1);
    (rows, row_len, bpr)
}

/// Expected q8 payload length for `shape`: per-block scales plus
/// *unpadded* row-major quants. The in-memory [`Q8Tensor`] pads each
/// row's last block to a full [`Q8_BLOCK`] for the kernels; storing the
/// padding would make small-row tensors larger than `f32`, so the
/// artifact keeps only the real elements and the loader re-pads.
fn q8_payload_len(shape: &[usize]) -> usize {
    let (rows, row_len, bpr) = q8_geometry(shape);
    rows * bpr * 4 + rows * row_len
}

fn align_up(n: usize) -> usize {
    n.div_ceil(DATA_ALIGN) * DATA_ALIGN
}

/// Builds an artifact in memory, then renders it to bytes or writes it
/// atomically. Key/value entries are sorted and tensor payload layout is
/// a pure function of insertion order, so the same inputs always render
/// the same bytes.
#[derive(Debug, Default)]
pub struct ArtifactBuilder {
    kv: BTreeMap<String, String>,
    tensors: Vec<(String, DType, Vec<usize>, Vec<u8>)>,
}

impl ArtifactBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ArtifactBuilder {
        ArtifactBuilder::default()
    }

    /// Sets a metadata key (last write wins).
    pub fn set(&mut self, key: &str, value: &str) {
        self.kv.insert(key.to_string(), value.to_string());
    }

    /// Adds a dense `f32` tensor.
    pub fn add_f32(&mut self, name: &str, t: &Tensor) {
        let mut payload = Vec::with_capacity(t.numel() * 4);
        for &v in t.as_slice() {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.tensors.push((name.to_string(), DType::F32, t.shape().to_vec(), payload));
    }

    /// Adds a block-quantized tensor. The payload stores all scales,
    /// then each row's quants with the last block's padding stripped
    /// (within a padded row, element `p` lives at offset `p`, so the
    /// real elements are the row prefix).
    pub fn add_q8(&mut self, name: &str, q: &Q8Tensor) {
        let (rows, row_len, bpr) = q8_geometry(q.shape());
        let mut payload = Vec::with_capacity(q.scales().len() * 4 + rows * row_len);
        for &s in q.scales() {
            payload.extend_from_slice(&s.to_le_bytes());
        }
        for row in 0..rows {
            let start = row * bpr * Q8_BLOCK;
            payload.extend(q.quants()[start..start + row_len].iter().map(|&v| v as u8));
        }
        self.tensors.push((name.to_string(), DType::Q8, q.shape().to_vec(), payload));
    }

    /// Renders the artifact to its on-disk byte form (CRC included).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut kv_section = Vec::new();
        for (k, v) in &self.kv {
            kv_section.extend_from_slice(&(k.len() as u32).to_le_bytes());
            kv_section.extend_from_slice(k.as_bytes());
            kv_section.extend_from_slice(&(v.len() as u32).to_le_bytes());
            kv_section.extend_from_slice(v.as_bytes());
        }

        // Lay out payloads first so the table can carry final offsets.
        let mut offsets = Vec::with_capacity(self.tensors.len());
        let mut data_len = 0usize;
        for (_, _, _, payload) in &self.tensors {
            offsets.push(data_len as u64);
            data_len = align_up(data_len + payload.len());
        }

        let mut table = Vec::new();
        for ((name, dtype, shape, payload), &offset) in self.tensors.iter().zip(&offsets) {
            table.extend_from_slice(&(name.len() as u32).to_le_bytes());
            table.extend_from_slice(name.as_bytes());
            table.push(dtype.to_byte());
            table.extend_from_slice(&(shape.len() as u32).to_le_bytes());
            for &d in shape {
                table.extend_from_slice(&(d as u32).to_le_bytes());
            }
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        }

        let data_offset = align_up(HEADER_LEN + kv_section.len() + table.len());
        let mut out = Vec::with_capacity(data_offset + data_len + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&PIPELINE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.kv.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        out.extend_from_slice(&(data_offset as u64).to_le_bytes());
        out.extend_from_slice(&kv_section);
        out.extend_from_slice(&table);
        out.resize(data_offset, 0);
        for ((_, _, _, payload), &offset) in self.tensors.iter().zip(&offsets) {
            out.resize(data_offset + offset as usize, 0);
            out.extend_from_slice(payload);
        }
        out.resize(data_offset + data_len, 0);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Writes the artifact crash-safely (tmp + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, path: &Path) -> Result<(), ModelError> {
        write_atomic(path, &self.to_bytes())?;
        Ok(())
    }
}

/// Bounds-checked little-endian reader over the artifact bytes. Every
/// read that would run past the end returns [`ModelError::Corrupt`]
/// instead of panicking.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ModelError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ModelError::corrupt(format!("truncated reading {what}")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ModelError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ModelError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ModelError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn string(&mut self, what: &str) -> Result<String, ModelError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ModelError::corrupt(format!("{what} is not utf-8")))
    }
}

/// A parsed, CRC-verified artifact. Tensor payloads stay in the backing
/// [`ArtifactBytes`] (usually a zero-copy mapping) until decoded.
#[derive(Debug)]
pub struct ModelArtifact {
    bytes: ArtifactBytes,
    kv: BTreeMap<String, String>,
    tensors: Vec<TensorInfo>,
    data_offset: usize,
    data_len: usize,
}

impl ModelArtifact {
    /// Opens and verifies an artifact file, preferring a zero-copy
    /// mapping.
    ///
    /// # Errors
    ///
    /// I/O failures, CRC mismatch, version mismatch, or any structural
    /// damage — all typed, never a panic.
    pub fn read(path: &Path) -> Result<ModelArtifact, ModelError> {
        ModelArtifact::parse(ArtifactBytes::open(path)?)
    }

    /// Verifies and parses an artifact already in memory.
    ///
    /// # Errors
    ///
    /// Same contract as [`ModelArtifact::read`], minus I/O.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<ModelArtifact, ModelError> {
        ModelArtifact::parse(ArtifactBytes::from_vec(bytes))
    }

    fn parse(bytes: ArtifactBytes) -> Result<ModelArtifact, ModelError> {
        // CRC first: nothing else is interpreted until the whole file
        // checks out.
        if bytes.len() < HEADER_LEN + 4 {
            return Err(ModelError::corrupt(format!(
                "file too short for an artifact ({} bytes)",
                bytes.len()
            )));
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes([
            bytes[bytes.len() - 4],
            bytes[bytes.len() - 3],
            bytes[bytes.len() - 2],
            bytes[bytes.len() - 1],
        ]);
        let actual = crc32(body);
        if stored != actual {
            return Err(ModelError::corrupt(format!(
                "crc mismatch: stored {stored:08x}, computed {actual:08x}"
            )));
        }

        let mut cur = Cursor { bytes: body, pos: 0 };
        if cur.take(4, "magic")? != MAGIC {
            return Err(ModelError::corrupt("bad magic (not an AMDL artifact)".into()));
        }
        let version = cur.u32("format version")?;
        if version != PIPELINE_FORMAT_VERSION {
            return Err(ModelError::VersionMismatch {
                found: version,
                supported: PIPELINE_FORMAT_VERSION,
            });
        }
        let kv_count = cur.u32("kv count")? as usize;
        let tensor_count = cur.u32("tensor count")? as usize;
        let data_offset = cur.u64("data offset")? as usize;
        if data_offset > body.len() {
            return Err(ModelError::corrupt(format!(
                "data offset {data_offset} beyond file body ({} bytes)",
                body.len()
            )));
        }
        let data_len = body.len() - data_offset;

        let mut kv = BTreeMap::new();
        for i in 0..kv_count {
            let key = cur.string(&format!("kv key {i}"))?;
            let value = cur.string(&format!("kv value {i}"))?;
            kv.insert(key, value);
        }

        let mut tensors = Vec::with_capacity(tensor_count);
        for i in 0..tensor_count {
            let name = cur.string(&format!("tensor name {i}"))?;
            let dtype = DType::from_byte(cur.u8(&format!("tensor dtype {i}"))?)?;
            let rank = cur.u32(&format!("tensor rank {i}"))? as usize;
            if rank > 8 {
                return Err(ModelError::corrupt(format!("tensor {name}: rank {rank} > 8")));
            }
            let mut shape = Vec::with_capacity(rank);
            for d in 0..rank {
                shape.push(cur.u32(&format!("tensor {name} dim {d}"))? as usize);
            }
            let offset = cur.u64(&format!("tensor {name} offset"))?;
            let byte_len = cur.u64(&format!("tensor {name} byte length"))?;
            let end = offset.checked_add(byte_len).filter(|&e| e <= data_len as u64);
            if end.is_none() {
                return Err(ModelError::corrupt(format!(
                    "tensor {name}: payload {offset}+{byte_len} outside data section \
                     ({data_len} bytes)"
                )));
            }
            let expected = match dtype {
                DType::F32 => shape.iter().product::<usize>() * 4,
                DType::Q8 => q8_payload_len(&shape),
            };
            if byte_len != expected as u64 {
                return Err(ModelError::corrupt(format!(
                    "tensor {name}: payload length {byte_len} does not match shape \
                     {shape:?} ({expected} expected)"
                )));
            }
            tensors.push(TensorInfo { name, dtype, shape, offset, byte_len });
        }
        if cur.pos > data_offset {
            return Err(ModelError::corrupt("tensor table overruns the data section".into()));
        }

        Ok(ModelArtifact { bytes, kv, tensors, data_offset, data_len })
    }

    /// The metadata section, sorted by key.
    #[must_use]
    pub fn kv(&self) -> &BTreeMap<String, String> {
        &self.kv
    }

    /// A single metadata value.
    #[must_use]
    pub fn value(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }

    /// The tensor-info table, in stored order.
    #[must_use]
    pub fn tensor_infos(&self) -> &[TensorInfo] {
        &self.tensors
    }

    /// Whether the backing bytes are a zero-copy mapping.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// Total artifact size in bytes (header + metadata + data + CRC).
    #[must_use]
    pub fn file_len(&self) -> usize {
        self.bytes.len()
    }

    /// Total data-section size in bytes.
    #[must_use]
    pub fn data_bytes(&self) -> usize {
        self.data_len
    }

    fn payload(&self, info: &TensorInfo) -> &[u8] {
        // In-bounds by the parse-time check.
        let start = self.data_offset + info.offset as usize;
        &self.bytes[start..start + info.byte_len as usize]
    }

    fn info(&self, name: &str) -> Result<&TensorInfo, ModelError> {
        self.tensors
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| ModelError::Meta(format!("no tensor named {name}")))
    }

    /// Decodes a stored q8 tensor without dequantizing (the quantized
    /// matmul path). Returns `Ok(None)` for an `f32`-stored tensor.
    ///
    /// # Errors
    ///
    /// [`ModelError::Meta`] when no tensor has this name.
    pub fn q8_tensor(&self, name: &str) -> Result<Option<Q8Tensor>, ModelError> {
        let info = self.info(name)?;
        if info.dtype != DType::Q8 {
            return Ok(None);
        }
        Ok(Some(self.decode_q8(info)?))
    }

    fn decode_q8(&self, info: &TensorInfo) -> Result<Q8Tensor, ModelError> {
        let payload = self.payload(info);
        let (rows, row_len, bpr) = q8_geometry(&info.shape);
        // parse() already checked byte_len == q8_payload_len(shape).
        let scales: Vec<f32> = payload[..rows * bpr * 4]
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        // Re-pad each stored row back to full blocks for the kernels.
        let packed = &payload[rows * bpr * 4..];
        let mut quants = vec![0i8; rows * bpr * Q8_BLOCK];
        for row in 0..rows {
            let src = &packed[row * row_len..(row + 1) * row_len];
            let dst = &mut quants[row * bpr * Q8_BLOCK..];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s as i8;
            }
        }
        Q8Tensor::from_parts(&info.shape, scales, quants)
            .map_err(|e| ModelError::corrupt(format!("tensor {}: {e}", info.name)))
    }

    /// Decodes a stored tensor to dense `f32`, dequantizing q8 payloads.
    ///
    /// # Errors
    ///
    /// [`ModelError::Meta`] when no tensor has this name;
    /// [`ModelError::Corrupt`] when the payload does not decode.
    pub fn tensor(&self, name: &str) -> Result<Tensor, ModelError> {
        let info = self.info(name)?;
        match info.dtype {
            DType::F32 => {
                let data: Vec<f32> = self
                    .payload(info)
                    .chunks_exact(4)
                    .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                    .collect();
                Tensor::try_from_vec(data, &info.shape)
                    .map_err(|e| ModelError::corrupt(format!("tensor {}: {e}", info.name)))
            }
            DType::Q8 => Ok(self.decode_q8(info)?.dequantize()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_builder() -> ArtifactBuilder {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = ArtifactBuilder::new();
        b.set("zeta", "last");
        b.set("alpha", "first");
        b.add_f32("dense", &Tensor::randn(&[3, 7], &mut rng));
        b.add_q8("packed", &Q8Tensor::quantize(&Tensor::randn(&[4, 40], &mut rng)));
        b
    }

    #[test]
    fn round_trip_preserves_metadata_and_tensors() {
        let b = sample_builder();
        let art = ModelArtifact::from_bytes(b.to_bytes()).unwrap();
        assert_eq!(art.value("alpha"), Some("first"));
        assert_eq!(art.value("zeta"), Some("last"));
        assert_eq!(art.tensor_infos().len(), 2);
        assert_eq!(art.tensor("dense").unwrap().shape(), &[3, 7]);
        assert!(art.q8_tensor("packed").unwrap().is_some());
        assert!(art.q8_tensor("dense").unwrap().is_none());
        assert!(matches!(art.tensor("nope"), Err(ModelError::Meta(_))));
    }

    #[test]
    fn rendering_is_byte_stable() {
        assert_eq!(sample_builder().to_bytes(), sample_builder().to_bytes());
    }

    #[test]
    fn payloads_are_aligned() {
        let art = ModelArtifact::from_bytes(sample_builder().to_bytes()).unwrap();
        for info in art.tensor_infos() {
            assert_eq!(info.offset as usize % DATA_ALIGN, 0, "{}", info.name);
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample_builder().to_bytes();
        // Flip one bit in a spread of positions across header, table and
        // data; each must yield a typed error, never a panic.
        for pos in (0..bytes.len()).step_by(17) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            match ModelArtifact::from_bytes(bad) {
                Err(ModelError::Corrupt { .. }) => {}
                other => panic!("bit flip at {pos} not caught: {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample_builder().to_bytes();
        for keep in (0..bytes.len()).step_by(13) {
            match ModelArtifact::from_bytes(bytes[..keep].to_vec()) {
                Err(ModelError::Corrupt { .. }) => {}
                other => panic!("truncation to {keep} bytes not caught: {other:?}"),
            }
        }
    }

    #[test]
    fn future_version_is_a_typed_mismatch() {
        let mut bytes = sample_builder().to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let end = bytes.len() - 4;
        let crc = crc32(&bytes[..end]);
        bytes[end..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(bytes),
            Err(ModelError::VersionMismatch { found: 99, .. })
        ));
    }

    #[test]
    fn file_round_trip_is_mapped() {
        let dir = std::env::temp_dir().join("aero_model_format");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.amdl");
        let b = sample_builder();
        b.write(&path).unwrap();
        let art = ModelArtifact::read(&path).unwrap();
        #[cfg(target_os = "linux")]
        assert!(art.is_mapped());
        assert_eq!(
            art.tensor("dense").unwrap(),
            ModelArtifact::from_bytes(b.to_bytes()).unwrap().tensor("dense").unwrap()
        );
    }
}
