//! Zero-copy artifact bytes: a thin mmap wrapper with a buffered-read
//! fallback.
//!
//! Artifacts are read-heavy and can dominate a serving host's memory if
//! every worker holds its own copy, so the loader maps the file
//! read-only and private ([`ArtifactBytes::open`]) and decodes tensors
//! straight out of the mapping. Anything that prevents mapping — a
//! non-Linux platform, an empty file, a filesystem that refuses `mmap` —
//! degrades silently to one buffered read into an owned `Vec<u8>`; both
//! variants expose the identical `&[u8]` view, so the format layer never
//! knows the difference.

use std::fs;
use std::io;
use std::ops::Deref;
use std::path::Path;

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    // std already links libc on Linux; declaring the two symbols we need
    // avoids depending on the `libc` crate (the build is offline and
    // vendors no such shim).
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// A read-only, private, page-aligned mapping of an entire file.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct MmapFile {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE and never mutated or
// remapped after construction; sharing immutable bytes across threads
// is sound.
#[cfg(target_os = "linux")]
unsafe impl Send for MmapFile {}
#[cfg(target_os = "linux")]
unsafe impl Sync for MmapFile {}

#[cfg(target_os = "linux")]
impl MmapFile {
    /// Maps `path` read-only. Returns `Ok(None)` when the file cannot be
    /// mapped (empty file, or the kernel refuses) so the caller can fall
    /// back to a buffered read; only failures to *open* the file error.
    fn open(path: &Path) -> io::Result<Option<MmapFile>> {
        use std::os::unix::io::AsRawFd;
        let file = fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 || usize::try_from(len).is_err() {
            return Ok(None);
        }
        let len = len as usize;
        // SAFETY: fd is a valid open file descriptor for the duration of
        // the call; length is nonzero; the returned mapping (when not
        // MAP_FAILED) stays valid until the munmap in Drop. The file
        // descriptor may close right after — the mapping persists.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Ok(None);
        }
        Ok(Some(MmapFile { ptr: ptr.cast_const().cast(), len }))
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by
        // self; it is unmapped only in Drop, after which no &self can
        // exist.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(target_os = "linux")]
impl Drop for MmapFile {
    fn drop(&mut self) {
        // SAFETY: ptr/len are exactly what mmap returned; double-unmap
        // is impossible because Drop runs once.
        unsafe {
            sys::munmap(self.ptr.cast_mut().cast(), self.len);
        }
    }
}

/// The raw bytes of an artifact: memory-mapped when possible, owned
/// otherwise. Dereferences to `&[u8]` either way.
#[derive(Debug)]
pub enum ArtifactBytes {
    /// A zero-copy read-only mapping of the file.
    #[cfg(target_os = "linux")]
    Mapped(MmapFile),
    /// The file's bytes read into memory (fallback, and the in-memory
    /// decode path).
    Owned(Vec<u8>),
}

impl ArtifactBytes {
    /// Opens `path`, preferring a zero-copy mapping and degrading to a
    /// buffered read.
    ///
    /// # Errors
    ///
    /// Propagates failures to open or read the file.
    pub fn open(path: &Path) -> io::Result<ArtifactBytes> {
        #[cfg(target_os = "linux")]
        if let Some(mapped) = MmapFile::open(path)? {
            return Ok(ArtifactBytes::Mapped(mapped));
        }
        Ok(ArtifactBytes::Owned(fs::read(path)?))
    }

    /// Wraps bytes already in memory.
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> ArtifactBytes {
        ArtifactBytes::Owned(bytes)
    }

    /// Whether this is a zero-copy mapping (`false` means the buffered
    /// fallback or an in-memory buffer).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(target_os = "linux")]
            ArtifactBytes::Mapped(_) => true,
            ArtifactBytes::Owned(_) => false,
        }
    }
}

impl Deref for ArtifactBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(target_os = "linux")]
            ArtifactBytes::Mapped(m) => m.as_slice(),
            ArtifactBytes::Owned(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_maps_and_matches_file_contents() {
        let dir = std::env::temp_dir().join("aero_model_mmap");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        fs::write(&path, &payload).unwrap();
        let bytes = ArtifactBytes::open(&path).unwrap();
        assert_eq!(&*bytes, payload.as_slice());
        #[cfg(target_os = "linux")]
        assert!(bytes.is_mapped(), "a regular nonempty file should map");
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let dir = std::env::temp_dir().join("aero_model_mmap_empty");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        fs::write(&path, b"").unwrap();
        let bytes = ArtifactBytes::open(&path).unwrap();
        assert!(!bytes.is_mapped());
        assert!(bytes.is_empty());
    }

    #[test]
    fn owned_bytes_round_trip() {
        let v = vec![1u8, 2, 3];
        let bytes = ArtifactBytes::from_vec(v.clone());
        assert_eq!(&*bytes, v.as_slice());
        assert!(!bytes.is_mapped());
    }

    #[test]
    fn mapped_bytes_survive_a_thread_hop() {
        let dir = std::env::temp_dir().join("aero_model_mmap_send");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        fs::write(&path, vec![7u8; 4096]).unwrap();
        let bytes = ArtifactBytes::open(&path).unwrap();
        let sum: u64 =
            std::thread::spawn(move || bytes.iter().map(|&b| u64::from(b)).sum()).join().unwrap();
        assert_eq!(sum, 7 * 4096);
    }
}
