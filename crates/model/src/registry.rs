//! A named, versioned registry of model artifacts.
//!
//! A registry is a directory holding artifact files plus one
//! `index.txt` manifest:
//!
//! ```text
//! version=1
//! <name> <version> <file> <crc32hex> <len>
//! ```
//!
//! Publishing assigns the next version for the name, writes the artifact
//! and the updated index atomically (tmp + rename, index last), and
//! records the artifact's CRC32 and length so integrity can be checked
//! without parsing anything. Every read-path call re-reads the index
//! from disk — the registry object itself is stateless, so concurrent
//! publishers on the same directory see each other's entries on the
//! next call.
//!
//! The serving runtime resolves `name[@version]` against a registry to
//! hot-swap models; corrupted artifacts are rejected at load time (the
//! artifact's own trailing CRC is verified before any decode) and the
//! old model keeps serving.

use crate::format::ModelArtifact;
use crate::ModelError;
use aero_nn::integrity::{crc32, write_atomic};
use aerodiffusion::PIPELINE_FORMAT_VERSION;
use std::fs;
use std::path::{Path, PathBuf};

/// One published artifact in a registry index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Model name (registry-unique together with `version`).
    pub name: String,
    /// Monotonic version, starting at 1 per name.
    pub version: u32,
    /// Artifact file name relative to the registry directory.
    pub file: String,
    /// The artifact's own trailing CRC32 at publish time. Recorded
    /// rather than a whole-file CRC because the latter is the same
    /// constant for every valid artifact (the CRC residue of a message
    /// followed by its own checksum), which would make index entries
    /// indistinguishable at a glance.
    pub crc32: u32,
    /// Artifact length in bytes at publish time.
    pub len: u64,
}

/// Integrity state of one registry entry, checked against the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityState {
    /// File present, length and CRC match the index.
    Verified,
    /// File missing from the registry directory.
    Missing,
    /// File present but length or CRC disagree with the index.
    Corrupt {
        /// What exactly mismatched.
        detail: String,
    },
}

/// A directory of named, versioned model artifacts.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

/// The artifact's own stored checksum: the little-endian u32 in its
/// last four bytes. Callers guarantee `bytes.len() >= 4` (publish
/// parses the artifact first; verify length-checks against the index).
fn trailing_crc(bytes: &[u8]) -> u32 {
    let mut word = [0u8; 4];
    word.copy_from_slice(&bytes[bytes.len() - 4..]);
    u32::from_le_bytes(word)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

impl ModelRegistry {
    /// Opens (creating if needed) a registry directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures; a malformed existing
    /// index surfaces from the first read-path call instead.
    pub fn open(dir: &Path) -> Result<ModelRegistry, ModelError> {
        fs::create_dir_all(dir)?;
        Ok(ModelRegistry { dir: dir.to_path_buf() })
    }

    /// The registry directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn index_path(&self) -> PathBuf {
        self.dir.join("index.txt")
    }

    /// All published entries, in index (publish) order.
    ///
    /// # Errors
    ///
    /// [`ModelError::Meta`] on a malformed index,
    /// [`ModelError::VersionMismatch`] on an index written by an
    /// unsupported format version.
    pub fn entries(&self) -> Result<Vec<RegistryEntry>, ModelError> {
        let path = self.index_path();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let text = fs::read_to_string(&path)?;
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let version: u32 = header
            .strip_prefix("version=")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ModelError::Meta(format!("index header malformed: {header:?}")))?;
        if version != PIPELINE_FORMAT_VERSION {
            return Err(ModelError::VersionMismatch {
                found: version,
                supported: PIPELINE_FORMAT_VERSION,
            });
        }
        let mut entries = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [name, ver, file, crc, len] = fields.as_slice() else {
                return Err(ModelError::Meta(format!("index entry malformed: {line:?}")));
            };
            entries.push(RegistryEntry {
                name: (*name).to_string(),
                version: ver
                    .parse()
                    .map_err(|e| ModelError::Meta(format!("index version field: {e}")))?,
                file: (*file).to_string(),
                crc32: u32::from_str_radix(crc, 16)
                    .map_err(|e| ModelError::Meta(format!("index crc field: {e}")))?,
                len: len.parse().map_err(|e| ModelError::Meta(format!("index len field: {e}")))?,
            });
        }
        Ok(entries)
    }

    fn write_index(&self, entries: &[RegistryEntry]) -> Result<(), ModelError> {
        let mut out = format!("version={PIPELINE_FORMAT_VERSION}\n");
        for e in entries {
            out.push_str(&format!(
                "{} {} {} {:08x} {}\n",
                e.name, e.version, e.file, e.crc32, e.len
            ));
        }
        write_atomic(&self.index_path(), out.as_bytes())?;
        Ok(())
    }

    /// Publishes artifact bytes under `name` at the next free version.
    /// The artifact file lands first (atomically), the index last, so a
    /// crash between the two leaves a benign orphan file, never a
    /// dangling index entry.
    ///
    /// # Errors
    ///
    /// Rejects invalid names and bytes that do not verify as an
    /// artifact; propagates I/O failures.
    pub fn publish(&self, name: &str, bytes: &[u8]) -> Result<RegistryEntry, ModelError> {
        if !valid_name(name) {
            return Err(ModelError::Meta(format!(
                "invalid model name {name:?} (ascii alphanumeric, '-', '_', '.' only)"
            )));
        }
        // Refuse to index bytes that could never load.
        ModelArtifact::from_bytes(bytes.to_vec())?;
        let mut entries = self.entries()?;
        let version =
            entries.iter().filter(|e| e.name == name).map(|e| e.version).max().unwrap_or(0) + 1;
        let file = format!("{name}-v{version}.amdl");
        write_atomic(&self.dir.join(&file), bytes)?;
        let entry = RegistryEntry {
            name: name.to_string(),
            version,
            file,
            crc32: trailing_crc(bytes),
            len: bytes.len() as u64,
        };
        entries.push(entry.clone());
        self.write_index(&entries)?;
        aero_obs::counter!("model.registry.publish").inc();
        Ok(entry)
    }

    /// Resolves `name` to its entry: the exact `version` when given, the
    /// latest published version otherwise.
    ///
    /// # Errors
    ///
    /// [`ModelError::Meta`] when no matching entry exists.
    pub fn resolve(&self, name: &str, version: Option<u32>) -> Result<RegistryEntry, ModelError> {
        let entries = self.entries()?;
        let found = match version {
            Some(v) => entries.into_iter().find(|e| e.name == name && e.version == v),
            None => entries.into_iter().filter(|e| e.name == name).max_by_key(|e| e.version),
        };
        found.ok_or_else(|| match version {
            Some(v) => ModelError::Meta(format!("no model {name}@{v} in registry")),
            None => ModelError::Meta(format!("no model named {name} in registry")),
        })
    }

    /// The absolute path of an entry's artifact file.
    #[must_use]
    pub fn path_of(&self, entry: &RegistryEntry) -> PathBuf {
        self.dir.join(&entry.file)
    }

    /// Checks an entry's file against the length and CRC recorded at
    /// publish time, without parsing the artifact.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the file being absent (which
    /// is [`IntegrityState::Missing`], not an error).
    pub fn verify(&self, entry: &RegistryEntry) -> Result<IntegrityState, ModelError> {
        let path = self.path_of(entry);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(IntegrityState::Missing)
            }
            Err(e) => return Err(e.into()),
        };
        if bytes.len() as u64 != entry.len {
            return Ok(IntegrityState::Corrupt {
                detail: format!("length {} != recorded {}", bytes.len(), entry.len),
            });
        }
        if bytes.len() < 4 {
            return Ok(IntegrityState::Corrupt { detail: "file too short for a checksum".into() });
        }
        // Two checks: the trailer must still be what was published
        // (catches a corrupted checksum field), and the payload must
        // still hash to the trailer (catches everything else).
        let stored = trailing_crc(&bytes);
        if stored != entry.crc32 {
            return Ok(IntegrityState::Corrupt {
                detail: format!("crc {:08x} != recorded {:08x}", stored, entry.crc32),
            });
        }
        let computed = crc32(&bytes[..bytes.len() - 4]);
        if computed != stored {
            return Ok(IntegrityState::Corrupt {
                detail: format!("crc {computed:08x} != stored {stored:08x}"),
            });
        }
        Ok(IntegrityState::Verified)
    }

    /// Opens and fully verifies an entry's artifact (the artifact's own
    /// trailing CRC runs before any decode).
    ///
    /// # Errors
    ///
    /// I/O, CRC, version, or structural failures — all typed.
    pub fn open_artifact(&self, entry: &RegistryEntry) -> Result<ModelArtifact, ModelError> {
        ModelArtifact::read(&self.path_of(entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ArtifactBuilder;

    fn artifact_bytes(tag: &str) -> Vec<u8> {
        let mut b = ArtifactBuilder::new();
        b.set("tag", tag);
        b.to_bytes()
    }

    fn temp_registry(name: &str) -> ModelRegistry {
        let dir = std::env::temp_dir().join(format!("aero_model_registry_{name}"));
        let _ = fs::remove_dir_all(&dir);
        ModelRegistry::open(&dir).unwrap()
    }

    #[test]
    fn publish_assigns_monotonic_versions_per_name() {
        let reg = temp_registry("versions");
        assert_eq!(reg.publish("alpha", &artifact_bytes("a1")).unwrap().version, 1);
        assert_eq!(reg.publish("alpha", &artifact_bytes("a2")).unwrap().version, 2);
        assert_eq!(reg.publish("beta", &artifact_bytes("b1")).unwrap().version, 1);
        assert_eq!(reg.resolve("alpha", None).unwrap().version, 2);
        assert_eq!(reg.resolve("alpha", Some(1)).unwrap().version, 1);
        assert!(reg.resolve("alpha", Some(9)).is_err());
        assert!(reg.resolve("gamma", None).is_err());
    }

    #[test]
    fn invalid_names_and_garbage_bytes_are_rejected() {
        let reg = temp_registry("reject");
        assert!(matches!(reg.publish("has space", &artifact_bytes("x")), Err(ModelError::Meta(_))));
        assert!(matches!(reg.publish("", &artifact_bytes("x")), Err(ModelError::Meta(_))));
        assert!(matches!(
            reg.publish("fine", b"not an artifact at all"),
            Err(ModelError::Corrupt { .. })
        ));
        assert!(reg.entries().unwrap().is_empty());
    }

    #[test]
    fn verify_reports_missing_and_corrupt() {
        let reg = temp_registry("verify");
        let entry = reg.publish("m", &artifact_bytes("v")).unwrap();
        assert_eq!(reg.verify(&entry).unwrap(), IntegrityState::Verified);
        let path = reg.path_of(&entry);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(reg.verify(&entry).unwrap(), IntegrityState::Corrupt { .. }));
        // …and actually opening it trips the artifact's own CRC too.
        assert!(matches!(reg.open_artifact(&entry), Err(ModelError::Corrupt { .. })));
        fs::remove_file(&path).unwrap();
        assert_eq!(reg.verify(&entry).unwrap(), IntegrityState::Missing);
    }

    #[test]
    fn malformed_index_is_typed() {
        let reg = temp_registry("badindex");
        reg.publish("m", &artifact_bytes("v")).unwrap();
        let header = format!("version={PIPELINE_FORMAT_VERSION}");
        fs::write(reg.dir().join("index.txt"), format!("{header}\nonly three fields\n")).unwrap();
        assert!(matches!(reg.entries(), Err(ModelError::Meta(_))));
        fs::write(reg.dir().join("index.txt"), "version=42\n").unwrap();
        assert!(matches!(reg.entries(), Err(ModelError::VersionMismatch { found: 42, .. })));
    }
}
