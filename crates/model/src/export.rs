//! Pipeline-snapshot export/hydration and the quantization-error report.
//!
//! A snapshot exports to one artifact: the pipeline configuration
//! (exact, via the bit-pattern `key=value` codec), metadata, vocabulary
//! and thread policy land in the key/value section; every module's
//! weight tensors land in the tensor table as `<module>.<index>` entries,
//! either dense (`f32`) or block-quantized (`q8`).
//!
//! Export is **byte-stable**: metadata keys are sorted, tensor order is
//! the fixed module order, and quantization is deterministic — the same
//! snapshot always renders the identical artifact bytes.
//!
//! Quantized exports also produce a [`QuantReport`] with per-layer
//! max/mean absolute reconstruction error, published to `aero_obs`
//! gauges (`model.quant.*`); [`quality_delta`] extends that to an
//! end-to-end comparison (FID and CLIP score of the q8 pipeline against
//! its f32 original over a synthetic eval split).

use crate::format::{ArtifactBuilder, ModelArtifact};
use crate::ModelError;
use aero_metrics::{fid, FeatureExtractor};
use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aero_tensor::parallel::ParallelConfig;
use aero_tensor::{Q8Tensor, Tensor};
use aerodiffusion::{
    parse_provider_tag, parse_variant_tag, provider_tag, variant_tag, PipelineConfig, PipelineMeta,
    PipelineSnapshot, MODULE_NAMES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How weight tensors are stored in an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantization {
    /// Exact `f32` storage; round trips are byte-identical.
    F32,
    /// Block-quantized q8 (~28% of the `f32` size, bounded per-element
    /// error).
    Q8,
}

impl Quantization {
    /// The stable metadata tag (`"f32"` / `"q8"`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Quantization::F32 => "f32",
            Quantization::Q8 => "q8",
        }
    }

    /// Parses a [`Quantization::tag`].
    ///
    /// # Errors
    ///
    /// [`ModelError::Meta`] on an unknown tag.
    pub fn parse(tag: &str) -> Result<Quantization, ModelError> {
        match tag {
            "f32" => Ok(Quantization::F32),
            "q8" => Ok(Quantization::Q8),
            other => Err(ModelError::Meta(format!("unknown quantization {other}"))),
        }
    }
}

/// Reconstruction error of one quantized layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerError {
    /// Tensor name (`<module>.<index>`).
    pub name: String,
    /// Element count of the layer.
    pub numel: usize,
    /// Worst-case absolute dequantization error.
    pub max_abs_error: f32,
    /// Mean absolute dequantization error.
    pub mean_abs_error: f32,
}

/// The export-time quantization report.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantReport {
    /// Storage mode of the export.
    pub quantization: Quantization,
    /// Per-layer reconstruction errors (empty for `f32` exports).
    pub layers: Vec<LayerError>,
    /// Bytes the weight data would occupy stored dense.
    pub f32_data_bytes: usize,
    /// Total artifact file size (header + metadata + data + CRC).
    pub artifact_bytes: usize,
    /// Worst per-element error across all layers.
    pub max_abs_error: f32,
    /// Element-weighted mean absolute error across all layers.
    pub mean_abs_error: f32,
}

impl QuantReport {
    /// Artifact size as a fraction of the dense (`f32`) data size.
    #[must_use]
    pub fn size_ratio(&self) -> f64 {
        if self.f32_data_bytes == 0 {
            0.0
        } else {
            self.artifact_bytes as f64 / self.f32_data_bytes as f64
        }
    }
}

const KEY_QUANT: &str = "aero.quantization";
const KEY_CONFIG: &str = "aero.config";
const KEY_MAX_LEN: &str = "aero.meta.max_len";
const KEY_LATENT_SCALE: &str = "aero.meta.latent_scale";
const KEY_PROVIDER: &str = "aero.meta.provider";
const KEY_VARIANT: &str = "aero.meta.variant";
const KEY_THREADS: &str = "aero.parallel.threads";
const KEY_VOCAB: &str = "aero.vocab";

fn module_count_key(module: &str) -> String {
    format!("aero.module.{module}.count")
}

/// Renders a snapshot to artifact bytes, returning the bytes and the
/// quantization report. Deterministic: the same snapshot and mode always
/// produce identical bytes.
///
/// # Errors
///
/// [`ModelError::Corrupt`] if a snapshot weight blob does not decode
/// (possible only for corrupted snapshot bytes).
pub fn export_snapshot(
    snapshot: &PipelineSnapshot,
    quant: Quantization,
) -> Result<(Vec<u8>, QuantReport), ModelError> {
    let mut builder = ArtifactBuilder::new();
    builder.set(KEY_QUANT, quant.tag());
    builder.set(KEY_CONFIG, &snapshot.config().render_kv());
    let meta = snapshot.meta();
    builder.set(KEY_MAX_LEN, &meta.max_len.to_string());
    builder.set(KEY_LATENT_SCALE, &format!("0x{:08x}", meta.latent_scale.to_bits()));
    builder.set(KEY_PROVIDER, provider_tag(meta.provider));
    builder.set(KEY_VARIANT, variant_tag(meta.variant));
    builder.set(KEY_THREADS, &snapshot.parallel().threads().to_string());
    builder.set(KEY_VOCAB, &snapshot.vocab_words().join("\n"));

    let mut layers = Vec::new();
    let mut f32_data_bytes = 0usize;
    let mut max_abs = 0.0f32;
    let mut err_sum = 0.0f64;
    let mut total_elems = 0usize;
    for (module, blob) in snapshot.module_blobs() {
        let tensors = aero_nn::serialize::decode_tensors(blob)
            .map_err(|e| ModelError::corrupt(format!("snapshot module {module}: {e}")))?;
        builder.set(&module_count_key(module), &tensors.len().to_string());
        for (i, t) in tensors.iter().enumerate() {
            let name = format!("{module}.{i}");
            f32_data_bytes += t.numel() * 4;
            match quant {
                Quantization::F32 => builder.add_f32(&name, t),
                Quantization::Q8 => {
                    let q = Q8Tensor::quantize(t);
                    let (layer_max, layer_mean) = q.reconstruction_error(t);
                    max_abs = max_abs.max(layer_max);
                    err_sum += f64::from(layer_mean) * t.numel() as f64;
                    total_elems += t.numel();
                    layers.push(LayerError {
                        name: name.clone(),
                        numel: t.numel(),
                        max_abs_error: layer_max,
                        mean_abs_error: layer_mean,
                    });
                    builder.add_q8(&name, &q);
                }
            }
        }
    }

    let bytes = builder.to_bytes();
    let report = QuantReport {
        quantization: quant,
        layers,
        f32_data_bytes,
        artifact_bytes: bytes.len(),
        max_abs_error: max_abs,
        mean_abs_error: if total_elems == 0 { 0.0 } else { (err_sum / total_elems as f64) as f32 },
    };
    aero_obs::counter!("model.export.count").inc();
    aero_obs::gauge!("model.export.artifact_bytes").set(report.artifact_bytes as f64);
    if quant == Quantization::Q8 {
        aero_obs::gauge!("model.quant.max_abs_error").set(f64::from(report.max_abs_error));
        aero_obs::gauge!("model.quant.mean_abs_error").set(f64::from(report.mean_abs_error));
        aero_obs::gauge!("model.quant.size_ratio").set(report.size_ratio());
    }
    Ok((bytes, report))
}

/// Exports a snapshot to an artifact file, crash-safely.
///
/// # Errors
///
/// Propagates [`export_snapshot`] failures and I/O failures.
pub fn write_snapshot(
    snapshot: &PipelineSnapshot,
    quant: Quantization,
    path: &std::path::Path,
) -> Result<QuantReport, ModelError> {
    let (bytes, report) = export_snapshot(snapshot, quant)?;
    aero_nn::integrity::write_atomic(path, &bytes)?;
    Ok(report)
}

fn required<'a>(artifact: &'a ModelArtifact, key: &str) -> Result<&'a str, ModelError> {
    artifact.value(key).ok_or_else(|| ModelError::Meta(format!("missing metadata key {key}")))
}

fn parse_f32_bits(key: &str, value: &str) -> Result<f32, ModelError> {
    let hex = value
        .strip_prefix("0x")
        .ok_or_else(|| ModelError::Meta(format!("{key} is not a bit pattern: {value}")))?;
    u32::from_str_radix(hex, 16)
        .map(f32::from_bits)
        .map_err(|e| ModelError::Meta(format!("bad {key}: {e}")))
}

/// Reassembles a [`PipelineSnapshot`] from a verified artifact. For an
/// `f32` artifact the snapshot is byte-identical to the one exported —
/// replicas hydrated from it generate the same images. For a `q8`
/// artifact the weights carry quantization error; everything else
/// (config, vocabulary, metadata) is exact.
///
/// # Errors
///
/// [`ModelError::Meta`] on missing/malformed metadata,
/// [`ModelError::Corrupt`] on undecodable tensor payloads.
pub fn snapshot_from_artifact(artifact: &ModelArtifact) -> Result<PipelineSnapshot, ModelError> {
    let config = PipelineConfig::parse_kv(required(artifact, KEY_CONFIG)?)
        .map_err(|e| ModelError::Meta(format!("config: {e}")))?;
    let meta = PipelineMeta {
        max_len: required(artifact, KEY_MAX_LEN)?
            .parse()
            .map_err(|e| ModelError::Meta(format!("bad {KEY_MAX_LEN}: {e}")))?,
        latent_scale: parse_f32_bits(KEY_LATENT_SCALE, required(artifact, KEY_LATENT_SCALE)?)?,
        provider: parse_provider_tag(required(artifact, KEY_PROVIDER)?)?,
        variant: parse_variant_tag(required(artifact, KEY_VARIANT)?)?,
    };
    let threads: usize = required(artifact, KEY_THREADS)?
        .parse()
        .map_err(|e| ModelError::Meta(format!("bad {KEY_THREADS}: {e}")))?;
    let vocab: Vec<String> =
        required(artifact, KEY_VOCAB)?.split('\n').map(str::to_string).collect();

    let mut blobs: [Vec<u8>; 5] = Default::default();
    for (slot, module) in blobs.iter_mut().zip(MODULE_NAMES) {
        let count_key = module_count_key(module);
        let count: usize = required(artifact, &count_key)?
            .parse()
            .map_err(|e| ModelError::Meta(format!("bad {count_key}: {e}")))?;
        let tensors: Vec<Tensor> = (0..count)
            .map(|i| artifact.tensor(&format!("{module}.{i}")))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&Tensor> = tensors.iter().collect();
        *slot = aero_nn::serialize::encode_tensors(&refs).to_vec();
    }

    Ok(PipelineSnapshot::from_parts(
        config,
        meta,
        ParallelConfig::with_threads(threads),
        vocab,
        blobs,
    ))
}

/// End-to-end quality cost of q8 quantization for one snapshot: FID and
/// CLIP score of the f32 pipeline vs its q8 round trip, over a
/// `scenes`-item synthetic eval split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityDelta {
    /// FID of the f32 pipeline's generations against the eval renders.
    pub fid_f32: f32,
    /// FID of the q8 pipeline's generations against the eval renders.
    pub fid_q8: f32,
    /// CLIP score of the f32 pipeline's generations.
    pub clip_f32: f32,
    /// CLIP score of the q8 pipeline's generations.
    pub clip_q8: f32,
}

impl QualityDelta {
    /// `fid_q8 - fid_f32` (positive = quantization hurt FID).
    #[must_use]
    pub fn fid_delta(&self) -> f32 {
        self.fid_q8 - self.fid_f32
    }

    /// `clip_q8 - clip_f32` (negative = quantization hurt CLIP score).
    #[must_use]
    pub fn clip_delta(&self) -> f32 {
        self.clip_q8 - self.clip_f32
    }
}

/// Measures the end-to-end FID/CLIP-score delta of a snapshot's q8
/// export against its f32 original. Expensive (hydrates two replicas
/// and generates `scenes` images with each); exports run it only when
/// asked.
///
/// Results are published to the `model.quant.fid_delta` and
/// `model.quant.clip_delta` gauges.
///
/// # Errors
///
/// Propagates export/hydration failures; FID numerical failures surface
/// as [`ModelError::Meta`].
///
/// # Panics
///
/// Panics if `scenes` is zero (FID needs a nonempty eval set).
pub fn quality_delta(
    snapshot: &PipelineSnapshot,
    scenes: usize,
    seed: u64,
) -> Result<QualityDelta, ModelError> {
    assert!(scenes > 0, "quality_delta needs at least one eval scene");
    let (bytes, _) = export_snapshot(snapshot, Quantization::Q8)?;
    let q8_snapshot = snapshot_from_artifact(&ModelArtifact::from_bytes(bytes)?)?;

    let config = *snapshot.config();
    let ds = build_dataset(&DatasetConfig {
        n_scenes: scenes,
        image_size: config.vision.image_size,
        seed,
        generator: SceneGeneratorConfig::default(),
    });
    let real: Vec<Tensor> = ds.items.iter().map(|it| it.rendered.image.to_tensor()).collect();
    let extractor = FeatureExtractor::new(config.vision.base_channels.max(4));

    let run = |snap: &PipelineSnapshot| -> Result<(f32, f32), ModelError> {
        let pipeline = snap.hydrate()?;
        let images = pipeline.generate_eval(&ds, &mut StdRng::seed_from_u64(seed));
        let gen: Vec<Tensor> = images.iter().map(aero_scene::Image::to_tensor).collect();
        let fid_score = fid(&extractor, &real, &gen)
            .map_err(|e| ModelError::Meta(format!("fid failed: {e}")))?;
        let captions: Vec<String> = ds
            .items
            .iter()
            .map(|it| pipeline.caption_for(it, &mut StdRng::seed_from_u64(seed)))
            .collect();
        let clip = pipeline.clip_score(&images, &captions);
        Ok((fid_score, clip))
    };

    let (fid_f32, clip_f32) = run(snapshot)?;
    let (fid_q8, clip_q8) = run(&q8_snapshot)?;
    let delta = QualityDelta { fid_f32, fid_q8, clip_f32, clip_q8 };
    aero_obs::gauge!("model.quant.fid_delta").set(f64::from(delta.fid_delta()));
    aero_obs::gauge!("model.quant.clip_delta").set(f64::from(delta.clip_delta()));
    Ok(delta)
}
