//! Single-file quantized model artifacts for AeroDiffusion.
//!
//! This crate is the serving-scale persistence layer on top of
//! `aerodiffusion`'s directory-of-blobs format: one CRC-protected binary
//! file ([`format`]) holding a whole pipeline — metadata, vocabulary,
//! configuration, and every weight tensor, stored dense (`f32`) or
//! block-quantized (`q8`, ~28% of the dense size) — loaded zero-copy via
//! `mmap` ([`mmap`]) and organised into named, versioned registries
//! ([`registry`]) that the serving runtime hot-swaps between.
//!
//! The pipeline-level entry points live in [`export`]:
//! [`write_snapshot`] turns a [`PipelineSnapshot`] into an artifact file
//! (emitting a per-layer [`QuantReport`] on the way), and
//! [`snapshot_from_artifact`] turns a loaded artifact back into a
//! snapshot. An `f32` round trip is **byte-identical**: the artifact
//! stores the exact weight bits, so a replica hydrated from a reloaded
//! artifact generates the same images as one hydrated from the original
//! in-memory snapshot.
//!
//! [`PipelineSnapshot`]: aerodiffusion::PipelineSnapshot

pub mod export;
pub mod format;
pub mod mmap;
pub mod registry;

pub use export::{
    export_snapshot, quality_delta, snapshot_from_artifact, write_snapshot, LayerError,
    QualityDelta, QuantReport, Quantization,
};
pub use format::{ArtifactBuilder, DType, ModelArtifact, TensorInfo, DATA_ALIGN};
pub use mmap::ArtifactBytes;
pub use registry::{IntegrityState, ModelRegistry, RegistryEntry};

use std::error::Error;
use std::fmt;

/// Error loading, verifying, or building a model artifact.
#[derive(Debug)]
pub enum ModelError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The artifact bytes fail CRC or structural validation.
    Corrupt {
        /// What exactly failed.
        detail: String,
    },
    /// The artifact was written by an unsupported format version.
    VersionMismatch {
        /// The version recorded in the header.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The metadata section is incomplete or does not describe a valid
    /// pipeline (missing key, unknown tag, malformed config).
    Meta(String),
}

impl ModelError {
    pub(crate) fn corrupt(detail: String) -> ModelError {
        ModelError::Corrupt { detail }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "i/o failure: {e}"),
            ModelError::Corrupt { detail } => write!(f, "corrupt artifact: {detail}"),
            ModelError::VersionMismatch { found, supported } => {
                write!(
                    f,
                    "artifact format version {found} unsupported (this build reads {supported})"
                )
            }
            ModelError::Meta(d) => write!(f, "invalid artifact metadata: {d}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

impl From<aerodiffusion::PersistError> for ModelError {
    fn from(e: aerodiffusion::PersistError) -> Self {
        use aerodiffusion::PersistError;
        match e {
            PersistError::Io(io) => ModelError::Io(io),
            PersistError::VersionMismatch { found, supported } => {
                ModelError::VersionMismatch { found, supported }
            }
            PersistError::Corrupt { file, detail } => {
                ModelError::Corrupt { detail: format!("{file}: {detail}") }
            }
            PersistError::Meta(d) => ModelError::Meta(d),
            PersistError::Weights(w) => ModelError::Corrupt { detail: w.to_string() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
        let e = ModelError::corrupt("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
