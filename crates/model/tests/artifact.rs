//! End-to-end artifact tests over a real (smoke-trained) pipeline:
//! f32 round trips are byte-identical down to the sampled image, q8
//! artifacts hit the size budget, and corrupted files are rejected with
//! typed errors before any decode.

use aero_model::{
    snapshot_from_artifact, write_snapshot, IntegrityState, ModelArtifact, ModelError,
    ModelRegistry, Quantization,
};
use aero_scene::{build_dataset, AerialDataset, DatasetConfig, SceneGeneratorConfig};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::PathBuf;

fn tiny_dataset() -> AerialDataset {
    build_dataset(&DatasetConfig {
        n_scenes: 3,
        image_size: PipelineConfig::smoke().vision.image_size,
        seed: 77,
        generator: SceneGeneratorConfig { min_objects: 4, max_objects: 6, night_probability: 0.0 },
    })
}

fn trained() -> (AerialDataset, AeroDiffusionPipeline, PipelineSnapshot) {
    let ds = tiny_dataset();
    let pipeline = AeroDiffusionPipeline::fit(&ds, PipelineConfig::smoke(), 23);
    let snapshot = pipeline.snapshot();
    (ds, pipeline, snapshot)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aero_model_e2e_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn f32_artifact_round_trip_samples_byte_identically() {
    let (ds, pipeline, snapshot) = trained();
    let dir = temp_dir("f32_round_trip");
    let path = dir.join("model.amdl");

    let report = write_snapshot(&snapshot, Quantization::F32, &path).unwrap();
    assert_eq!(report.max_abs_error, 0.0, "f32 export is lossless");

    // Export must be byte-stable: same snapshot, same bytes.
    let first = fs::read(&path).unwrap();
    write_snapshot(&snapshot, Quantization::F32, &path).unwrap();
    assert_eq!(first, fs::read(&path).unwrap(), "export must be deterministic");

    let artifact = ModelArtifact::read(&path).unwrap();
    assert!(artifact.is_mapped(), "file load should take the mmap path");
    let reloaded = snapshot_from_artifact(&artifact).unwrap();

    // The reassembled snapshot carries the exact weight bytes…
    for ((name_a, blob_a), (name_b, blob_b)) in
        snapshot.module_blobs().iter().zip(reloaded.module_blobs().iter())
    {
        assert_eq!(name_a, name_b);
        assert_eq!(blob_a, blob_b, "module {name_a} must round trip byte-identically");
    }

    // …so replicas hydrated from either source sample identically.
    let replica = reloaded.hydrate().unwrap();
    let a = pipeline.generate(&ds.items[0], &mut StdRng::seed_from_u64(11));
    let b = replica.generate(&ds.items[0], &mut StdRng::seed_from_u64(11));
    assert_eq!(a, b, "artifact round trip must not change sampling output");
}

#[test]
fn q8_artifact_meets_size_budget_and_hydrates() {
    let (ds, _pipeline, snapshot) = trained();
    let dir = temp_dir("q8_budget");
    let f32_path = dir.join("model-f32.amdl");
    let q8_path = dir.join("model-q8.amdl");

    write_snapshot(&snapshot, Quantization::F32, &f32_path).unwrap();
    let report = write_snapshot(&snapshot, Quantization::Q8, &q8_path).unwrap();

    // The smoke preset's layers are narrower than one q8 block (rows of
    // 4–8 elements), so per-block scale overhead dominates; the ≤30%
    // budget at realistic widths is asserted in
    // `q8_meets_size_budget_at_realistic_layer_widths` below. Here the
    // quantized artifact must still be a clear win.
    let f32_len = fs::metadata(&f32_path).unwrap().len();
    let q8_len = fs::metadata(&q8_path).unwrap().len();
    assert!(
        q8_len * 2 <= f32_len,
        "q8 artifact must be <= 50% of f32 even at smoke widths ({q8_len} vs {f32_len} bytes)"
    );

    assert!(!report.layers.is_empty(), "per-layer report must cover the tensors");
    assert!(report.max_abs_error.is_finite());
    assert!(report.mean_abs_error <= report.max_abs_error);

    // A q8 snapshot is lossy but must still hydrate and sample finitely.
    let artifact = ModelArtifact::read(&q8_path).unwrap();
    let replica = snapshot_from_artifact(&artifact).unwrap().hydrate().unwrap();
    let img = replica.generate(&ds.items[0], &mut StdRng::seed_from_u64(3));
    let t = img.to_tensor();
    assert!(t.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn q8_meets_size_budget_at_realistic_layer_widths() {
    use aero_model::ArtifactBuilder;
    use aero_tensor::{Q8Tensor, Tensor};
    use rand::Rng;

    let mut rng = StdRng::seed_from_u64(5);
    let shapes: [&[usize]; 4] = [&[128, 256], &[256, 64], &[32, 32, 32], &[512]];
    let tensors: Vec<Tensor> = shapes
        .iter()
        .map(|s| {
            let n: usize = s.iter().product();
            let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Tensor::from_vec(data, s)
        })
        .collect();

    let mut dense = ArtifactBuilder::new();
    let mut quantized = ArtifactBuilder::new();
    for (i, t) in tensors.iter().enumerate() {
        dense.add_f32(&format!("layer.{i}"), t);
        quantized.add_q8(&format!("layer.{i}"), &Q8Tensor::quantize(t));
    }
    let f32_len = dense.to_bytes().len();
    let q8_len = quantized.to_bytes().len();
    assert!(
        q8_len * 10 <= f32_len * 3,
        "q8 artifact must be <= 30% of f32 at block-sized widths ({q8_len} vs {f32_len} bytes)"
    );
}

#[test]
fn corrupted_artifacts_are_rejected_with_typed_errors() {
    let (_ds, _pipeline, snapshot) = trained();
    let dir = temp_dir("corruption");
    let path = dir.join("model.amdl");
    write_snapshot(&snapshot, Quantization::Q8, &path).unwrap();
    let good = fs::read(&path).unwrap();

    // Single bit flip anywhere (sampled positions) trips the CRC.
    for pos in (0..good.len()).step_by(good.len() / 23 + 1) {
        let mut bad = good.clone();
        bad[pos] ^= 0x04;
        match ModelArtifact::from_bytes(bad) {
            Err(ModelError::Corrupt { .. } | ModelError::VersionMismatch { .. }) => {}
            other => panic!("bit flip at {pos} must be rejected, got {other:?}"),
        }
    }

    // Truncation at any sampled length is rejected, never a panic.
    for len in (0..good.len()).step_by(good.len() / 17 + 1) {
        let err = ModelArtifact::from_bytes(good[..len].to_vec()).unwrap_err();
        assert!(matches!(err, ModelError::Corrupt { .. }), "truncated to {len}: {err:?}");
    }
}

#[test]
fn registry_publishes_and_serves_real_artifacts() {
    let (ds, pipeline, snapshot) = trained();
    let dir = temp_dir("registry");
    let registry = ModelRegistry::open(&dir).unwrap();

    let (bytes, _report) = aero_model::export_snapshot(&snapshot, Quantization::F32).unwrap();
    let entry = registry.publish("smoke", &bytes).unwrap();
    assert_eq!((entry.name.as_str(), entry.version), ("smoke", 1));
    assert_eq!(registry.verify(&entry).unwrap(), IntegrityState::Verified);

    let resolved = registry.resolve("smoke", None).unwrap();
    let artifact = registry.open_artifact(&resolved).unwrap();
    let replica = snapshot_from_artifact(&artifact).unwrap().hydrate().unwrap();
    let a = pipeline.generate(&ds.items[0], &mut StdRng::seed_from_u64(29));
    let b = replica.generate(&ds.items[0], &mut StdRng::seed_from_u64(29));
    assert_eq!(a, b, "registry-served model must sample like the original");
}
