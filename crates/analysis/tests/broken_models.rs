//! End-to-end acceptance tests: deliberately broken models must trip the
//! analyzer with the right diagnostic codes, and the real (healthy)
//! models must lint clean.

use aero_analysis::{lint_graph, DiagCode, PipelineShapeDesc, ShapeCtx, UnetShapeDesc};
use aero_diffusion::{CondUnet, UnetConfig};
use aero_nn::{Module, Var};
use aero_tensor::sym::ShapeSpec;
use aero_tensor::Tensor;
use aero_vision::VisionConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// AD0001 — a condition network wired to the wrong UNet `cond_dim`.
#[test]
fn wrong_condition_dim_fires_ad0001() {
    let vision = VisionConfig::default(); // embed_dim 32 -> condition is [B, 96]
    let unet = UnetConfig::latent(64); // but the UNet expects [B, 64]
    let report = PipelineShapeDesc::new(&vision, &unet, 8).lint();
    assert!(report.has_code(DiagCode::ShapeMismatch), "{}", report.render());
    assert!(
        report.diagnostics().iter().any(|d| d.site == "unet.condition"),
        "expected the wiring bug at unet.condition:\n{}",
        report.render()
    );
}

/// AD0001 — a mismatched channel ladder inside the UNet trunk.
#[test]
fn mismatched_channel_ladder_fires_ad0001() {
    let mut desc = UnetShapeDesc::from_config(&UnetConfig::latent(96), 8);
    desc.downsample.cout = 24; // bottleneck blocks still expect 2c = 32
    let report = desc.lint();
    assert!(report.has_code(DiagCode::ShapeMismatch), "{}", report.render());
    assert!(
        report.diagnostics().iter().any(|d| d.site.starts_with("unet.res_mid1")),
        "expected the first bottleneck block to reject 24 channels:\n{}",
        report.render()
    );
}

/// AD0002 — operands that cannot be broadcast together.
#[test]
fn broadcast_conflict_fires_ad0002() {
    let mut ctx = ShapeCtx::new();
    ctx.scoped("film", |ctx| {
        let feature_map = ShapeSpec::batched("B", &[16, 8, 8]);
        let modulation = ShapeSpec::batched("B", &[12, 1, 1]); // wrong channel count
        assert!(ctx.broadcast(&feature_map, &modulation).is_none());
    });
    let report = ctx.into_report();
    assert!(report.has_code(DiagCode::BroadcastConflict), "{}", report.render());
}

/// AD0101 — a declared parameter the loss never touches.
#[test]
fn detached_parameter_fires_ad0101() {
    let mut rng = StdRng::seed_from_u64(11);
    let config = UnetConfig {
        in_channels: 4,
        base_channels: 8,
        cond_dim: 6,
        time_embed_dim: 16,
        cond_tokens: 3,
        spatial_cond_cells: 16,
    };
    let unet = CondUnet::new(config, &mut rng);
    let z = Var::constant(Tensor::randn(&[1, 4, 8, 8], &mut rng));
    let c = Var::constant(Tensor::randn(&[1, 6], &mut rng));
    let loss = unet.forward(&z, &[3], Some(&c)).sum();

    // The real UNet trains every parameter...
    let healthy = lint_graph(&loss, &unet.params());
    assert!(healthy.is_clean(), "{}", healthy.render());

    // ...but declaring an extra, never-used parameter is caught.
    let mut params = unet.params();
    params.push(Var::parameter(Tensor::zeros(&[4, 4])));
    let report = lint_graph(&loss, &params);
    assert!(report.has_code(DiagCode::DetachedParameter), "{}", report.render());
    assert!(!report.is_clean());
}

/// AD0103 — an `ln` whose input is not clamped away from zero.
#[test]
fn unclamped_ln_fires_ad0103() {
    let sigma = Var::parameter(Tensor::from_vec(vec![0.5, 0.0], &[2]));
    let nll = sigma.ln().sum(); // ln(0) = -inf
    let report = lint_graph(&nll, &[sigma]);
    assert!(report.has_code(DiagCode::UnclampedLn), "{}", report.render());
    assert!(!report.is_clean(), "ln of an exact zero must be an error");
}

/// Five distinct codes across the two passes, in one place.
#[test]
fn five_distinct_codes_fire() {
    let mut codes = std::collections::HashSet::new();

    // Shape pass: AD0001, AD0003, AD0004.
    let mut desc = UnetShapeDesc::from_config(&UnetConfig::latent(96), 8);
    desc.up_conv.cout = 3;
    desc.cond_tokens = 5;
    desc.spatial_cond_cells = 25;
    if let Some(p) = desc.cond_spatial_proj.as_mut() {
        p.out_dim = 2 * 16 * 25;
    }
    for d in desc.lint().diagnostics() {
        codes.insert(d.code);
    }

    // Shape pass: AD0002.
    let mut ctx = ShapeCtx::new();
    ctx.broadcast(&ShapeSpec::fixed(&[2, 3]), &ShapeSpec::fixed(&[2, 4]));
    for d in ctx.into_report().diagnostics() {
        codes.insert(d.code);
    }

    // Graph pass: AD0101, AD0102, AD0103.
    let w = Var::parameter(Tensor::from_vec(vec![0.0], &[1]));
    let orphan = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
    let loss = w.ln().add(&w.detach()).sum();
    for d in lint_graph(&loss, &[w, orphan]).diagnostics() {
        codes.insert(d.code);
    }

    assert!(
        codes.len() >= 5,
        "expected at least five distinct diagnostic codes, got {:?}",
        codes.iter().map(|c| c.code()).collect::<Vec<_>>()
    );
}

/// All shipped UNet presets and the default pipeline wiring lint clean.
#[test]
fn shipped_configs_lint_clean() {
    for (name, config, side) in
        [("latent", UnetConfig::latent(96), 8), ("pixel", UnetConfig::pixel(), 8)]
    {
        let report = UnetShapeDesc::from_config(&config, side).lint();
        assert!(report.is_clean(), "{name} preset:\n{}", report.render());
    }
    let vision = VisionConfig::default();
    let report = PipelineShapeDesc::new(
        &vision,
        &UnetConfig::latent(3 * vision.embed_dim),
        vision.image_size / 4,
    )
    .lint();
    assert!(report.is_clean(), "{}", report.render());
}
