//! Fixture-driven suites for the token-level source passes: one
//! known-positive and one known-negative fixture per diagnostic code
//! (AD0200–AD0203), staged into throwaway workspace layouts.
//!
//! The fixtures live as real `.rs` files under `tests/fixtures/` so they
//! stay readable and greppable; each test copies one into the crate
//! layout the pass under test scans.

use aero_analysis::{
    lint_atomic_orderings, lint_lock_order, lint_nondeterminism, lint_source_all,
    lint_worker_panics, Baseline, DiagCode, Report,
};
use std::fs;
use std::path::PathBuf;

/// Stages `content` as `crates/<crate_name>/src/<file_name>` under a
/// unique temp root and returns the root.
fn stage(label: &str, crate_name: &str, file_name: &str, content: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("aero_source_passes_{label}"));
    let _ = fs::remove_dir_all(&root);
    let dir = root.join("crates").join(crate_name).join("src");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join(file_name), content).unwrap();
    root
}

fn lines_of(report: &Report, code: DiagCode) -> Vec<String> {
    report.diagnostics().iter().filter(|d| d.code == code).map(|d| d.site.clone()).collect()
}

#[test]
fn ad0200_flags_opposite_lock_orders() {
    let root = stage("lock_pos", "serve", "runtime.rs", include_str!("fixtures/lock_cycle_pos.rs"));
    let report = lint_lock_order(&root);
    assert!(report.has_code(DiagCode::LockOrderCycle), "{}", report.render());
    let msg = &report.diagnostics()[0].message;
    assert!(msg.contains("`cache`") && msg.contains("`stats`"), "{msg}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn ad0200_accepts_a_consistent_order() {
    let root = stage("lock_neg", "serve", "runtime.rs", include_str!("fixtures/lock_order_neg.rs"));
    let report = lint_lock_order(&root);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.diagnostics().len(), 0, "{}", report.render());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn ad0200_propagates_through_calls_and_guard_helpers() {
    let root =
        stage("lock_call", "serve", "queue.rs", include_str!("fixtures/lock_cycle_call_pos.rs"));
    let report = lint_lock_order(&root);
    assert!(report.has_code(DiagCode::LockOrderCycle), "{}", report.render());
    let msg = &report.diagnostics()[0].message;
    assert!(msg.contains("`queue`") && msg.contains("`stats`"), "{msg}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn ad0201_flags_unannotated_relaxed_rmw_and_publish() {
    let root =
        stage("atomic_pos", "obs", "metrics.rs", include_str!("fixtures/atomic_relaxed_pos.rs"));
    let report = lint_atomic_orderings(&root);
    let sites = lines_of(&report, DiagCode::AtomicOrderingAudit);
    assert_eq!(sites.len(), 2, "{}", report.render());
    assert!(sites[0].contains("metrics.rs:5"), "RMW site: {sites:?}");
    assert!(sites[1].contains("metrics.rs:10"), "publish site: {sites:?}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn ad0201_accepts_annotations_and_plain_accesses() {
    let root =
        stage("atomic_neg", "obs", "metrics.rs", include_str!("fixtures/atomic_relaxed_neg.rs"));
    let report = lint_atomic_orderings(&root);
    assert_eq!(report.diagnostics().len(), 0, "{}", report.render());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn ad0202_flags_clocks_hash_order_and_adhoc_spawns() {
    let root = stage("nondet_pos", "tensor", "kernels.rs", include_str!("fixtures/nondet_pos.rs"));
    let report = lint_nondeterminism(&root);
    let rendered = report.render();
    assert!(rendered.contains("Instant::now"), "{rendered}");
    assert!(rendered.contains("SystemTime"), "{rendered}");
    assert!(rendered.contains("HashMap"), "{rendered}");
    assert!(rendered.contains("ad-hoc thread spawn"), "{rendered}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn ad0202_accepts_annotations_ordered_containers_and_par_kernels() {
    let root = stage("nondet_neg", "tensor", "ops.rs", include_str!("fixtures/nondet_neg.rs"));
    // The sanctioned thread layer may spawn freely.
    let par = root.join("crates/tensor/src/par_kernels.rs");
    fs::write(&par, "fn shard() { std::thread::spawn(|| {}); }\n").unwrap();
    // Outside the determinism-critical crates the pass does not apply.
    let serve = root.join("crates/serve/src/telemetry.rs");
    fs::create_dir_all(serve.parent().unwrap()).unwrap();
    fs::write(&serve, "fn now() -> Instant { std::time::Instant::now() }\n").unwrap();
    let report = lint_nondeterminism(&root);
    assert_eq!(report.diagnostics().len(), 0, "{}", report.render());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn ad0203_flags_unprotected_panic_sites_in_spawned_closures() {
    let root =
        stage("worker_pos", "serve", "runtime.rs", include_str!("fixtures/worker_panic_pos.rs"));
    let report = lint_worker_panics(&root);
    let sites = lines_of(&report, DiagCode::PanicInWorker);
    // unwrap in the closure, indexing and expect in the same-file callee.
    assert_eq!(sites.len(), 3, "{}", report.render());
    let rendered = report.render();
    assert!(rendered.contains("runtime.rs:8"), "closure unwrap: {rendered}");
    assert!(rendered.contains("runtime.rs:15"), "callee indexing: {rendered}");
    assert!(rendered.contains("runtime.rs:16"), "callee expect: {rendered}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn ad0203_accepts_catch_unwind_and_non_worker_code() {
    let root =
        stage("worker_neg", "serve", "runtime.rs", include_str!("fixtures/worker_panic_neg.rs"));
    let report = lint_worker_panics(&root);
    assert_eq!(report.diagnostics().len(), 0, "{}", report.render());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn ad0203_only_applies_to_the_serve_crate() {
    let root =
        stage("worker_scope", "scene", "gen.rs", include_str!("fixtures/worker_panic_pos.rs"));
    let report = lint_worker_panics(&root);
    assert_eq!(report.diagnostics().len(), 0, "{}", report.render());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn lint_source_all_merges_every_pass_and_baselines_ratchet() {
    // One workspace with a finding for each new code, checked end to end
    // through the merged entry point and the baseline diff.
    let root = stage("merged", "serve", "runtime.rs", include_str!("fixtures/lock_cycle_pos.rs"));
    let obs = root.join("crates/obs/src/metrics.rs");
    fs::create_dir_all(obs.parent().unwrap()).unwrap();
    fs::write(&obs, include_str!("fixtures/atomic_relaxed_pos.rs")).unwrap();
    let tensor = root.join("crates/tensor/src/kernels.rs");
    fs::create_dir_all(tensor.parent().unwrap()).unwrap();
    fs::write(&tensor, include_str!("fixtures/nondet_pos.rs")).unwrap();
    let worker = root.join("crates/serve/src/worker.rs");
    fs::write(&worker, include_str!("fixtures/worker_panic_pos.rs")).unwrap();

    let report = lint_source_all(&root);
    for code in [
        DiagCode::LockOrderCycle,
        DiagCode::AtomicOrderingAudit,
        DiagCode::NondeterministicPath,
        DiagCode::PanicInWorker,
    ] {
        assert!(report.has_code(code), "missing {}:\n{}", code.code(), report.render());
    }

    // Accepting today's findings makes the run clean; one more finding
    // (a fresh relaxed RMW) trips the gate again.
    let baseline = Baseline::from_report(&report);
    assert!(baseline.diff(&report).is_clean());
    fs::write(
        root.join("crates/obs/src/extra.rs"),
        "fn bump2(c: &AtomicU64) { c.fetch_add(2, Ordering::Relaxed); }\n",
    )
    .unwrap();
    let diff = baseline.diff(&lint_source_all(&root));
    assert_eq!(diff.fresh.len(), 1, "{}", diff.render());
    assert!(diff.fresh[0].site.contains("extra.rs"));
    let _ = fs::remove_dir_all(&root);
}
