// AD0200 known-positive: the serve runtime's worker/cache/stats locks
// acquired in opposite orders by two paths.

fn record_batch(shared: &WorkerShared) {
    let cache = shared.cache.lock().unwrap();
    let stats = shared.stats.lock().unwrap();
    stats.note(cache.len());
    drop(stats);
    drop(cache);
}

fn evict_cold(shared: &WorkerShared) {
    let stats = shared.stats.lock().unwrap();
    let cache = shared.cache.lock().unwrap();
    cache.evict(stats.pressure());
    drop(cache);
    drop(stats);
}
