// AD0202 known-positive: wall clocks, hash-ordered containers, and an
// ad-hoc thread spawn in a determinism-critical crate.

fn time_step() -> Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

fn wall_clock() -> SystemTime {
    SystemTime::now()
}

fn tally(names: &[String]) -> HashMap<String, usize> {
    let mut counts = HashMap::new();
    for name in names {
        *counts.entry(name.clone()).or_insert(0) += 1;
    }
    counts
}

fn fan_out(work: Vec<Job>) {
    for job in work {
        std::thread::spawn(move || job.run());
    }
}
