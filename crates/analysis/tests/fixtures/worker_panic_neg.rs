// AD0203 known-negative: the panic-prone request work runs under
// catch_unwind, the closure itself handles its errors, and panic sites
// outside any spawned closure (or after #[cfg(test)]) are out of scope.

fn start(shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("demo-worker".into())
        .spawn(move || loop {
            let Some(batch) = shared.queue.pop() else { return };
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                serve_one(&shared, batch).expect("request work is recovered")
            }));
            if outcome.is_err() {
                shared.stats.record_panic();
            }
        })
        .expect("spawn demo worker")
}

fn serve_one(shared: &Shared, batch: Batch) -> Result<(), ServeError> {
    shared.replica.apply(batch)
}

fn startup_outside_any_worker(config: &Config) -> Replica {
    // Main-thread startup may still fail fast.
    config.snapshot().hydrate().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let handle = std::thread::spawn(|| VALUES[0].parse::<u32>().unwrap());
        handle.join().unwrap();
    }
}
