// AD0201 known-positive: an unannotated relaxed read-modify-write and a
// relaxed two-field publish.

fn next_id(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

fn publish(state: &State, value: u64) {
    state.payload.store(value, Ordering::Relaxed);
    state.ready.store(1, Ordering::Relaxed);
}
