// AD0203 known-positive: panic sites inside a spawned closure and
// inside a same-file free function the closure calls.

fn start(shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("demo-worker".into())
        .spawn(move || {
            let replica = shared.snapshot.hydrate().unwrap();
            run_worker(&replica, &shared);
        })
        .expect("spawn demo worker")
}

fn run_worker(replica: &Replica, shared: &Shared) {
    let first = &shared.batches[0];
    replica.config().expect("replica config").apply(first);
}
