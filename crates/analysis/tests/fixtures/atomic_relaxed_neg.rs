// AD0201 known-negative: the RMW is justified, plain loads/stores are
// fine relaxed, the publish pairs Release with the flag, and mentions in
// comments or strings never count.

fn bump(counter: &AtomicU64) {
    // lint: relaxed-ok(monotonic counter; readers tolerate staleness)
    counter.fetch_add(1, Ordering::Relaxed);
}

fn read(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

fn set_depth(depth: &AtomicU64, value: u64) {
    depth.store(value, Ordering::Relaxed);
}

fn publish(state: &State, value: u64) {
    state.payload.store(value, Ordering::Relaxed);
    state.ready.store(1, Ordering::Release);
}

fn doc_only() -> &'static str {
    // A comment may say `fetch_add(1, Ordering::Relaxed)` freely.
    "fetch_add(1, Ordering::Relaxed)"
}
