// AD0200 known-positive through call propagation and a guard-returning
// helper: `submit` holds the queue lock while a callee takes the stats
// lock; `drain` holds stats (via the poison-recovering helper) while a
// callee takes queue.

fn lock_stats(stats: &Mutex<Stats>) -> MutexGuard<'_, Stats> {
    stats.lock().unwrap_or_else(PoisonError::into_inner)
}

fn bump_counters(shared: &Shared) {
    let stats = shared.stats.lock().unwrap();
    stats.bump();
    drop(stats);
}

fn requeue(shared: &Shared) {
    let queue = shared.queue.lock().unwrap();
    queue.push_front(0);
    drop(queue);
}

fn submit(shared: &Shared) {
    let queue = shared.queue.lock().unwrap();
    bump_counters(shared);
    drop(queue);
}

fn drain(shared: &Shared) {
    let stats = lock_stats(&shared.stats);
    requeue(shared);
    drop(stats);
}
