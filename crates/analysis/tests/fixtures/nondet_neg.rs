// AD0202 known-negative: annotated timing, ordered containers, and
// mentions inside comments/strings.

fn timed_step() -> Duration {
    // lint: nondet-ok(wall-clock feeds the duration metric only, never tensors)
    let start = std::time::Instant::now();
    start.elapsed()
}

fn tally(names: &[String]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for name in names {
        *counts.entry(name.clone()).or_insert(0) += 1;
    }
    counts
}

fn doc_only() -> &'static str {
    // `HashMap` in a comment, `SystemTime` in a string: neither counts.
    "HashMap and SystemTime are only mentioned here"
}
