// AD0200 known-negative: every path agrees on cache-before-stats, and
// the sequential path never overlaps the two guards at all.

fn record_batch(shared: &WorkerShared) {
    let cache = shared.cache.lock().unwrap();
    let stats = shared.stats.lock().unwrap();
    stats.note(cache.len());
    drop(stats);
    drop(cache);
}

fn evict_cold(shared: &WorkerShared) {
    let cache = shared.cache.lock().unwrap();
    let stats = shared.stats.lock().unwrap();
    cache.evict(stats.pressure());
    drop(stats);
    drop(cache);
}

fn sequential(shared: &WorkerShared) {
    {
        let stats = shared.stats.lock().unwrap();
        stats.flush();
    }
    {
        let cache = shared.cache.lock().unwrap();
        cache.compact();
    }
}

// Mentions in comments (`a.lock()` then `b.lock()`) and strings must
// never contribute edges.
fn doc_only() -> &'static str {
    "first cache.lock(), then stats.lock()"
}
