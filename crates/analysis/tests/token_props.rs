//! Property tests for the tokenizer's total-coverage contract: every
//! byte of the input lands in exactly one token, spans are contiguous
//! and non-overlapping, and concatenating token texts reconstructs the
//! source byte for byte — for arbitrary (including malformed) input.

use aero_analysis::token::{tokenize, Token};
use proptest::prelude::*;

fn assert_covers(src: &str) {
    let tokens: Vec<Token> = tokenize(src);
    let mut cursor = 0usize;
    let mut line = 1u32;
    let mut rebuilt = String::new();
    for t in &tokens {
        assert_eq!(t.start, cursor, "gap or overlap before {:?} in {src:?}", t.kind);
        assert!(t.end > t.start, "empty {:?} token in {src:?}", t.kind);
        assert!(t.line >= line, "line numbers went backwards in {src:?}");
        line = t.line;
        cursor = t.end;
        rebuilt.push_str(t.text(src));
    }
    assert_eq!(cursor, src.len(), "tokens do not reach EOF in {src:?}");
    assert_eq!(rebuilt, src, "concatenation does not reconstruct the input");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The class spells printable ASCII plus newline and tab with literal
    // characters (the generator takes class members at face value).
    #[test]
    fn arbitrary_ascii_round_trips(src in "[ -~\n\t]{0,200}") {
        assert_covers(&src);
    }

    // Rust-flavored soup: heavy on the characters that open multi-byte
    // tokens (quotes, slashes, hashes, r/b prefixes) to stress literal
    // and comment recovery paths.
    #[test]
    fn delimiter_soup_round_trips(src in "[rb#\"'/*\\\\ \n0-9a-f_.]{0,120}") {
        assert_covers(&src);
    }
}

#[test]
fn hand_picked_adversarial_inputs_round_trip() {
    let cases = [
        "",
        "fn main() {}",
        "r#\"unterminated raw",
        "br##\"nested \"# not closed\"## + b\"bytes\" + b'x'",
        "/* outer /* inner */ still outer */ code()",
        "/* never closed",
        "\"string with \\\" escape and // not a comment\"",
        "'a' 'b 1.5e-3 0xff_u32 1..2 x.0.1",
        "let _: &'static str = \"\\u{1F600}\";",
        "漢字 mixed with ascii and \u{1F680}",
        "'\\n' '\\'' b'\\x7f' 'lifetime_",
        "# ! [ macro_rules! m { ($x:tt) => { $x } } ]",
    ];
    for src in cases {
        assert_covers(src);
    }
}
