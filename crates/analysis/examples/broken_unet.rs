//! Demonstrates both analysis passes on deliberately broken models:
//! shape inference on a mis-wired UNet description, and the graph
//! linter on a loss with training hazards.
//!
//! ```bash
//! cargo run --offline -p aero-analysis --example broken_unet
//! ```

use aero_analysis::{lint_graph, UnetShapeDesc};
use aero_diffusion::UnetConfig;
use aero_nn::Var;
use aero_tensor::Tensor;

fn main() {
    // Pass 1: break the channel ladder of an otherwise-healthy UNet.
    let mut desc = UnetShapeDesc::from_config(&UnetConfig::latent(96), 8);
    desc.downsample.cout = 24; // the bottleneck expects 2 * base_channels = 32
    println!("-- shape inference on a broken UNet description --");
    print!("{}", desc.lint().render());

    // Pass 2: a loss that takes ln(0) and declares a parameter it never uses.
    let w = Var::parameter(Tensor::from_vec(vec![0.5, 0.0], &[2]));
    let orphan = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
    let loss = w.ln().sum();
    println!("-- graph lint on a hazardous loss --");
    print!("{}", lint_graph(&loss, &[w, orphan]).render());
}
