//! Static model validation for the AeroDiffusion reproduction.
//!
//! Training a misconfigured diffusion stack wastes minutes before the
//! first shape panic (or, worse, trains silently with a detached
//! parameter). This crate catches those failures *before execution* with
//! two complementary passes:
//!
//! 1. **Static shape inference** ([`models`], [`shape_infer`]) — plain-data
//!    descriptions of each architecture are replayed symbolically over
//!    [`ShapeSpec`]s with a symbolic batch `B`, reusing the *same* pure
//!    shape rules (`aero_tensor::shape` / `aero_tensor::sym`) the runtime
//!    kernels consult, so the analyzer can never drift from the kernels.
//! 2. **Autograd-graph linting** ([`graph_lint`]) — a walk over a built
//!    [`aero_nn::Var`] loss graph flagging detached parameters, severed
//!    gradient flow, NaN-prone numerics, and dead branches.
//!
//! Findings carry stable `ADxxxx` codes (see [`DiagCode`]) and render in a
//! rustc-like format via [`Report::render`].
//!
//! # Example
//!
//! ```
//! use aero_analysis::{PipelineShapeDesc, UnetShapeDesc};
//! use aero_diffusion::UnetConfig;
//!
//! // A consistent UNet lints clean...
//! let ok = UnetShapeDesc::from_config(&UnetConfig::latent(96), 8).lint();
//! assert!(ok.is_clean());
//!
//! // ...a broken channel ladder does not.
//! let mut broken = UnetShapeDesc::from_config(&UnetConfig::latent(96), 8);
//! broken.up_conv.cout = 3;
//! assert!(!broken.lint().is_clean());
//! ```

mod baseline;
mod diag;
mod graph_lint;
mod lockorder;
mod models;
mod shape_infer;
mod source_lint;
pub mod token;

pub use baseline::{Baseline, BaselineDiff};
pub use diag::{DiagCode, Diagnostic, Report, Severity};
pub use graph_lint::lint_graph;
pub use lockorder::lint_lock_order;
pub use models::{
    ConvDesc, ConvTDesc, LinearDesc, PipelineShapeDesc, ResBlockDesc, UnetShapeDesc,
    VisionShapeDesc, BATCH, LATENT_CHANNELS,
};
pub use shape_infer::ShapeCtx;
pub use source_lint::{
    lint_atomic_orderings, lint_backend_callsites, lint_deprecated_condition_api,
    lint_kernel_callsites, lint_nondeterminism, lint_panicking_callsites, lint_source_all,
    lint_worker_panics,
};
