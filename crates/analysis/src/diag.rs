//! Diagnostic codes, severities, and rustc-style rendering.
//!
//! Every problem the analyzer can detect has a stable `AD`-prefixed code so
//! that CI scripts and docs can refer to it unambiguously. Codes in the
//! `AD00xx` range come from the static shape pass; codes in the `AD01xx`
//! range come from the autograd-graph linter and the kernel-callsite
//! scans; codes in the `AD02xx` range come from the token-level
//! concurrency and determinism analyses.

use std::fmt;

/// Stable identifier for one class of problem the analyzer detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// `AD0001`: two tensor shapes that must agree (matmul inner dims,
    /// conv channels, declared vs. inferred dimensions) do not.
    ShapeMismatch,
    /// `AD0002`: elementwise operands cannot be broadcast together.
    BroadcastConflict,
    /// `AD0003`: a reshape changes the (symbolic) element count.
    ReshapeMismatch,
    /// `AD0004`: a dimension must divide another (attention heads,
    /// pooling windows, token splits) but does not.
    DivisibilityViolation,
    /// `AD0005`: a configuration value is unusable before any shape
    /// algebra runs (zero channels, zero image size, ...).
    InvalidConfig,
    /// `AD0101`: a declared trainable parameter is unreachable from the
    /// loss — `backward()` will never populate its gradient.
    DetachedParameter,
    /// `AD0102`: gradient flow is explicitly severed (a `detach` node or
    /// a root that does not require gradients).
    DetachedSubgraph,
    /// `AD0103`: `ln` applied to values at or below zero / without a
    /// safe clamp margin.
    UnclampedLn,
    /// `AD0104`: NaN-prone arithmetic — division by a near-zero
    /// denominator or `sqrt` of non-positive input.
    NanProneOp,
    /// `AD0105`: a multiplication by an all-zero constant makes an
    /// entire differentiable branch dead.
    DeadBranch,
    /// `AD0110`: production code calls a serial reference kernel
    /// (`matmul_serial`, `conv2d_serial`) instead of the sharded
    /// parallel entry points. The serial kernels exist only as
    /// equivalence oracles for the tensor crate's own tests.
    SerialKernelBypass,
    /// `AD0111`: long-lived serving code (`aero-serve`, the core
    /// pipeline crate) calls a panicking tensor kernel directly instead
    /// of its `try_*` variant. A shape mismatch there must surface as a
    /// typed reply, not take a worker down.
    PanickingKernelCall,
    /// `AD0112`: code outside the tensor crate names a concrete compute
    /// backend (`ReferenceBackend`, `BlockedBackend`) or calls a
    /// per-slab backend kernel (`matmul_slab`, …) directly instead of
    /// going through the dispatched ops. Backend choice is a process
    /// policy (`BackendKind` + `set_global_backend`/`with_backend`);
    /// hard-wiring an implementation bypasses both the policy and the
    /// sharding layer.
    BackendBypass,
    /// `AD0113`: production code calls the deprecated positional
    /// `encode_condition(item, caption_g, g_prime)` shim instead of
    /// building a typed `TaskSpec` and calling `encode_task`. The shim
    /// exists for one release to let external callers migrate; inside
    /// the workspace every caller must be on the task API.
    DeprecatedConditionApi,
    /// `AD0200`: two lock acquisitions form a cycle in the workspace's
    /// lock-order graph — function A holds lock X while taking Y, and
    /// some path (possibly through calls) holds Y while taking X. Two
    /// threads interleaving those paths deadlock.
    LockOrderCycle,
    /// `AD0201`: `Ordering::Relaxed` used in a read-modify-write or a
    /// multi-field publish pattern without a `// lint: relaxed-ok(..)`
    /// justification. Relaxed RMW is fine for pure counters but silently
    /// wrong the moment a reader correlates two fields.
    AtomicOrderingAudit,
    /// `AD0202`: a nondeterminism source (`HashMap`/`HashSet` iteration
    /// order, wall clocks, ad-hoc `thread::spawn`) inside a
    /// determinism-critical crate (`tensor`, `diffusion`, `core`) whose
    /// outputs must be bitwise reproducible. Threading must route
    /// through `par_kernels`; randomness through the seeded RNG.
    NondeterministicPath,
    /// `AD0203`: `unwrap`/`expect`/slice indexing inside a closure handed
    /// to `spawn` without the `catch_unwind` recovery layer between the
    /// panic site and the thread boundary. A panic there kills a worker
    /// instead of producing a typed error reply.
    PanicInWorker,
}

impl DiagCode {
    /// The stable `ADxxxx` code string.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::ShapeMismatch => "AD0001",
            DiagCode::BroadcastConflict => "AD0002",
            DiagCode::ReshapeMismatch => "AD0003",
            DiagCode::DivisibilityViolation => "AD0004",
            DiagCode::InvalidConfig => "AD0005",
            DiagCode::DetachedParameter => "AD0101",
            DiagCode::DetachedSubgraph => "AD0102",
            DiagCode::UnclampedLn => "AD0103",
            DiagCode::NanProneOp => "AD0104",
            DiagCode::DeadBranch => "AD0105",
            DiagCode::SerialKernelBypass => "AD0110",
            DiagCode::PanickingKernelCall => "AD0111",
            DiagCode::BackendBypass => "AD0112",
            DiagCode::DeprecatedConditionApi => "AD0113",
            DiagCode::LockOrderCycle => "AD0200",
            DiagCode::AtomicOrderingAudit => "AD0201",
            DiagCode::NondeterministicPath => "AD0202",
            DiagCode::PanicInWorker => "AD0203",
        }
    }

    /// One-line human title of the code.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::ShapeMismatch => "shape mismatch",
            DiagCode::BroadcastConflict => "broadcast conflict",
            DiagCode::ReshapeMismatch => "reshape changes element count",
            DiagCode::DivisibilityViolation => "divisibility violation",
            DiagCode::InvalidConfig => "invalid configuration",
            DiagCode::DetachedParameter => "parameter never receives gradients",
            DiagCode::DetachedSubgraph => "gradient flow severed",
            DiagCode::UnclampedLn => "ln of unclamped input",
            DiagCode::NanProneOp => "NaN-prone arithmetic",
            DiagCode::DeadBranch => "dead differentiable branch",
            DiagCode::SerialKernelBypass => "serial reference kernel used in production code",
            DiagCode::PanickingKernelCall => "panicking tensor kernel called on a serving path",
            DiagCode::BackendBypass => {
                "concrete compute backend hard-wired outside the tensor crate"
            }
            DiagCode::DeprecatedConditionApi => {
                "deprecated encode_condition shim called instead of the task API"
            }
            DiagCode::LockOrderCycle => "lock acquisition order forms a cycle",
            DiagCode::AtomicOrderingAudit => "unaudited relaxed atomic ordering",
            DiagCode::NondeterministicPath => {
                "nondeterminism source in a determinism-critical crate"
            }
            DiagCode::PanicInWorker => "panic site inside an unprotected worker closure",
        }
    }

    /// Default severity: structural problems are errors, value-dependent
    /// numerical hazards are warnings.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::ShapeMismatch
            | DiagCode::BroadcastConflict
            | DiagCode::ReshapeMismatch
            | DiagCode::DivisibilityViolation
            | DiagCode::InvalidConfig
            | DiagCode::DetachedParameter
            | DiagCode::SerialKernelBypass
            | DiagCode::PanickingKernelCall
            | DiagCode::BackendBypass
            | DiagCode::DeprecatedConditionApi
            | DiagCode::LockOrderCycle
            | DiagCode::PanicInWorker => Severity::Error,
            DiagCode::DetachedSubgraph
            | DiagCode::UnclampedLn
            | DiagCode::NanProneOp
            | DiagCode::DeadBranch
            | DiagCode::AtomicOrderingAudit
            | DiagCode::NondeterministicPath => Severity::Warning,
        }
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly intentional; lint still passes.
    Warning,
    /// The model cannot run (or cannot train) as configured.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a code, a severity, the component path it occurred at,
/// and a human message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code classifying the finding.
    pub code: DiagCode,
    /// Error or warning.
    pub severity: Severity,
    /// Dotted component path, e.g. `unet.res_up.conv1`.
    pub site: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code.code(), self.message)?;
        write!(f, "  --> {}", self.site)
    }
}

/// An ordered collection of diagnostics from one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a diagnostic with the code's default severity.
    pub fn push(&mut self, code: DiagCode, site: impl Into<String>, message: impl Into<String>) {
        self.diags.push(Diagnostic {
            code,
            severity: code.default_severity(),
            site: site.into(),
            message: message.into(),
        });
    }

    /// Appends a diagnostic with an explicit severity.
    pub fn push_with_severity(
        &mut self,
        code: DiagCode,
        severity: Severity,
        site: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.diags.push(Diagnostic { code, severity, site: site.into(), message: message.into() });
    }

    /// Absorbs another report's diagnostics.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All diagnostics, in discovery order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// `true` when no error-severity diagnostics are present (warnings
    /// do not fail a lint run).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` when some diagnostic carries `code`.
    #[must_use]
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Renders the whole report in a rustc-like format, ending with a
    /// one-line summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push_str("\n\n");
        }
        let (e, w) = (self.error_count(), self.warning_count());
        if e == 0 && w == 0 {
            out.push_str("lint: no problems found\n");
        } else {
            out.push_str(&format!("lint: {e} error(s), {w} warning(s)\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            DiagCode::ShapeMismatch,
            DiagCode::BroadcastConflict,
            DiagCode::ReshapeMismatch,
            DiagCode::DivisibilityViolation,
            DiagCode::InvalidConfig,
            DiagCode::DetachedParameter,
            DiagCode::DetachedSubgraph,
            DiagCode::UnclampedLn,
            DiagCode::NanProneOp,
            DiagCode::DeadBranch,
            DiagCode::SerialKernelBypass,
            DiagCode::PanickingKernelCall,
            DiagCode::BackendBypass,
            DiagCode::DeprecatedConditionApi,
            DiagCode::LockOrderCycle,
            DiagCode::AtomicOrderingAudit,
            DiagCode::NondeterministicPath,
            DiagCode::PanicInWorker,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "duplicate AD codes");
        assert!(codes.iter().all(|c| c.starts_with("AD")));
    }

    #[test]
    fn report_renders_rustc_style() {
        let mut r = Report::new();
        r.push(DiagCode::ShapeMismatch, "unet.conv_in", "input has 3 channels, weight expects 4");
        r.push(DiagCode::UnclampedLn, "node#7(ln)", "ln input minimum is 0");
        let text = r.render();
        assert!(text.contains("error[AD0001]"));
        assert!(text.contains("warning[AD0103]"));
        assert!(text.contains("--> unet.conv_in"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
    }
}
