//! A hand-rolled Rust tokenizer and lightweight item walker.
//!
//! The source-level lint passes used to be line-regex scans, which meant
//! any pattern mentioned inside a comment, a string literal, or a doc
//! example produced a false positive. This module replaces that core with
//! a real lexer: [`tokenize`] splits source text into spans classified as
//! code, comment, or literal, and every pass matches against *code*
//! tokens only.
//!
//! The tokenizer is deliberately total and loss-free:
//!
//! - every byte of the input is covered by exactly one token (spans are
//!   contiguous, non-overlapping, and concatenate back to the input —
//!   property-tested over arbitrary ASCII source);
//! - malformed input never panics — an unterminated literal simply
//!   extends to end of file, and bytes that fit no rule become
//!   [`TokenKind::Unknown`].
//!
//! On top of the token stream, [`functions`] walks `fn` items (including
//! nested ones) recording the name, the parameter names, the return-type
//! span, and the brace-matched body span — enough structure for the
//! per-function analyses (lock-order extraction, worker-panic scanning)
//! without a full parser.

use std::collections::BTreeSet;

/// Classification of one source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting-aware (doc comments included).
    BlockComment,
    /// An identifier or keyword.
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A string literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`.
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (integer or float, suffixes included).
    Num,
    /// A single punctuation byte (`{`, `.`, `;`, …).
    Punct,
    /// A run of non-ASCII bytes (kept whole so spans stay on UTF-8
    /// boundaries).
    Unknown,
}

/// One lexed span: `src[start..end]`, starting on 1-based `line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the span is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// `true` for tokens the analyses should look at (not whitespace,
    /// not comments).
    #[must_use]
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a complete, non-overlapping token cover.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut line = 1u32;
    while pos < bytes.len() {
        let start = pos;
        let kind = scan_one(bytes, &mut pos);
        debug_assert!(pos > start, "scanner must always make progress");
        tokens.push(Token { kind, start, end: pos, line });
        line += u32::try_from(bytes[start..pos].iter().filter(|&&b| b == b'\n').count())
            .unwrap_or(u32::MAX);
    }
    tokens
}

/// Consumes one token starting at `*pos`, advancing it; returns the kind.
#[allow(clippy::too_many_lines)]
fn scan_one(bytes: &[u8], pos: &mut usize) -> TokenKind {
    let b = bytes[*pos];
    // Whitespace run.
    if b.is_ascii_whitespace() {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        return TokenKind::Whitespace;
    }
    // Comments.
    if b == b'/' && bytes.get(*pos + 1) == Some(&b'/') {
        while *pos < bytes.len() && bytes[*pos] != b'\n' {
            *pos += 1;
        }
        return TokenKind::LineComment;
    }
    if b == b'/' && bytes.get(*pos + 1) == Some(&b'*') {
        *pos += 2;
        let mut depth = 1usize;
        while *pos < bytes.len() && depth > 0 {
            if bytes[*pos] == b'/' && bytes.get(*pos + 1) == Some(&b'*') {
                depth += 1;
                *pos += 2;
            } else if bytes[*pos] == b'*' && bytes.get(*pos + 1) == Some(&b'/') {
                depth -= 1;
                *pos += 2;
            } else {
                *pos += 1;
            }
        }
        return TokenKind::BlockComment;
    }
    // Raw / byte string prefixes: r", r#", b", br", br#", b'.
    if b == b'r' || b == b'b' {
        let mut probe = *pos + 1;
        let raw = if b == b'b' && bytes.get(probe) == Some(&b'r') {
            probe += 1;
            true
        } else {
            b == b'r'
        };
        if raw {
            let hash_start = probe;
            while bytes.get(probe) == Some(&b'#') {
                probe += 1;
            }
            if bytes.get(probe) == Some(&b'"') {
                let hashes = probe - hash_start;
                *pos = probe + 1;
                scan_raw_string_tail(bytes, pos, hashes);
                return TokenKind::Str;
            }
        } else if b == b'b' {
            if bytes.get(probe) == Some(&b'"') {
                *pos = probe + 1;
                scan_string_tail(bytes, pos, b'"');
                return TokenKind::Str;
            }
            if bytes.get(probe) == Some(&b'\'') {
                *pos = probe + 1;
                scan_string_tail(bytes, pos, b'\'');
                return TokenKind::Char;
            }
        }
        // Fall through: plain identifier starting with r/b.
    }
    // Identifiers and keywords.
    if is_ident_start(b) {
        while *pos < bytes.len() && is_ident_continue(bytes[*pos]) {
            *pos += 1;
        }
        return TokenKind::Ident;
    }
    // Plain string literal.
    if b == b'"' {
        *pos += 1;
        scan_string_tail(bytes, pos, b'"');
        return TokenKind::Str;
    }
    // Quote: lifetime or char literal.
    if b == b'\'' {
        let next = bytes.get(*pos + 1).copied();
        match next {
            Some(b'\\') => {
                *pos += 2; // consume quote and backslash
                if *pos < bytes.len() {
                    *pos += 1; // the escaped byte
                }
                scan_string_tail(bytes, pos, b'\'');
                return TokenKind::Char;
            }
            Some(n) if is_ident_start(n) => {
                let mut probe = *pos + 1;
                while probe < bytes.len() && is_ident_continue(bytes[probe]) {
                    probe += 1;
                }
                if bytes.get(probe) == Some(&b'\'') {
                    // 'a' / 'word' — a char literal (or close enough).
                    *pos = probe + 1;
                    return TokenKind::Char;
                }
                // 'a without a closing quote: a lifetime.
                *pos = probe;
                return TokenKind::Lifetime;
            }
            Some(n) if n != b'\'' && bytes.get(*pos + 2) == Some(&b'\'') => {
                // '3', '+', ' ' — a one-byte char literal.
                *pos += 3;
                return TokenKind::Char;
            }
            _ => {
                *pos += 1;
                return TokenKind::Punct;
            }
        }
    }
    // Numbers (with `_`, type suffixes, one `.`, and an exponent sign).
    if b.is_ascii_digit() {
        let num_start = *pos;
        let mut seen_dot = false;
        *pos += 1;
        while *pos < bytes.len() {
            let c = bytes[*pos];
            if is_ident_continue(c) {
                *pos += 1;
            } else if c == b'.'
                && !seen_dot
                && bytes.get(*pos + 1).copied().is_some_and(|d| d.is_ascii_digit())
            {
                seen_dot = true;
                *pos += 1;
            } else if (c == b'+' || c == b'-')
                && matches!(bytes[*pos - 1], b'e' | b'E')
                && !bytes[num_start..*pos].starts_with(b"0x")
                && bytes.get(*pos + 1).copied().is_some_and(|d| d.is_ascii_digit())
            {
                *pos += 1;
            } else {
                break;
            }
        }
        return TokenKind::Num;
    }
    // Non-ASCII: group the whole run so slices stay on char boundaries.
    if !b.is_ascii() {
        while *pos < bytes.len() && !bytes[*pos].is_ascii() {
            *pos += 1;
        }
        return TokenKind::Unknown;
    }
    // Everything else is one punctuation byte.
    *pos += 1;
    TokenKind::Punct
}

/// Consumes the rest of an escape-aware literal up to the `close` byte
/// (or end of input).
fn scan_string_tail(bytes: &[u8], pos: &mut usize, close: u8) {
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'\\' => *pos = (*pos + 2).min(bytes.len()),
            c if c == close => {
                *pos += 1;
                return;
            }
            _ => *pos += 1,
        }
    }
}

/// Consumes the rest of a raw string up to `"` followed by `hashes` `#`s
/// (or end of input).
fn scan_raw_string_tail(bytes: &[u8], pos: &mut usize, hashes: usize) {
    while *pos < bytes.len() {
        if bytes[*pos] == b'"'
            && bytes[*pos + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes
        {
            *pos += 1 + hashes;
            return;
        }
        *pos += 1;
    }
}

/// The indices of code tokens (identifiers, literals, punctuation) in
/// `tokens` — comments and whitespace dropped.
#[must_use]
pub fn code_indices(tokens: &[Token]) -> Vec<usize> {
    tokens.iter().enumerate().filter(|(_, t)| t.is_code()).map(|(i, _)| i).collect()
}

/// One `fn` item found by [`functions`]. All ranges are indices into the
/// token slice the walker ran over.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Token index of the `fn` keyword itself (lets analyses skip a
    /// nested item's span when scanning its parent's body).
    pub start: usize,
    /// The function's name.
    pub name: String,
    /// Parameter names in order (`self` counts; patterns contribute
    /// their first identifier).
    pub params: Vec<String>,
    /// Token range of the return type and any `where` clause (between
    /// the parameter list and the body).
    pub ret: (usize, usize),
    /// Token range of the body, including both braces. Empty for
    /// bodyless trait-method declarations.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Walks `tokens` for `fn` items, including nested functions. A partial
/// item at end of input is dropped.
#[must_use]
pub fn functions(src: &str, tokens: &[Token]) -> Vec<FnItem> {
    let code = code_indices(tokens);
    let mut out = Vec::new();
    let mut c = 0usize; // index into `code`
    while c < code.len() {
        if tokens[code[c]].text(src) != "fn" || tokens[code[c]].kind != TokenKind::Ident {
            c += 1;
            continue;
        }
        let fn_line = tokens[code[c]].line;
        let Some(&name_ti) = code.get(c + 1) else { break };
        if tokens[name_ti].kind != TokenKind::Ident {
            c += 1;
            continue;
        }
        let name = tokens[name_ti].text(src).to_string();
        let mut k = c + 2;
        // Skip generic parameters, tolerating `->` inside bounds.
        if code.get(k).is_some_and(|&ti| tokens[ti].text(src) == "<") {
            let mut depth = 0i32;
            while let Some(&ti) = code.get(k) {
                match tokens[ti].text(src) {
                    "<" => depth += 1,
                    ">" if code.get(k.wrapping_sub(1)).is_some_and(|&p| {
                        tokens[p].text(src) == "-" && tokens[p].end == tokens[ti].start
                    }) => {}
                    ">" => depth -= 1,
                    _ => {}
                }
                k += 1;
                if depth == 0 {
                    break;
                }
            }
        }
        // Parameter list.
        if code.get(k).is_none_or(|&ti| tokens[ti].text(src) != "(") {
            c += 1;
            continue;
        }
        let mut params = Vec::new();
        let mut depth = 0i32;
        let mut segment_named = false;
        while let Some(&ti) = code.get(k) {
            match tokens[ti].text(src) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "," if depth == 1 => segment_named = false,
                t if depth == 1
                    && !segment_named
                    && tokens[ti].kind == TokenKind::Ident
                    && t != "mut" =>
                {
                    params.push(t.to_string());
                    segment_named = true;
                }
                _ => {}
            }
            k += 1;
            if depth == 0 {
                break;
            }
        }
        // Return type / where clause: up to the body `{` or a `;`.
        // All recorded ranges are token indices (not code indices).
        let ret_start = code.get(k).map_or(tokens.len(), |&ti| ti);
        let mut ret_end = ret_start;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut body = (0usize, 0usize);
        while let Some(&ti) = code.get(k) {
            match tokens[ti].text(src) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => {
                    ret_end = ti;
                    break;
                }
                "{" if paren == 0 && bracket == 0 => {
                    // Body: brace-match from here.
                    ret_end = ti;
                    let mut braces = 0i32;
                    while let Some(&bi) = code.get(k) {
                        match tokens[bi].text(src) {
                            "{" => braces += 1,
                            "}" => braces -= 1,
                            _ => {}
                        }
                        k += 1;
                        if braces == 0 {
                            body = (ti, bi + 1);
                            break;
                        }
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnItem {
            start: code[c],
            name,
            params,
            ret: (ret_start, ret_end),
            body,
            line: fn_line,
        });
        // Continue from just after the header so nested fns are found.
        c += 2;
    }
    out
}

/// Truncation point for in-file unit tests: the number of leading tokens
/// before the first `#[cfg(test)]` marker (everything after is
/// deliberately allowed to use patterns the lints forbid).
#[must_use]
pub fn test_boundary(src: &str, tokens: &[Token]) -> usize {
    let code = code_indices(tokens);
    for w in code.windows(7) {
        let texts: Vec<&str> = w.iter().map(|&i| tokens[i].text(src)).collect();
        if texts == ["#", "[", "cfg", "(", "test", ")", "]"] {
            return w[0];
        }
    }
    tokens.len()
}

/// Lines carrying a `lint: <key>(<non-empty reason>)` allowlist
/// annotation inside a comment. A finding on line `L` is suppressed when
/// the annotation sits on `L` itself or on `L - 1`.
#[must_use]
pub fn annotation_lines(src: &str, tokens: &[Token], key: &str) -> BTreeSet<u32> {
    let needle = format!("lint: {key}(");
    let mut lines = BTreeSet::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(src);
        if let Some(at) = text.find(&needle) {
            let rest = &text[at + needle.len()..];
            if rest.find(')').is_some_and(|close| !rest[..close].trim().is_empty()) {
                lines.insert(t.line);
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    fn assert_covers(src: &str) {
        let toks = tokenize(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap/overlap at {pos} in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tail not covered in {src:?}");
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = "let x = \"matmul_serial()\"; // matmul_serial()\n/* .lock() */ y.lock()";
        assert_covers(src);
        let toks = tokenize(src);
        let idents: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect();
        assert!(idents.contains(&"lock".to_string()));
        // The serial-kernel name appears only inside literal/comment
        // spans, never as an identifier the lints would match.
        assert!(!idents.iter().any(|t| t.contains("matmul_serial")));
    }

    #[test]
    fn raw_strings_and_nesting() {
        for src in [
            "r#\"a \" b\"# x",
            "br##\"//not a comment\"## y",
            "/* outer /* inner */ still */ z",
            "b\"bytes\\\"\" w",
        ] {
            assert_covers(src);
            let last = kinds(src).last().cloned().unwrap();
            assert_eq!(last.0, TokenKind::Ident, "{src}");
        }
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let b = b'q'; }";
        assert_covers(src);
        let toks = tokenize(src);
        let lifetimes: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| t.text(src)).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokenKind::Char).map(|t| t.text(src)).collect();
        assert_eq!(chars, ["'x'", "'\\n'", "b'q'"]);
    }

    #[test]
    fn numbers_including_exponents() {
        let src = "let e = 1e-6; let h = 0xFF_u8; let r = 1..2; let f = 3.25f32;";
        assert_covers(src);
        let nums: Vec<String> =
            kinds(src).into_iter().filter(|(k, _)| *k == TokenKind::Num).map(|(_, t)| t).collect();
        assert_eq!(nums, ["1e-6", "0xFF_u8", "1", "2", "3.25f32"]);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"open", "r#\"open", "'", "/* open", "b\"open\\"] {
            assert_covers(src);
        }
    }

    #[test]
    fn fn_walker_finds_items_params_and_bodies() {
        let src = "impl Foo {\n    fn method(&self, mut n: usize) -> Result<u32, E> { n + 1 }\n}\n\
                   fn free<F: Fn() -> u32>(cb: F) { fn nested() {} cb(); }\n";
        let toks = tokenize(src);
        let fns = functions(src, &toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["method", "free", "nested"]);
        assert_eq!(fns[0].params, ["self", "n"]);
        assert_eq!(fns[1].params, ["cb"]);
        // The body range brace-matches.
        let body = &fns[0].body;
        assert_eq!(toks[body.0].text(src), "{");
        assert_eq!(toks[body.1 - 1].text(src), "}");
    }

    #[test]
    fn test_boundary_truncates_at_cfg_test() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n";
        let toks = tokenize(src);
        let b = test_boundary(src, &toks);
        assert!(toks[..b].iter().all(|t| t.text(src) != "unwrap"));
        let clean = "fn real() {}\n";
        let toks = tokenize(clean);
        assert_eq!(test_boundary(clean, &toks), toks.len());
    }

    #[test]
    fn annotations_require_a_reason() {
        let src = "a(); // lint: relaxed-ok(monotonic counter)\nb(); // lint: relaxed-ok()\n";
        let toks = tokenize(src);
        let lines = annotation_lines(src, &toks, "relaxed-ok");
        assert!(lines.contains(&1));
        assert!(!lines.contains(&2), "empty reason must not allowlist");
    }
}
