//! Symbolic shape programs mirroring the AeroDiffusion model architectures.
//!
//! Each `*ShapeDesc` is a plain-data description of one model's geometry
//! with every layer dimension exposed as a public field. The `check`
//! methods replay the model's forward pass over [`ShapeSpec`]s with a
//! symbolic batch dimension `B`, proving (or refuting) that every matmul,
//! convolution, reshape, and broadcast is consistent — before a single
//! weight is allocated. Because the fields are public, tests (and future
//! config surfaces) can deliberately break a channel ladder and watch the
//! analyzer catch it.

use crate::diag::{DiagCode, Report};
use crate::shape_infer::ShapeCtx;
use aero_diffusion::UnetConfig;
use aero_tensor::sym::{Dim, ShapeSpec};
use aero_vision::VisionConfig;

/// Symbolic batch label used by every shape program.
pub const BATCH: &str = "B";

fn batched(rest: &[usize]) -> ShapeSpec {
    ShapeSpec::batched(BATCH, rest)
}

fn with_batch_of(spec: &ShapeSpec, rest: &[usize]) -> ShapeSpec {
    let mut dims = vec![spec.dims()[0].clone()];
    dims.extend(rest.iter().map(|&d| Dim::Fixed(d)));
    ShapeSpec::new(dims)
}

/// Geometry of a fully connected layer (`weight: [in_dim, out_dim]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearDesc {
    /// Input feature width.
    pub in_dim: usize,
    /// Output feature width.
    pub out_dim: usize,
}

impl LinearDesc {
    fn weight(&self) -> ShapeSpec {
        ShapeSpec::fixed(&[self.in_dim, self.out_dim])
    }

    fn apply(&self, ctx: &mut ShapeCtx, name: &str, input: &ShapeSpec) -> Option<ShapeSpec> {
        ctx.scoped(name, |ctx| ctx.matmul(input, &self.weight()))
    }
}

/// Geometry of a square-kernel convolution (`weight: [cout, cin, k, k]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvDesc {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Kernel side.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl ConvDesc {
    fn weight(&self) -> [usize; 4] {
        [self.cout, self.cin, self.k, self.k]
    }

    fn apply(&self, ctx: &mut ShapeCtx, name: &str, input: &ShapeSpec) -> Option<ShapeSpec> {
        ctx.scoped(name, |ctx| ctx.conv2d(input, &self.weight(), self.stride, self.pad))
    }
}

/// Geometry of a transposed convolution (`weight: [cin, cout, k, k]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvTDesc {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Kernel side.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl ConvTDesc {
    fn weight(&self) -> [usize; 4] {
        [self.cin, self.cout, self.k, self.k]
    }

    fn apply(&self, ctx: &mut ShapeCtx, name: &str, input: &ShapeSpec) -> Option<ShapeSpec> {
        ctx.scoped(name, |ctx| ctx.conv_transpose2d(input, &self.weight(), self.stride, self.pad))
    }
}

/// Geometry of the UNet residual block (conv1 → FiLM → conv2 → skip).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResBlockDesc {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Width of the time/condition embedding the FiLM projection reads.
    pub emb_dim: usize,
}

impl ResBlockDesc {
    /// Replays the residual block: `conv1`, FiLM modulation from `emb`,
    /// `conv2`, and the (possibly projected) skip connection.
    pub fn check(
        &self,
        ctx: &mut ShapeCtx,
        name: &str,
        x: &ShapeSpec,
        emb: &ShapeSpec,
    ) -> Option<ShapeSpec> {
        ctx.scoped(name, |ctx| {
            let conv1 = ConvDesc { cin: self.cin, cout: self.cout, k: 3, stride: 1, pad: 1 };
            let h = conv1.apply(ctx, "conv1", x)?;
            // FiLM: emb -> [B, 2*cout], narrowed to scale/shift and
            // reshaped to [B, cout, 1, 1] for a broadcast modulation.
            let film_proj = LinearDesc { in_dim: self.emb_dim, out_dim: 2 * self.cout };
            let film = film_proj.apply(ctx, "film", emb)?;
            let scale = ctx.scoped("film", |ctx| {
                let narrowed = ctx.narrow(&film, 1, 0, self.cout)?;
                ctx.reshape(&narrowed, &with_batch_of(&narrowed, &[self.cout, 1, 1]))
            })?;
            let h = ctx.scoped("film", |ctx| ctx.broadcast(&h, &scale))?;
            let conv2 = ConvDesc { cin: self.cout, cout: self.cout, k: 3, stride: 1, pad: 1 };
            let h = conv2.apply(ctx, "conv2", &h)?;
            let skip = if self.cin == self.cout {
                x.clone()
            } else {
                let skip_conv =
                    ConvDesc { cin: self.cin, cout: self.cout, k: 1, stride: 1, pad: 0 };
                skip_conv.apply(ctx, "skip", x)?
            };
            ctx.scoped("residual_add", |ctx| ctx.broadcast(&h, &skip))
        })
    }
}

/// Full symbolic description of [`aero_diffusion::CondUnet`].
///
/// Built from a [`UnetConfig`] plus the latent grid side; every layer's
/// channel counts are independent public fields so a test (or a lint of a
/// hand-edited config) can introduce a ladder inconsistency and the
/// analyzer will localise it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnetShapeDesc {
    /// Latent (input/output) channels.
    pub in_channels: usize,
    /// Side of the square latent grid the UNet denoises.
    pub latent_side: usize,
    /// Time-embedding width.
    pub time_embed_dim: usize,
    /// Condition vector width (0 = unconditional).
    pub cond_dim: usize,
    /// Cross-attention token count (0 disables cross-attention).
    pub cond_tokens: usize,
    /// Bottleneck cell count for the spatial condition projection.
    pub spatial_cond_cells: usize,
    /// Stem convolution `in_channels -> c`.
    pub conv_in: ConvDesc,
    /// Full-resolution residual block `c -> c`.
    pub res_down: ResBlockDesc,
    /// Strided downsampling convolution `c -> 2c`.
    pub downsample: ConvDesc,
    /// First bottleneck residual block `2c -> 2c`.
    pub res_mid1: ResBlockDesc,
    /// Bottleneck self-attention width (must equal bottleneck channels).
    pub mid_attn_dim: usize,
    /// Bottleneck self-attention heads.
    pub mid_attn_heads: usize,
    /// Condition-token projection `cond_dim / cond_tokens -> 2c`.
    pub cond_token_proj: Option<LinearDesc>,
    /// Spatial condition projection `cond_dim -> 2c * cells`.
    pub cond_spatial_proj: Option<LinearDesc>,
    /// Second bottleneck residual block `2c -> 2c`.
    pub res_mid2: ResBlockDesc,
    /// Post-upsample convolution `2c -> c`.
    pub up_conv: ConvDesc,
    /// Skip-merge residual block `2c -> c`.
    pub res_up: ResBlockDesc,
    /// Output convolution `c -> in_channels`.
    pub conv_out: ConvDesc,
    /// Time MLP layers `e -> e`.
    pub time_mlp1: LinearDesc,
    /// Second time MLP layer.
    pub time_mlp2: LinearDesc,
    /// Condition MLP `cond_dim -> e` (conditional models only).
    pub cond_mlp1: Option<LinearDesc>,
    /// Condition MLP `e -> e`.
    pub cond_mlp2: Option<LinearDesc>,
}

impl UnetShapeDesc {
    /// Derives the (consistent) description the real [`aero_diffusion::CondUnet`]
    /// constructor would build for `config` on a `latent_side²` grid.
    #[must_use]
    pub fn from_config(config: &UnetConfig, latent_side: usize) -> Self {
        let c = config.base_channels;
        let e = config.time_embed_dim;
        let conditional = config.cond_dim > 0;
        let cross = conditional && config.cond_tokens > 0;
        UnetShapeDesc {
            in_channels: config.in_channels,
            latent_side,
            time_embed_dim: e,
            cond_dim: config.cond_dim,
            cond_tokens: config.cond_tokens,
            spatial_cond_cells: config.spatial_cond_cells,
            conv_in: ConvDesc { cin: config.in_channels, cout: c, k: 3, stride: 1, pad: 1 },
            res_down: ResBlockDesc { cin: c, cout: c, emb_dim: e },
            downsample: ConvDesc { cin: c, cout: 2 * c, k: 3, stride: 2, pad: 1 },
            res_mid1: ResBlockDesc { cin: 2 * c, cout: 2 * c, emb_dim: e },
            mid_attn_dim: 2 * c,
            mid_attn_heads: 2,
            cond_token_proj: cross.then(|| LinearDesc {
                in_dim: config.cond_dim / config.cond_tokens.max(1),
                out_dim: 2 * c,
            }),
            cond_spatial_proj: (conditional && config.spatial_cond_cells > 0).then(|| LinearDesc {
                in_dim: config.cond_dim,
                out_dim: 2 * c * config.spatial_cond_cells,
            }),
            res_mid2: ResBlockDesc { cin: 2 * c, cout: 2 * c, emb_dim: e },
            up_conv: ConvDesc { cin: 2 * c, cout: c, k: 3, stride: 1, pad: 1 },
            res_up: ResBlockDesc { cin: 2 * c, cout: c, emb_dim: e },
            conv_out: ConvDesc { cin: c, cout: config.in_channels, k: 3, stride: 1, pad: 1 },
            time_mlp1: LinearDesc { in_dim: e, out_dim: e },
            time_mlp2: LinearDesc { in_dim: e, out_dim: e },
            cond_mlp1: conditional.then_some(LinearDesc { in_dim: config.cond_dim, out_dim: e }),
            cond_mlp2: conditional.then_some(LinearDesc { in_dim: e, out_dim: e }),
        }
    }

    /// Replays the UNet forward pass symbolically under the site `unet`.
    ///
    /// `cond` is the condition spec arriving from upstream (the condition
    /// network); when present it must match `[B, cond_dim]` — a mismatch
    /// is the classic "wrong condition dimension" wiring bug (AD0001).
    pub fn check(&self, ctx: &mut ShapeCtx, cond: Option<&ShapeSpec>) {
        ctx.scoped("unet", |ctx| {
            if !ctx.require(
                self.in_channels > 0 && self.latent_side > 0 && self.time_embed_dim > 0,
                DiagCode::InvalidConfig,
                format!(
                    "in_channels ({}), latent_side ({}), and time_embed_dim ({}) must all be positive",
                    self.in_channels, self.latent_side, self.time_embed_dim
                ),
            ) {
                return;
            }

            // Embedding pathway: sinusoidal features through the time MLP,
            // plus (when conditional) the condition MLP.
            let temb = batched(&[self.time_embed_dim]);
            let emb = self
                .time_mlp1
                .apply(ctx, "time_mlp1", &temb)
                .and_then(|h| self.time_mlp2.apply(ctx, "time_mlp2", &h));
            let Some(mut emb) = emb else { return };

            let cond_spec = match (self.cond_dim > 0, cond) {
                (true, Some(c)) => {
                    ctx.scoped("condition", |ctx| {
                        ctx.require_same_shape(c, &batched(&[self.cond_dim]), "condition input");
                    });
                    Some(batched(&[self.cond_dim]))
                }
                (true, None) => Some(batched(&[self.cond_dim])),
                (false, _) => None,
            };
            if let (Some(m1), Some(m2), Some(c)) = (&self.cond_mlp1, &self.cond_mlp2, &cond_spec) {
                let cemb = m1.apply(ctx, "cond_mlp1", c).and_then(|h| m2.apply(ctx, "cond_mlp2", &h));
                if let Some(cemb) = cemb {
                    if let Some(joint) = ctx.scoped("emb_add", |ctx| ctx.broadcast(&emb, &cemb)) {
                        emb = joint;
                    }
                }
            }

            // Spatial trunk.
            let x = batched(&[self.in_channels, self.latent_side, self.latent_side]);
            let Some(h0) = self.conv_in.apply(ctx, "conv_in", &x) else { return };
            let Some(h1) = self.res_down.check(ctx, "res_down", &h0, &emb) else { return };
            let Some(h2) = self.downsample.apply(ctx, "downsample", &h1) else { return };
            let Some(mut h3) = self.res_mid1.check(ctx, "res_mid1", &h2, &emb) else { return };

            let (Some(c2), Some(hh), Some(ww)) = (
                h3.dims()[1].as_fixed(),
                h3.dims()[2].as_fixed(),
                h3.dims()[3].as_fixed(),
            ) else {
                return;
            };
            ctx.scoped("mid_attn", |ctx| {
                ctx.require(
                    self.mid_attn_dim == c2,
                    DiagCode::ShapeMismatch,
                    format!("attention width {} != bottleneck channels {c2}", self.mid_attn_dim),
                );
                ctx.require_divides(self.mid_attn_heads, self.mid_attn_dim, "attention heads");
            });

            if let (Some(proj), Some(c)) = (&self.cond_spatial_proj, &cond_spec) {
                let mapped = proj.apply(ctx, "cond_spatial_proj", c).and_then(|map| {
                    ctx.scoped("cond_spatial_proj", |ctx| {
                        ctx.reshape(&map, &with_batch_of(&map, &[c2, hh, ww]))
                    })
                });
                if let Some(map) = mapped {
                    if let Some(h) = ctx.scoped("cond_spatial_add", |ctx| ctx.broadcast(&h3, &map)) {
                        h3 = h;
                    }
                }
            }

            let tokens = ctx.scoped("mid_tokens", |ctx| {
                let flat = ctx.reshape(&h3, &with_batch_of(&h3, &[c2, hh * ww]))?;
                ctx.permute(&flat, &[0, 2, 1])
            });
            let Some(tokens) = tokens else { return };

            if let (Some(proj), Some(_)) = (&self.cond_token_proj, &cond_spec) {
                ctx.scoped("cond_cross_attn", |ctx| {
                    if ctx.require_divides(self.cond_tokens, self.cond_dim, "condition tokens") {
                        let td = self.cond_dim / self.cond_tokens;
                        ctx.require(
                            proj.in_dim == td,
                            DiagCode::ShapeMismatch,
                            format!(
                                "token projection reads {} features per token, but splitting \
                                 cond_dim {} into {} tokens yields {td}",
                                proj.in_dim, self.cond_dim, self.cond_tokens
                            ),
                        );
                    }
                    ctx.require(
                        proj.out_dim == c2,
                        DiagCode::ShapeMismatch,
                        format!(
                            "condition tokens project to {} channels, bottleneck has {c2}",
                            proj.out_dim
                        ),
                    );
                });
            }

            let h3b = ctx.scoped("mid_tokens", |ctx| {
                let back = ctx.permute(&tokens, &[0, 2, 1])?;
                ctx.reshape(&back, &with_batch_of(&back, &[c2, hh, ww]))
            });
            let Some(h3b) = h3b else { return };

            let Some(h4) = self.res_mid2.check(ctx, "res_mid2", &h3b, &emb) else { return };
            let up = ctx.scoped("upsample", |ctx| ctx.upsample2x(&h4));
            let Some(up) = up else { return };
            let Some(up) = self.up_conv.apply(ctx, "up_conv", &up) else { return };
            let cat = ctx.scoped("skip_concat", |ctx| ctx.concat(&[&up, &h1], 1));
            let Some(cat) = cat else { return };
            let Some(h5) = self.res_up.check(ctx, "res_up", &cat, &emb) else { return };
            if let Some(out) = self.conv_out.apply(ctx, "conv_out", &h5) {
                ctx.scoped("conv_out", |ctx| {
                    ctx.require_same_shape(&out, &x, "denoiser output must match its input");
                });
            }
        });
    }

    /// Convenience: runs [`UnetShapeDesc::check`] in a fresh context.
    #[must_use]
    pub fn lint(&self) -> Report {
        let mut ctx = ShapeCtx::new();
        self.check(&mut ctx, None);
        ctx.into_report()
    }
}

/// Symbolic description of the vision substrate (VAE, image/text encoders,
/// BLIP fusion) as configured by a [`VisionConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisionShapeDesc {
    /// Square image side.
    pub image_size: usize,
    /// Joint embedding width.
    pub embed_dim: usize,
    /// Base convolution width.
    pub base_channels: usize,
    /// Fixed text token length.
    pub max_text_len: usize,
    /// Latent channels produced by the VAE.
    pub latent_channels: usize,
    /// Input width of the image-encoder global projection
    /// (`2c * (image_size / 4)²` when consistent) — public so tests can
    /// break it.
    pub image_proj_in: usize,
}

/// Latent channel count of the VAE (mirrors `aero_vision::vae`).
pub const LATENT_CHANNELS: usize = 4;

impl From<&VisionConfig> for VisionShapeDesc {
    fn from(config: &VisionConfig) -> Self {
        let c = config.base_channels;
        let grid = config.image_size / 4;
        VisionShapeDesc {
            image_size: config.image_size,
            embed_dim: config.embed_dim,
            base_channels: c,
            max_text_len: config.max_text_len,
            latent_channels: LATENT_CHANNELS,
            image_proj_in: 2 * c * grid * grid,
        }
    }
}

impl VisionShapeDesc {
    fn attn_heads(&self) -> usize {
        2.min(self.embed_dim / 4).max(1)
    }

    /// Replays the VAE round trip, both encoders, and the BLIP fusion.
    pub fn check(&self, ctx: &mut ShapeCtx) {
        let (s, c, d) = (self.image_size, self.base_channels, self.embed_dim);
        if !ctx.require(
            s > 0 && c > 0 && d > 0 && self.max_text_len > 0,
            DiagCode::InvalidConfig,
            format!(
                "image_size ({s}), base_channels ({c}), embed_dim ({d}), and max_text_len ({}) must all be positive",
                self.max_text_len
            ),
        ) {
            return;
        }
        ctx.require_divides(4, s, "image_size (two stride-2 encoder stages)");

        let image = batched(&[3, s, s]);
        ctx.scoped("vae", |ctx| {
            let enc1 = ConvDesc { cin: 3, cout: c, k: 3, stride: 2, pad: 1 };
            let enc2 = ConvDesc { cin: c, cout: 2 * c, k: 3, stride: 2, pad: 1 };
            let to_mu =
                ConvDesc { cin: 2 * c, cout: self.latent_channels, k: 1, stride: 1, pad: 0 };
            let dec_in =
                ConvDesc { cin: self.latent_channels, cout: 2 * c, k: 1, stride: 1, pad: 0 };
            let dec1 = ConvTDesc { cin: 2 * c, cout: c, k: 2, stride: 2, pad: 0 };
            let dec2 = ConvTDesc { cin: c, cout: c, k: 2, stride: 2, pad: 0 };
            let dec_out = ConvDesc { cin: c, cout: 3, k: 3, stride: 1, pad: 1 };
            let latent = enc1
                .apply(ctx, "enc1", &image)
                .and_then(|h| enc2.apply(ctx, "enc2", &h))
                .and_then(|h| to_mu.apply(ctx, "to_mu", &h));
            let recon = latent
                .and_then(|z| dec_in.apply(ctx, "dec_in", &z))
                .and_then(|h| dec1.apply(ctx, "dec1", &h))
                .and_then(|h| dec2.apply(ctx, "dec2", &h))
                .and_then(|h| dec_out.apply(ctx, "dec_out", &h));
            if let Some(recon) = recon {
                ctx.require_same_shape(&recon, &image, "VAE reconstruction");
            }
        });

        ctx.scoped("image_encoder", |ctx| {
            let conv1 = ConvDesc { cin: 3, cout: c, k: 3, stride: 2, pad: 1 };
            let conv2 = ConvDesc { cin: c, cout: 2 * c, k: 3, stride: 2, pad: 1 };
            let grid =
                conv1.apply(ctx, "conv1", &image).and_then(|h| conv2.apply(ctx, "conv2", &h));
            if let Some(grid) = grid {
                let (gc, gh, gw) = (
                    grid.dims()[1].as_fixed().unwrap_or(0),
                    grid.dims()[2].as_fixed().unwrap_or(0),
                    grid.dims()[3].as_fixed().unwrap_or(0),
                );
                let flat = ctx.scoped("flatten", |ctx| {
                    ctx.reshape(&grid, &with_batch_of(&grid, &[gc * gh * gw]))
                });
                let proj = LinearDesc { in_dim: self.image_proj_in, out_dim: d };
                if let Some(flat) = flat {
                    proj.apply(ctx, "proj", &flat);
                }
                let patch_proj = LinearDesc { in_dim: gc, out_dim: d };
                // Per-patch tokens: [B·g², 2c] through the patch projection.
                let patches = ShapeSpec::new(vec![Dim::sym("BP"), Dim::Fixed(gc)]);
                patch_proj.apply(ctx, "patch_proj", &patches);
            }
        });

        ctx.scoped("text_encoder", |ctx| {
            ctx.require_divides(self.attn_heads(), d, "text attention heads");
            // Per-token features: [B·L, d] through the feed-forward pair.
            let tokens = ShapeSpec::new(vec![Dim::sym("BT"), Dim::Fixed(d)]);
            let ff1 = LinearDesc { in_dim: d, out_dim: 2 * d };
            let ff2 = LinearDesc { in_dim: 2 * d, out_dim: d };
            let proj = LinearDesc { in_dim: d, out_dim: d };
            ff1.apply(ctx, "ff1", &tokens)
                .and_then(|h| ff2.apply(ctx, "ff2", &h))
                .and_then(|h| proj.apply(ctx, "proj", &h));
        });

        ctx.scoped("blip_fusion", |ctx| {
            ctx.require_divides(self.attn_heads(), d, "fusion attention heads");
            let pooled = batched(&[d]);
            let proj = LinearDesc { in_dim: d, out_dim: d };
            proj.apply(ctx, "proj", &pooled);
        });
    }

    /// Convenience: runs [`VisionShapeDesc::check`] in a fresh context.
    #[must_use]
    pub fn lint(&self) -> Report {
        let mut ctx = ShapeCtx::new();
        ctx.scoped("vision", |ctx| self.check(ctx));
        ctx.into_report()
    }
}

/// End-to-end description: vision substrate, condition network, and UNet.
///
/// The condition network concatenates `cond_blocks` embedding-width blocks
/// (`C = [C_xg; C_g; f̂_X]` in the paper), so the UNet's declared
/// `cond_dim` must equal `cond_blocks * embed_dim`; the check feeds the
/// concatenated spec into [`UnetShapeDesc::check`] so a mismatch surfaces
/// as AD0001 at `unet.condition`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineShapeDesc {
    /// The vision substrate description.
    pub vision: VisionShapeDesc,
    /// Number of condition blocks concatenated by the condition network.
    pub cond_blocks: usize,
    /// The UNet description.
    pub unet: UnetShapeDesc,
}

impl PipelineShapeDesc {
    /// Builds the end-to-end description for a vision config, UNet config,
    /// and the latent grid side the UNet denoises.
    #[must_use]
    pub fn new(vision: &VisionConfig, unet: &UnetConfig, latent_side: usize) -> Self {
        PipelineShapeDesc {
            vision: VisionShapeDesc::from(vision),
            cond_blocks: 3,
            unet: UnetShapeDesc::from_config(unet, latent_side),
        }
    }

    /// Checks the vision substrate, then the condition-network → UNet
    /// wiring, then the UNet trunk.
    pub fn check(&self, ctx: &mut ShapeCtx) {
        ctx.scoped("vision", |ctx| self.vision.check(ctx));
        // Condition network: concat of `cond_blocks` [B, d] blocks.
        let block = batched(&[self.vision.embed_dim]);
        let blocks: Vec<&ShapeSpec> = (0..self.cond_blocks).map(|_| &block).collect();
        let cond = ctx.scoped("condition_network", |ctx| ctx.concat(&blocks, 1));
        self.unet.check(ctx, cond.as_ref());
    }

    /// Convenience: runs [`PipelineShapeDesc::check`] in a fresh context.
    #[must_use]
    pub fn lint(&self) -> Report {
        let mut ctx = ShapeCtx::new();
        self.check(&mut ctx);
        ctx.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latent_desc() -> UnetShapeDesc {
        UnetShapeDesc::from_config(&UnetConfig::latent(96), 8)
    }

    #[test]
    fn consistent_unet_is_clean() {
        let report = latent_desc().lint();
        assert!(report.is_clean(), "unexpected diagnostics:\n{}", report.render());
    }

    #[test]
    fn pixel_unet_is_clean() {
        let report = UnetShapeDesc::from_config(&UnetConfig::pixel(), 8).lint();
        assert!(report.is_clean(), "unexpected diagnostics:\n{}", report.render());
    }

    #[test]
    fn broken_channel_ladder_is_localised() {
        let mut desc = latent_desc();
        // up_conv now emits 3 channels; the skip concat feeds res_up the
        // wrong width and its conv1 must reject it.
        desc.up_conv.cout = 3;
        let report = desc.lint();
        assert!(report.has_code(DiagCode::ShapeMismatch), "{}", report.render());
        assert!(
            report.diagnostics().iter().any(|d| d.site.contains("res_up")),
            "expected the ladder break to surface under unet.res_up:\n{}",
            report.render()
        );
    }

    #[test]
    fn wrong_spatial_cells_fire_reshape_mismatch() {
        let mut desc = latent_desc();
        // 25 cells cannot tile the 4x4 bottleneck grid.
        desc.spatial_cond_cells = 25;
        if let Some(p) = desc.cond_spatial_proj.as_mut() {
            p.out_dim = 2 * 16 * 25;
        }
        let report = desc.lint();
        assert!(report.has_code(DiagCode::ReshapeMismatch), "{}", report.render());
    }

    #[test]
    fn nondividing_cond_tokens_fire_ad0004() {
        let mut desc = latent_desc();
        desc.cond_tokens = 5; // does not divide cond_dim = 96
        let report = desc.lint();
        assert!(report.has_code(DiagCode::DivisibilityViolation), "{}", report.render());
    }

    #[test]
    fn vision_desc_round_trips_cleanly() {
        let report = VisionShapeDesc::from(&VisionConfig::default()).lint();
        assert!(report.is_clean(), "unexpected diagnostics:\n{}", report.render());
    }

    #[test]
    fn broken_image_projection_is_caught() {
        let mut desc = VisionShapeDesc::from(&VisionConfig::default());
        desc.image_proj_in += 1;
        let report = desc.lint();
        assert!(report.has_code(DiagCode::ShapeMismatch), "{}", report.render());
        assert!(report.diagnostics().iter().any(|d| d.site.contains("image_encoder.proj")));
    }

    #[test]
    fn pipeline_wiring_checks_condition_dim() {
        let vision = VisionConfig::default();
        // Correct wiring: cond_dim = 3 * embed_dim.
        let good = PipelineShapeDesc::new(&vision, &UnetConfig::latent(3 * vision.embed_dim), 8);
        assert!(good.lint().is_clean(), "{}", good.lint().render());
        // Wrong wiring: UNet declares a cond_dim the condition network
        // does not produce.
        let bad = PipelineShapeDesc::new(&vision, &UnetConfig::latent(3 * vision.embed_dim + 3), 8);
        let report = bad.lint();
        assert!(report.has_code(DiagCode::ShapeMismatch), "{}", report.render());
        assert!(
            report.diagnostics().iter().any(|d| d.site == "unet.condition"),
            "expected the wiring bug at unet.condition:\n{}",
            report.render()
        );
    }
}
